#!/bin/sh
# Tier-1 gate: what must stay green on every commit.
#
#   ./ci.sh                          full gate
#   ./ci.sh explain-goldens          only the EXPLAIN golden check
#   ./ci.sh explain-goldens --bless  regenerate the goldens after an
#                                    intentional rewriter/plan change
#   ./ci.sh plan-goldens [--bless]   the join-order goldens: Q5/Q7/Q8/Q9/Q21
#                                    chosen order + estimated vs actual
#                                    cardinalities (timings masked)
set -eux

explain_goldens() {
    if [ "${1:-}" = "--bless" ]; then
        SQALPEL_BLESS=1 cargo test -q --release -p sqalpel-engine --test explain_goldens
        SQALPEL_BLESS=1 cargo test -q --release -p sqalpel-engine --test explain_analyze_goldens analyze_slice
        # Re-check: blessed goldens must round-trip clean.
        cargo test -q --release -p sqalpel-engine --test explain_goldens
        cargo test -q --release -p sqalpel-engine --test explain_analyze_goldens
    else
        cargo test -q --release -p sqalpel-engine --test explain_goldens
        cargo test -q --release -p sqalpel-engine --test explain_analyze_goldens
    fi
}

plan_goldens() {
    if [ "${1:-}" = "--bless" ]; then
        SQALPEL_BLESS=1 cargo test -q --release -p sqalpel-engine --test plan_goldens adaptive_plans
        cargo test -q --release -p sqalpel-engine --test plan_goldens
    else
        cargo test -q --release -p sqalpel-engine --test plan_goldens
    fi
}

if [ "${1:-}" = "explain-goldens" ]; then
    shift
    explain_goldens "$@"
    exit 0
fi

if [ "${1:-}" = "plan-goldens" ]; then
    shift
    plan_goldens "$@"
    exit 0
fi

cargo build --release
cargo test -q
# The wire layer's loopback e2e suite: concurrent clients with injected
# connection drops must drain the queue with zero double-reports.
cargo test -q -p sqalpel-core --test wire_loopback
# The v1-vs-v2 differential wall: one server over both transports must
# answer with identical decoded values everywhere (replies, typed
# errors, CSV, pipelined-vs-serial), v2 mid-frame drops never double-
# report, and warm plan-cache hits return byte-identical results.
cargo test -q -p sqalpel-core --test wire_differential
# EXPLAIN plans for the full TPC-H + SSB flights are pinned: any drift in
# the binder/rewriter/ir output fails here until re-blessed.
explain_goldens
# The cost-based optimizer's plan goldens: chosen join order plus
# estimated-vs-actual cardinalities for the five join-heavy queries,
# including the adaptive second pass.
plan_goldens
# Every logical rewrite must be result-preserving, byte-for-byte, on both
# engines at 1 and 4 workers.
cargo test -q --release -p sqalpel-engine --test rewriter_equivalence
# Join reordering must be result-preserving too: optimizer on vs off,
# both engines, 1 and 4 workers, identical row sets and fingerprints.
cargo test -q --release -p sqalpel-engine --test optimizer_equivalence
# The cardinality estimator's invariants (selectivity in [0,1], conjunct
# monotonicity) under random predicates and degenerate statistics.
cargo test -q --release -p sqalpel-engine --test cost_props
# Profiling must be observation-only: both flights, both engines, 1 and 4
# workers, profiler on vs off — identical results and row counts.
cargo test -q --release -p sqalpel-engine --test metrics_invariance
# The merge algebra under the profiler and the metrics histograms.
cargo test -q --release -p sqalpel-engine --test profile_props
cargo test -q --release -p sqalpel-core --test metrics_props
# Compressed storage: dict/FoR round-trips and zone-map soundness (a
# skipped chunk must hold no qualifying row, checked against raw data).
cargo test -q --release -p sqalpel-engine --test storage_props
# Selection-vector filters and dict probes must stay allocation-lean.
cargo test -q --release -p sqalpel-engine --test alloc_discipline
# Clippy over the whole workspace, including the ir module (bind/rewrite/
# explain) that both engines now lower from.
cargo clippy --workspace --all-targets -- -D warnings
# The engine's hot loops must stay allocation-lean: these lints catch the
# collect-then-iterate and clone-a-key patterns the radix kernels removed.
cargo clippy -p sqalpel-engine --all-targets -- -D warnings -D clippy::needless_collect -D clippy::redundant_clone
# Smoke the parallel repro harness end to end (tiny scale, one rep, no
# BENCH_parallel.json rewrite).
cargo run --release -p sqalpel-bench --bin repro -- parallel --smoke
# Smoke the optimizer repro harness (tiny scale, one rep, no
# BENCH_optimizer.json rewrite): exercises the syntactic/cold/adaptive
# three-way measurement including the plan-cache reoptimization path.
cargo run --release -p sqalpel-bench --bin repro -- optimizer --smoke
# Smoke the multi-tenant scale harness (miniature populate/load/recovery
# phases, no BENCH_scale.json rewrite): drains a sharded queue through
# the v2 wire under admission control and times a WAL-tail replay.
cargo run --release -p sqalpel-bench --bin repro -- scale --smoke
# Admission-control invariants (the per-user in-flight bound is exact and
# every release path — report, error, reaper — returns the slot).
cargo test -q --release -p sqalpel-core --test admission_props
# Bulk-upload differential wall: the same experiment reported per-record
# over v1, per-record over v2 and as one streamed v2 batch must export
# byte-identical CSVs with identical queue counters; a connection killed
# mid-continuation-frame leaves no partial batch and a retry delivers
# exactly once.
cargo test -q --release -p sqalpel-core --test bulk_differential
# Server-push delivery contract: exactly one QueueReady per parked
# subscription per wake event (proptest vs a reference model), nothing to
# closed subscriptions, and push-subscribed worker pools drain late work
# with queue.empty_polls pinned at zero.
cargo test -q --release -p sqalpel-core --test push_props
# Crash-recovery e2e: kill -9 a durable `repro serve` mid-walk, restart,
# and require byte-identical acked results, re-hand-out of the open claim
# to its original key only, and a snapshot on SIGTERM — plus the bulk
# path: an acked batch replays byte-identical from its one group-commit
# record, a torn group commit drops the whole batch atomically.
cargo test -q --release -p sqalpel-bench --test crash_recovery
# Smoke the bulk + push wire paths end to end over loopback (one batch
# ack, idempotent retry, a QueueReady frame; no BENCH_wire.json rewrite).
cargo run --release -p sqalpel-bench --bin repro -- wire --bulk-smoke
