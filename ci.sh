#!/bin/sh
# Tier-1 gate: what must stay green on every commit.
set -eux

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
