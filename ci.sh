#!/bin/sh
# Tier-1 gate: what must stay green on every commit.
set -eux

cargo build --release
cargo test -q
# The wire layer's loopback e2e suite: concurrent clients with injected
# connection drops must drain the queue with zero double-reports.
cargo test -q -p sqalpel-core --test wire_loopback
cargo clippy --workspace --all-targets -- -D warnings
