#!/bin/sh
# Tier-1 gate: what must stay green on every commit.
#
#   ./ci.sh                          full gate
#   ./ci.sh explain-goldens          only the EXPLAIN golden check
#   ./ci.sh explain-goldens --bless  regenerate the goldens after an
#                                    intentional rewriter/plan change
set -eux

explain_goldens() {
    if [ "${1:-}" = "--bless" ]; then
        SQALPEL_BLESS=1 cargo test -q --release -p sqalpel-engine --test explain_goldens
        SQALPEL_BLESS=1 cargo test -q --release -p sqalpel-engine --test explain_analyze_goldens analyze_slice
        # Re-check: blessed goldens must round-trip clean.
        cargo test -q --release -p sqalpel-engine --test explain_goldens
        cargo test -q --release -p sqalpel-engine --test explain_analyze_goldens
    else
        cargo test -q --release -p sqalpel-engine --test explain_goldens
        cargo test -q --release -p sqalpel-engine --test explain_analyze_goldens
    fi
}

if [ "${1:-}" = "explain-goldens" ]; then
    shift
    explain_goldens "$@"
    exit 0
fi

cargo build --release
cargo test -q
# The wire layer's loopback e2e suite: concurrent clients with injected
# connection drops must drain the queue with zero double-reports.
cargo test -q -p sqalpel-core --test wire_loopback
# The v1-vs-v2 differential wall: one server over both transports must
# answer with identical decoded values everywhere (replies, typed
# errors, CSV, pipelined-vs-serial), v2 mid-frame drops never double-
# report, and warm plan-cache hits return byte-identical results.
cargo test -q -p sqalpel-core --test wire_differential
# EXPLAIN plans for the full TPC-H + SSB flights are pinned: any drift in
# the binder/rewriter/ir output fails here until re-blessed.
explain_goldens
# Every logical rewrite must be result-preserving, byte-for-byte, on both
# engines at 1 and 4 workers.
cargo test -q --release -p sqalpel-engine --test rewriter_equivalence
# Profiling must be observation-only: both flights, both engines, 1 and 4
# workers, profiler on vs off — identical results and row counts.
cargo test -q --release -p sqalpel-engine --test metrics_invariance
# The merge algebra under the profiler and the metrics histograms.
cargo test -q --release -p sqalpel-engine --test profile_props
cargo test -q --release -p sqalpel-core --test metrics_props
# Compressed storage: dict/FoR round-trips and zone-map soundness (a
# skipped chunk must hold no qualifying row, checked against raw data).
cargo test -q --release -p sqalpel-engine --test storage_props
# Selection-vector filters and dict probes must stay allocation-lean.
cargo test -q --release -p sqalpel-engine --test alloc_discipline
# Clippy over the whole workspace, including the ir module (bind/rewrite/
# explain) that both engines now lower from.
cargo clippy --workspace --all-targets -- -D warnings
# The engine's hot loops must stay allocation-lean: these lints catch the
# collect-then-iterate and clone-a-key patterns the radix kernels removed.
cargo clippy -p sqalpel-engine --all-targets -- -D warnings -D clippy::needless_collect -D clippy::redundant_clone
# Smoke the parallel repro harness end to end (tiny scale, one rep, no
# BENCH_parallel.json rewrite).
cargo run --release -p sqalpel-bench --bin repro -- parallel --smoke
