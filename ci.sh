#!/bin/sh
# Tier-1 gate: what must stay green on every commit.
set -eux

cargo build --release
cargo test -q
# The wire layer's loopback e2e suite: concurrent clients with injected
# connection drops must drain the queue with zero double-reports.
cargo test -q -p sqalpel-core --test wire_loopback
cargo clippy --workspace --all-targets -- -D warnings
# The engine's hot loops must stay allocation-lean: these lints catch the
# collect-then-iterate and clone-a-key patterns the radix kernels removed.
cargo clippy -p sqalpel-engine --all-targets -- -D warnings -D clippy::needless_collect -D clippy::redundant_clone
# Smoke the parallel repro harness end to end (tiny scale, one rep, no
# BENCH_parallel.json rewrite).
cargo run --release -p sqalpel-bench --bin repro -- parallel --smoke
