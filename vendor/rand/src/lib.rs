//! Offline stand-in for the `rand` crate.
//!
//! The container this repo builds in has no crates.io access, so the small
//! API subset the workspace actually uses is implemented here: a seedable
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64) and
//! [`RngExt::random_range`] over integer and float ranges. Streams are
//! deterministic per seed, which is all the pool walk and the tests rely
//! on; no compatibility with upstream `rand` output is claimed.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface the workspace uses.
pub trait RngExt {
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range. Panics on an empty range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform draw in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that can be sampled from.
pub trait SampleRange {
    type Output;
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift (Lemire) keeps bias negligible for the
                // span sizes used here.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// xoshiro256++ — small, fast, and good enough for test workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as xoshiro recommends.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let f = r.random_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn ranges_reach_both_ends() {
        let mut r = StdRng::seed_from_u64(1);
        let draws: Vec<usize> = (0..200).map(|_| r.random_range(0usize..4)).collect();
        for v in 0..4 {
            assert!(draws.contains(&v), "value {v} never drawn");
        }
    }
}
