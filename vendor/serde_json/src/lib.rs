//! Offline stand-in for `serde_json`.
//!
//! Re-exports the JSON [`Value`] from the `serde` stub and adds the pieces
//! the workspace calls: the [`json!`] macro, [`to_string`] /
//! [`to_string_pretty`] and a [`from_str`] recursive-descent parser.

pub use serde::value::{Map, Value};

/// Serialization error (the stub never actually fails to serialize).
#[derive(Debug)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize any [`serde::Serialize`] to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialize with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Parse JSON text into a [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(e.to_string()))
        }
    }
}

/// Convert by reference so `json!` can cite fields of borrowed structs.
#[doc(hidden)]
pub fn __json_value<T: serde::Serialize>(v: &T) -> Value {
    v.to_value()
}

/// Build a [`Value`] from a JSON-shaped literal. Values in object/array
/// position are arbitrary [`serde::Serialize`] expressions, taken by
/// reference; nested structures use nested `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__json_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::__json_value(&$val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::__json_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = json!({
            "name": "sqalpel",
            "count": 42,
            "ratio": 1.5,
            "ok": true,
            "missing": json!(null)
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back["name"], "sqalpel");
        assert_eq!(back["count"].as_i64(), Some(42));
        assert!(back["missing"].is_null());
        assert!(back["nonexistent"].is_null());
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x\"y\n"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v["a"][0].as_i64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2], "x\"y\n");
        assert!(v["b"]["c"].is_null());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn pretty_printing() {
        let v = json!({"a": 1, "b": json!([true])});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": 1"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
