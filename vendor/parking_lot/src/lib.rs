//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the parking_lot API shape: `read()`,
//! `write()` and `lock()` return guards directly instead of `Result`s.
//! Poisoning is swallowed — a panicked writer does not wedge the platform,
//! matching parking_lot's behaviour.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn survives_a_panicked_writer() {
        let l = Arc::new(Mutex::new(0));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.lock(), 0); // not wedged
    }
}
