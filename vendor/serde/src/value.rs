//! The JSON value type shared by the `serde` and `serde_json` stubs.

use std::collections::BTreeMap;
use std::fmt;

/// Object maps are ordered so serialized output is deterministic.
pub type Map = BTreeMap<String, Value>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    /// Integers are kept apart from floats so `42` prints as `42`.
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup that yields `Null` for misses, like serde_json.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i as i64)
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Value {
        Value::Int(i as i64)
    }
}

impl From<u64> for Value {
    fn from(i: u64) -> Value {
        Value::Int(i as i64)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    write!(f, "null") // JSON has no Inf/NaN
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}
