//! Offline stand-in for `serde`.
//!
//! The workspace uses serde only to round-trip driver result payloads
//! through JSON (the paper's "open-ended key-value list structure"), so
//! this stub collapses serde's data-model machinery to a single JSON
//! [`value::Value`] plus two traits implemented by hand where needed.
//! The `serde_json` stub in `vendor/serde_json` re-exports the value type
//! and supplies parsing/printing.

pub mod value;

pub use value::Value;

/// Types that can render themselves as a JSON value.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a JSON value.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

macro_rules! via_from {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from(self.clone())
            }
        }
    )*};
}

via_from!(bool, i32, i64, u32, u64, usize, f64, String, &str);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.to_value()).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
