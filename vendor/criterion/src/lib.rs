//! Offline stand-in for `criterion`.
//!
//! Keeps the harness API the workspace benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion`, `BenchmarkGroup`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`) but replaces the statistics engine with a
//! simple warmup + timed-loop mean, printed as plain text.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration time budget so a single bench never runs unbounded.
const TIME_BUDGET: Duration = Duration::from_millis(300);

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.to_string(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: PhantomData,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

pub struct Bencher {
    target_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f()); // warmup, excluded from timing
        let start = Instant::now();
        let mut n = 0u64;
        while n < self.target_iters {
            black_box(f());
            n += 1;
            if start.elapsed() > TIME_BUDGET {
                break;
            }
        }
        self.iters = n;
        self.elapsed = start.elapsed();
    }
}

fn run_bench(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        target_iters: sample_size as u64,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed / b.iters as u32;
    println!("{name}: {:?}/iter over {} iters", per_iter, b.iters);
}

/// Declare a bench group function invoking each target with one Criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` running every group (harness = false entry point).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("stub/count", |b| b.iter(|| calls += 1));
        assert!(calls >= 2); // warmup + at least one timed iteration
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", "n=4"), &4u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        g.finish();
    }
}
