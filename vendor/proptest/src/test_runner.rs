//! Deterministic per-test randomness and run configuration.

/// How many sampled cases a `proptest!` test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64 seeded from an FNV-1a hash of the test's full path, so every
/// test gets a distinct but reproducible sample sequence.
pub struct TestRng(u64);

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index below `n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}
