//! Value-generation strategies: the sampling core of the proptest stub.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for sampling values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Recursive structures: `depth` nested levels where each level picks
    /// the base case or one expansion step with equal probability. The
    /// `_desired_size` / `_expected_branch` hints are accepted for
    /// signature compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let expanded = f(strat).boxed();
            let fallback = base.clone();
            strat = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.next_u64() & 1 == 0 {
                    fallback.generate(rng)
                } else {
                    expanded.generate(rng)
                }
            }));
        }
        strat
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// String literals act as pattern strategies. Supported shapes:
/// `[class]{m,n}` / `[class]{n}` / `[class]` where the class holds literal
/// characters and `a-z` ranges; anything else generates itself verbatim.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = match parse_pattern(self) {
            Some(p) => p,
            None => return (*self).to_string(),
        };
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}
