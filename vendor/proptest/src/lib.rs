//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace tests use: `Strategy` with
//! `prop_map`/`prop_recursive`/`boxed`, `Just`, unions via `prop_oneof!`,
//! integer-range and `[class]{m,n}` string strategies, tuples, `any`,
//! `option::of`, and the `proptest!` test macro. Cases are sampled from a
//! per-test deterministic seed; there is no shrinking — on failure the
//! generated inputs are printed instead.

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestRng};

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

use std::marker::PhantomData;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary {
    fn arbitrary_with(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_with(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_with(rng)
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `Option<T>` values: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The test harness macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs. Failing cases
/// print their inputs before propagating the panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_item! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_item! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_item {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                let described = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body })
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        described,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_item! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, n in 1usize..9) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn strings_match_class(s in "[ab]{2,4}", t in "[a-c]{0,3}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            prop_assert!(t.len() <= 3);
            prop_assert!(t.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn combinators_compose(
            v in prop_oneof![Just(1i64), Just(2), 10i64..20].prop_map(|x| x * 2),
            opt in crate::option::of(0u64..5),
            flag in any::<bool>(),
        ) {
            prop_assert!(v == 2 || v == 4 || (20..40).contains(&v));
            if let Some(o) = opt {
                prop_assert!(o < 5);
            }
            let _ = flag;
        }

        #[test]
        fn recursion_terminates(depth in recursive_vec()) {
            fn max_depth(v: &[Vec<i64>]) -> usize { v.len() }
            prop_assert!(max_depth(&depth) <= 64);
        }
    }

    fn recursive_vec() -> impl Strategy<Value = Vec<Vec<i64>>> {
        let leaf = (0i64..3).prop_map(|x| vec![vec![x]]);
        leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner.clone()).prop_map(|(mut a, b)| {
                a.extend(b);
                a
            })
        })
    }

    #[test]
    fn same_seed_same_samples() {
        let strat = prop_oneof![Just(0u64), 1u64..100];
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
