//! Quickstart: the paper's Figure 1 grammar, end to end.
//!
//! Parses the sample grammar, validates it, enumerates its templates,
//! generates a few concrete queries and runs them against both target
//! systems.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sqalpel::engine::{ColStore, Database, Dbms, RowStore};
use sqalpel::grammar::{self, Grammar};
use std::sync::Arc;

fn main() {
    // 1. The query-space grammar (paper Figure 1).
    let g = Grammar::parse(grammar::FIG1_GRAMMAR).expect("the sample grammar parses");
    println!("grammar:\n{g}");
    println!("validation: {}", g.check());

    // 2. Its query space: templates and concrete-query count.
    let report = g.space_report(10_000).expect("small space");
    println!("space: {report}\n");

    // 3. Generate a handful of concrete queries.
    let set = g.templates(10_000).expect("enumerable");
    let mut rng = grammar::seeded_rng(42);
    let queries: Vec<String> = (0..5)
        .map(|_| grammar::random_query(&g, &set.templates, &mut rng, None).expect("generates"))
        .collect();

    // 4. Run them on the two target systems over a TPC-H instance.
    let db = Arc::new(Database::tpch(0.01, 42));
    let row = RowStore::new(db.clone());
    let col = ColStore::new(db);
    println!("{:<62} {:>12} {:>12}", "query", "rowstore", "colstore");
    for sql in &queries {
        let time = |dbms: &dyn Dbms| {
            let t0 = std::time::Instant::now();
            match dbms.execute(sql) {
                Ok(rs) => format!("{:.2}ms/{}r", t0.elapsed().as_secs_f64() * 1e3, rs.row_count()),
                Err(e) => format!("error: {e:.20}"),
            }
        };
        let display = if sql.len() > 60 { format!("{}…", &sql[..59]) } else { sql.clone() };
        println!("{display:<62} {:>12} {:>12}", time(&row), time(&col));
    }

    // 5. Results agree across systems (differential check).
    for sql in &queries {
        let a = row.execute(sql).expect("runs on rowstore");
        let b = col.execute(sql).expect("runs on colstore");
        assert!(
            a.canonicalized().approx_eq(&b.canonicalized(), 1e-6),
            "engines disagree on {sql}"
        );
    }
    println!("\nall generated queries agree across both engines ✓");
}
