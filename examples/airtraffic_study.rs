//! The airtraffic sample project: an ad-hoc analytic query over the
//! synthetic `ontime` flights table is turned into a grammar, its space
//! explored, and the dominant cost components identified — the same
//! workflow the paper demos on its airtraffic project.
//!
//! ```text
//! cargo run --release --example airtraffic_study
//! ```

use sqalpel::core::analytics;
use sqalpel::core::QueryPool;
use sqalpel::engine::{ColStore, Database, Dbms};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The baseline question a DBA might ask of the ontime data.
const BASELINE: &str = "\
select carrier, origin,
  count(*) as flights,
  avg(depdelay) as avg_dep_delay,
  avg(arrdelay) as avg_arr_delay,
  max(depdelay) as worst
from ontime
where cancelled = 0
  and depdelay > 0
  and distance between 300 and 2500
group by carrier, origin
order by avg_dep_delay desc
limit 15";

fn main() {
    // 1. Convert the baseline into a sqalpel grammar.
    let grammar = sqalpel::grammar::convert_sql(BASELINE).expect("baseline converts");
    let space = grammar.space_report(10_000).expect("space");
    println!("query space from the baseline: {space}\n");

    // 2. Build and walk the pool.
    let mut pool = QueryPool::new(grammar, 10_000, 500).expect("pool");
    pool.seed_baseline().expect("baseline");
    let mut rng = sqalpel::grammar::seeded_rng(99);
    pool.add_random(20, &mut rng).expect("seeds");
    for _ in 0..30 {
        let _ = pool.morph_auto(&mut rng).expect("morph");
    }
    println!("pool holds {} query variants", pool.len());

    // 3. Measure on the column store over a year of flights.
    let db = Arc::new(Database::airtraffic(400, 2015, 9));
    let col = ColStore::new(db);
    let mut times: HashMap<sqalpel::core::QueryId, f64> = HashMap::new();
    let mut errors = 0;
    for entry in pool.entries() {
        let mut runs = Vec::new();
        for _ in 0..3 {
            let t0 = Instant::now();
            match col.execute(&entry.sql) {
                Ok(_) => runs.push(t0.elapsed().as_secs_f64() * 1e3),
                Err(_) => break,
            }
        }
        if runs.len() == 3 {
            runs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            times.insert(entry.id, runs[1]);
        } else {
            errors += 1;
        }
    }
    println!("measured {} variants on {} ({errors} error runs)\n", times.len(), col.label());

    // 4. Which lexical terms dominate the cost?
    let ranked = analytics::components(&pool, &times);
    println!("dominant components:");
    for (i, c) in ranked.iter().take(8).enumerate() {
        println!(
            "  {:>2}. {:+8.3}ms  [{}] {}",
            i + 1,
            c.weight_ms,
            c.class,
            c.literal
        );
    }

    // 5. Inspect the syntactic gap between the cheapest and costliest
    //    variants (the paper's differential page).
    let cheapest = times
        .iter()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(id, _)| *id)
        .expect("non-empty");
    let costliest = times
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(id, _)| *id)
        .expect("non-empty");
    let a = pool.entry(cheapest).expect("entry");
    let b = pool.entry(costliest).expect("entry");
    println!(
        "\ncheapest ({:.2}ms) vs costliest ({:.2}ms) variant diff:",
        times[&cheapest], times[&costliest]
    );
    print!("{}", analytics::render_diff(&analytics::differential(&a.sql, &b.sql)));
}
