//! Repeatability: the property the sqalpel platform is built around.
//!
//! "Performance data only makes sense if you can easily document it and
//! share it" — and a shared project must reproduce. This example shows
//! that every layer of the stack is deterministic under a seed: the data
//! generators, the grammar conversion, the pool walk and the result
//! shapes, so an independent contributor rebuilds the exact same
//! experiment.
//!
//! ```text
//! cargo run --example repeatability
//! ```

use sqalpel::core::QueryPool;
use sqalpel::datagen::TpchGen;
use sqalpel::engine::{Database, Dbms, RowStore};
use std::sync::Arc;

fn build_pool(seed: u64) -> QueryPool {
    let grammar = sqalpel::grammar::convert_sql(sqalpel::sql::tpch::Q6).expect("Q6 converts");
    let mut pool = QueryPool::new(grammar, 10_000, 500).expect("pool");
    pool.seed_baseline().expect("baseline");
    let mut rng = sqalpel::grammar::seeded_rng(seed);
    pool.add_random(8, &mut rng).expect("seeds");
    for _ in 0..12 {
        let _ = pool.morph_auto(&mut rng).expect("morph");
    }
    pool
}

fn main() {
    // 1. Data generation is bit-identical for the same (SF, seed).
    let a = TpchGen::new(0.002, 7).generate();
    let b = TpchGen::new(0.002, 7).generate();
    assert_eq!(a.lineitem, b.lineitem);
    assert_eq!(a.orders, b.orders);
    println!(
        "datagen: two independent SF 0.002 builds are identical ({} rows)",
        a.total_rows()
    );

    // 2. The pool walk replays exactly.
    let p1 = build_pool(31);
    let p2 = build_pool(31);
    assert_eq!(p1.len(), p2.len());
    for (x, y) in p1.entries().iter().zip(p2.entries()) {
        assert_eq!(x.sql, y.sql);
        assert_eq!(x.origin, y.origin);
    }
    println!("pool walk: {} queries replay identically under seed 31", p1.len());
    let p3 = build_pool(32);
    assert!(
        p1.entries().iter().zip(p3.entries()).any(|(x, y)| x.sql != y.sql),
        "different seeds must explore differently"
    );
    println!("pool walk: seed 32 takes a different path (as it should)");

    // 3. Query answers are stable across executions.
    let db = Arc::new(Database::tpch(0.002, 7));
    let row = RowStore::new(db);
    for entry in p1.entries().iter().take(10) {
        let r1 = row.execute(&entry.sql);
        let r2 = row.execute(&entry.sql);
        match (r1, r2) {
            (Ok(x), Ok(y)) => assert!(x.approx_eq(&y, 0.0), "non-deterministic answer"),
            (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string()),
            _ => panic!("one run succeeded, the other failed"),
        }
    }
    println!("engine: answers are identical run-to-run");

    // 4. The whole chain documents itself: print what a contributor needs.
    println!("\nto repeat this experiment:");
    println!("  data:     TpchGen::new(0.002, 7)");
    println!("  grammar:  convert_sql(tpch::Q6)");
    println!("  pool:     seed_baseline + add_random(8) + 12x morph_auto, seed 31");
    println!("  system:   rowstore-2.0 (hash joins, float64 arithmetic)");
}
