//! The paper's demo scenario as a program: a full sqalpel session hunting
//! discriminative queries between two target systems.
//!
//! A project owner registers, sets up a TPC-H Q3 experiment, seeds and
//! morphs the query pool; a contributor drains the task queue with the
//! experiment driver against both RowStore versions; the analytics then
//! surface the queries that discriminate between them.
//!
//! ```text
//! cargo run --release --example discriminative_hunt
//! ```

use sqalpel::core::analytics;
use sqalpel::core::{
    DriverConfig, EngineConnector, ExperimentDriver, QueryId, SqalpelServer, Visibility,
};
use sqalpel::engine::{Database, Dbms, RowStore};
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    let server = SqalpelServer::new();

    // --- project setup (the owner's side) -------------------------------
    let owner = server.register_user("mlk", "mlk@cwi.nl").expect("register");
    let contrib = server.register_user("pk", "pk@monetdb.com").expect("register");
    let project = server
        .create_project(
            owner,
            "q3-hash-join-study",
            "Does the 2.0 hash-join upgrade help TPC-H Q3-like workloads?",
            Visibility::Public,
        )
        .expect("project");
    server
        .set_targets(
            project,
            owner,
            vec!["rowstore-2.0".into(), "rowstore-1.4".into()],
            vec!["bench-server".into()],
        )
        .expect("targets are public catalog entries");
    server.invite(project, owner, contrib).expect("invite");

    let experiment = server
        .add_experiment(
            project,
            owner,
            "Q3 shipping priority",
            sqalpel::sql::tpch::Q3,
            None, // automatic SQL → grammar conversion
            10_000,
            1_000,
        )
        .expect("experiment");
    let seeded = server.seed_pool(project, experiment, owner, 10, 42).expect("seed");
    let morphed = server
        .morph_pool(project, experiment, owner, None, 18, 7)
        .expect("morph")
        .len();
    println!("pool: {seeded} seeded + {morphed} morphed queries");
    let tasks = server.enqueue_experiment(project, experiment, owner).expect("enqueue");
    println!("queue: {tasks} tasks ({} queries x 2 systems)", tasks / 2);

    // --- contribution (the driver's side) -------------------------------
    let db = Arc::new(Database::tpch(0.002, 42));
    // Both versions run under a row budget: runaway variants get killed.
    let targets: Vec<(Arc<dyn Dbms>, &str)> = vec![
        (Arc::new(RowStore::new(db.clone()).with_budget(4_000_000)), "rowstore-2.0"),
        (Arc::new(RowStore::legacy(db).with_budget(2_000_000)), "rowstore-1.4"),
    ];
    let key = server.issue_key(contrib).expect("key");
    for (dbms, label) in targets {
        let driver = ExperimentDriver::new(
            EngineConnector::new(dbms),
            DriverConfig::parse(&format!("dbms = {label}\nhost = bench-server\nrepetitions = 3"))
                .expect("config"),
        );
        let mut done = 0;
        let mut failed = 0;
        while let Some(task) = server
            .request_task(&key, label, "bench-server")
            .expect("request")
        {
            let outcome = driver.run(&task.sql);
            failed += outcome.error.is_some() as usize;
            server.report_result(&key, task.id, outcome).expect("report");
            done += 1;
        }
        println!("{label}: ran {done} tasks ({failed} error runs)");
    }

    // --- analysis (anyone's side) ----------------------------------------
    let records = server.results_for(project, contrib).expect("visible");
    let t_new: HashMap<QueryId, f64> = analytics::times_by_query(&records, "rowstore-2.0");
    let t_old: HashMap<QueryId, f64> = analytics::times_by_query(&records, "rowstore-1.4");
    let (upgrade_wins, regressions) = analytics::discriminative(&t_new, &t_old, 2.0);
    println!(
        "\ndiscriminative (>=2x): {} queries favor 2.0, {} favor 1.4",
        upgrade_wins.len(),
        regressions.len()
    );
    if let Some(r) = analytics::speedup(&t_new, &t_old) {
        println!(
            "hash-join upgrade factors: min {:.1}x, median {:.1}x, max {:.1}x",
            r.min, r.median, r.max
        );
    }
    server
        .with_project_view(project, contrib, |p| {
            let exp = p.experiment(experiment).expect("exists");
            for id in upgrade_wins.iter().take(3) {
                let e = exp.pool.entry(*id).expect("entry");
                println!("  2.0 wins ({:.1}x): {}", t_old[id] / t_new[id], e.sql);
            }
        })
        .expect("view");

    // Export for post-processing, as the paper's GUI offers.
    let csv = server.export_csv(project, contrib).expect("csv");
    println!("\nCSV export: {} lines", csv.lines().count());
}
