//! Property tests for the profiler's merge algebra.
//!
//! Morsel workers fill private [`ProfileShard`]s that the coordinator
//! absorbs in whatever order the morsels completed, so the merge must be
//! associative and commutative and must conserve every counter — the
//! final profile may not depend on scheduling.

use proptest::prelude::*;
use sqalpel_engine::{NodeMetrics, ProfileShard, Profiler};

/// Deterministically expand a seed into a shard of `len` samples over a
/// small key space (so shards overlap, exercising the accumulate path).
fn shard_from_seed(seed: u64, len: usize) -> ProfileShard {
    let mut shard = ProfileShard::new();
    let mut x = seed | 1;
    let mut next = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 33
    };
    for _ in 0..len {
        let key = (next() % 8) as usize;
        shard.record(
            key,
            NodeMetrics {
                rows_in: next() % 1000,
                rows_out: next() % 1000,
                batches: 1 + next() % 4,
                nanos: next() % 1_000_000,
                ..NodeMetrics::default()
            },
        );
    }
    shard
}

fn arb_shards2() -> impl Strategy<Value = (ProfileShard, ProfileShard)> {
    (any::<u64>(), any::<u64>(), 0usize..40, 0usize..40)
        .prop_map(|(s1, s2, l1, l2)| (shard_from_seed(s1, l1), shard_from_seed(s2, l2)))
}

fn arb_shards3() -> impl Strategy<Value = (ProfileShard, ProfileShard, ProfileShard)> {
    (any::<u64>(), any::<u64>(), any::<u64>(), 0usize..40).prop_map(|(s1, s2, s3, len)| {
        (
            shard_from_seed(s1, len),
            shard_from_seed(s2, len / 2 + 1),
            shard_from_seed(s3, len / 3 + 2),
        )
    })
}

fn totals(shard: &ProfileShard) -> (u64, u64, u64, u64) {
    let mut t = (0, 0, 0, 0);
    for (_, m) in shard.iter() {
        t.0 += m.rows_in;
        t.1 += m.rows_out;
        t.2 += m.batches;
        t.3 += m.nanos;
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// a ⊕ b == b ⊕ a.
    #[test]
    fn merge_is_commutative(shards in arb_shards2()) {
        let (a, b) = shards;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(shards in arb_shards3()) {
        let (a, b, c) = shards;
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging conserves every counter, not just rows_out.
    #[test]
    fn merge_conserves_counters(shards in arb_shards2()) {
        let (a, b) = shards;
        let (ta, tb) = (totals(&a), totals(&b));
        let mut merged = a.clone();
        merged.merge(&b);
        let tm = totals(&merged);
        prop_assert_eq!(tm, (ta.0 + tb.0, ta.1 + tb.1, ta.2 + tb.2, ta.3 + tb.3));
        prop_assert_eq!(merged.total_rows_out(), a.total_rows_out() + b.total_rows_out());
    }

    /// A coordinator absorbing worker shards one at a time — in either
    /// order — ends with the same profile as a single pre-merged shard.
    #[test]
    fn profiler_absorb_is_order_independent(shards in arb_shards3()) {
        let (a, b, c) = shards;
        let forward = Profiler::new();
        for s in [&a, &b, &c] {
            forward.absorb(s);
        }
        let backward = Profiler::new();
        for s in [&c, &b, &a] {
            backward.absorb(s);
        }
        let mut all = a;
        all.merge(&b);
        all.merge(&c);
        prop_assert_eq!(forward.snapshot(), all.clone());
        prop_assert_eq!(backward.take(), all);
    }
}
