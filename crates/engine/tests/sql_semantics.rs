//! Golden SQL-semantics tests on a tiny hand-built database: exact
//! expected outputs for the corners that differ between naive and correct
//! implementations — NULL propagation through outer joins and aggregates,
//! three-valued logic in filters, DISTINCT aggregates, HAVING over
//! post-aggregation expressions, ORDER BY with NULLs and ties, LIMIT
//! edges. Every assertion runs on both engines.

use sqalpel_engine::storage::{dec_col, int_col, str_col, Table};
use sqalpel_engine::{ColStore, Database, Dbms, ResultSet, RowStore, Value};
use std::sync::Arc;

/// people(id, name, dept, salary_cents), pets(owner_id, pet)
/// dept "eng" has 2 people, "ops" 1, and one person (id 4) has no pets.
fn tiny_db() -> Arc<Database> {
    let mut db = Database::new();
    db.add_table(
        Table::new(
            "people",
            vec![
                int_col("id", [1, 2, 3, 4].into_iter()),
                str_col(
                    "name",
                    ["ann", "bob", "cat", "dan"].iter().map(|s| s.to_string()),
                ),
                str_col(
                    "dept",
                    ["eng", "eng", "ops", "ops"].iter().map(|s| s.to_string()),
                ),
                dec_col("salary", [10000, 20000, 15000, 15000].into_iter(), 2),
            ],
        )
        .unwrap(),
    );
    db.add_table(
        Table::new(
            "pets",
            vec![
                int_col("owner_id", [1, 1, 2, 3].into_iter()),
                str_col(
                    "pet",
                    ["cat", "dog", "fish", "cat"].iter().map(|s| s.to_string()),
                ),
            ],
        )
        .unwrap(),
    );
    Arc::new(db)
}

fn on_both(sql: &str, check: impl Fn(&ResultSet, &str)) {
    let db = tiny_db();
    for dbms in [
        Box::new(RowStore::new(db.clone())) as Box<dyn Dbms>,
        Box::new(ColStore::new(db)),
    ] {
        let result = dbms
            .execute(sql)
            .unwrap_or_else(|e| panic!("{sql} failed on {}: {e}", dbms.label()));
        check(&result, &dbms.label());
    }
}

fn cell(r: &ResultSet, row: usize, col: usize) -> String {
    r.rows[row][col].to_string()
}

#[test]
fn left_outer_join_null_padding_and_count_semantics() {
    // dan (id 4) has no pets: count(pet) must be 0 (NULLs skipped),
    // count(*) must be 1 (the padded row exists).
    on_both(
        "select name, count(pet), count(*) from people \
         left outer join pets on id = owner_id \
         group by name order by name",
        |r, label| {
            assert_eq!(r.row_count(), 4, "{label}");
            // ann: 2 pets; bob 1; cat 1; dan 0 but count(*) 1.
            assert_eq!((cell(r, 0, 0), cell(r, 0, 1)), ("ann".into(), "2".into()), "{label}");
            assert_eq!((cell(r, 3, 0), cell(r, 3, 1), cell(r, 3, 2)),
                ("dan".into(), "0".into(), "1".into()), "{label}");
        },
    );
}

#[test]
fn null_comparisons_filter_nothing_in() {
    // pet IS NULL only for dan's padded row; pet = 'cat' excludes it by
    // three-valued logic (NULL = 'cat' is NULL, not true).
    on_both(
        "select name from people left outer join pets on id = owner_id \
         where pet = 'cat' order by name",
        |r, label| {
            assert_eq!(r.row_count(), 2, "{label}");
            assert_eq!(cell(r, 0, 0), "ann", "{label}");
            assert_eq!(cell(r, 1, 0), "cat", "{label}");
        },
    );
    on_both(
        "select name from people left outer join pets on id = owner_id \
         where pet is null",
        |r, label| {
            assert_eq!(r.row_count(), 1, "{label}");
            assert_eq!(cell(r, 0, 0), "dan", "{label}");
        },
    );
}

#[test]
fn distinct_aggregate_vs_plain() {
    on_both(
        "select count(pet), count(distinct pet) from pets",
        |r, label| {
            assert_eq!(cell(r, 0, 0), "4", "{label}");
            assert_eq!(cell(r, 0, 1), "3", "{label}"); // cat, dog, fish
        },
    );
}

#[test]
fn having_filters_on_aggregates_not_rows() {
    on_both(
        "select dept, sum(salary) as total from people group by dept \
         having sum(salary) > 250.00 order by dept",
        |r, label| {
            assert_eq!(r.row_count(), 2, "{label}");
            assert_eq!(cell(r, 0, 0), "eng", "{label}");
            assert_eq!(cell(r, 1, 0), "ops", "{label}");
        },
    );
    on_both(
        "select dept from people group by dept having count(*) > 2",
        |r, label| assert_eq!(r.row_count(), 0, "{label}"),
    );
}

#[test]
fn avg_min_max_over_decimals() {
    on_both(
        "select avg(salary), min(salary), max(salary) from people",
        |r, label| {
            let avg = r.rows[0][0].as_f64().unwrap();
            assert!((avg - 150.0).abs() < 1e-9, "{label}: {avg}");
            assert_eq!(cell(r, 0, 1), "100.00", "{label}");
            assert_eq!(cell(r, 0, 2), "200.00", "{label}");
        },
    );
}

#[test]
fn order_by_ties_and_desc() {
    // cat and dan tie on salary; secondary key disambiguates.
    on_both(
        "select name, salary from people order by salary desc, name desc",
        |r, label| {
            let names: Vec<String> = (0..4).map(|i| cell(r, i, 0)).collect();
            assert_eq!(names, ["bob", "dan", "cat", "ann"], "{label}");
        },
    );
}

#[test]
fn order_by_nulls_last() {
    on_both(
        "select name, pet from people left outer join pets on id = owner_id \
         order by pet, name",
        |r, label| {
            // The NULL pet (dan) sorts last.
            let last = r.rows.last().unwrap();
            assert_eq!(last[0].to_string(), "dan", "{label}");
            assert!(last[1].is_null(), "{label}");
        },
    );
}

#[test]
fn limit_edges() {
    on_both("select name from people order by name limit 0", |r, label| {
        assert_eq!(r.row_count(), 0, "{label}");
    });
    on_both("select name from people order by name limit 99", |r, label| {
        assert_eq!(r.row_count(), 4, "{label}");
    });
}

#[test]
fn distinct_rows() {
    on_both("select distinct dept from people order by dept", |r, label| {
        assert_eq!(r.row_count(), 2, "{label}");
        assert_eq!(cell(r, 0, 0), "eng", "{label}");
    });
}

#[test]
fn case_with_null_operand_branches() {
    on_both(
        "select name, case when pet is null then 'lonely' else pet end as status \
         from people left outer join pets on id = owner_id \
         where name = 'dan'",
        |r, label| {
            assert_eq!(cell(r, 0, 1), "lonely", "{label}");
        },
    );
}

#[test]
fn scalar_subquery_empty_is_null() {
    on_both(
        "select count(*) from people \
         where salary > (select sum(salary) from people where dept = 'none')",
        |r, label| {
            // The subquery's sum over zero rows is NULL; NULL comparison
            // filters everything.
            assert_eq!(cell(r, 0, 0), "0", "{label}");
        },
    );
}

#[test]
fn in_and_not_in_lists() {
    on_both(
        "select count(*) from people where dept in ('eng', 'hr')",
        |r, label| assert_eq!(cell(r, 0, 0), "2", "{label}"),
    );
    on_both(
        "select count(*) from people where dept not in ('eng')",
        |r, label| assert_eq!(cell(r, 0, 0), "2", "{label}"),
    );
}

#[test]
fn arithmetic_and_division_in_projection() {
    on_both(
        "select name, salary * 2 as double_pay, salary / 4 as quarter \
         from people where name = 'ann'",
        |r, label| {
            assert!((r.rows[0][1].as_f64().unwrap() - 200.0).abs() < 1e-9, "{label}");
            assert!((r.rows[0][2].as_f64().unwrap() - 25.0).abs() < 1e-9, "{label}");
        },
    );
}

#[test]
fn division_by_zero_is_an_error_run() {
    let db = tiny_db();
    for dbms in [
        Box::new(RowStore::new(db.clone())) as Box<dyn Dbms>,
        Box::new(ColStore::new(db)),
    ] {
        let err = dbms
            .execute("select salary / (id - id) from people")
            .unwrap_err();
        assert!(err.to_string().contains("division by zero"), "{}", dbms.label());
    }
}

#[test]
fn correlated_exists_and_not_exists() {
    on_both(
        "select name from people where exists \
         (select * from pets where owner_id = id) order by name",
        |r, label| {
            assert_eq!(r.row_count(), 3, "{label}");
        },
    );
    on_both(
        "select name from people where not exists \
         (select * from pets where owner_id = id)",
        |r, label| {
            assert_eq!(r.row_count(), 1, "{label}");
            assert_eq!(cell(r, 0, 0), "dan", "{label}");
        },
    );
}

#[test]
fn group_by_expression() {
    on_both(
        "select salary > 120.00 as well_paid, count(*) from people \
         group by salary > 120.00 order by well_paid",
        |r, label| {
            assert_eq!(r.row_count(), 2, "{label}");
            assert_eq!(cell(r, 0, 1), "1", "{label}"); // ann
            assert_eq!(cell(r, 1, 1), "3", "{label}");
        },
    );
}

#[test]
fn aggregate_of_expression_and_expression_of_aggregate() {
    on_both(
        "select sum(salary * 2), sum(salary) * 2 from people",
        |r, label| {
            let a = r.rows[0][0].as_f64().unwrap();
            let b = r.rows[0][1].as_f64().unwrap();
            assert!((a - 1200.0).abs() < 1e-9, "{label}");
            assert!((a - b).abs() < 1e-9, "{label}");
        },
    );
}

#[test]
fn wildcard_projection_matches_schema() {
    on_both("select * from pets order by owner_id, pet", |r, label| {
        assert_eq!(r.columns, vec!["owner_id", "pet"], "{label}");
        assert_eq!(r.row_count(), 4, "{label}");
        assert!(matches!(r.rows[0][0], Value::Int(1)), "{label}");
    });
}

#[test]
fn self_join_with_aliases() {
    on_both(
        "select count(*) from people a, people b \
         where a.dept = b.dept and a.id < b.id",
        |r, label| {
            // eng pair (1,2) + ops pair (3,4).
            assert_eq!(cell(r, 0, 0), "2", "{label}");
        },
    );
}
