//! Differential testing of the two engines (McKeeman-style, the lineage
//! the paper cites): every TPC-H query must produce the same answer on
//! RowStore 2.0, RowStore 1.4 (nested-loop) and ColStore, up to
//! floating-point tolerance from their different arithmetic.

use sqalpel_engine::{ColStore, Database, Dbms, RowStore};
use std::sync::Arc;

fn tpch_db() -> Arc<Database> {
    Arc::new(Database::tpch(0.0005, 7))
}

#[test]
fn all_tpch_queries_agree_across_engines() {
    let db = tpch_db();
    let row = RowStore::new(db.clone());
    let col = ColStore::new(db);
    for (name, sql) in sqalpel_sql::tpch::all_queries() {
        let a = row
            .execute(sql)
            .unwrap_or_else(|e| panic!("{name} failed on rowstore: {e}"));
        let b = col
            .execute(sql)
            .unwrap_or_else(|e| panic!("{name} failed on colstore: {e}"));
        // Queries ending in ORDER BY compare in order; ties in the sort
        // keys may legitimately permute, so compare canonicalized.
        assert!(
            a.canonicalized().approx_eq(&b.canonicalized(), 1e-6),
            "{name} diverged:\nrowstore:\n{a}\ncolstore:\n{b}"
        );
    }
}

#[test]
fn legacy_rowstore_agrees_on_join_queries() {
    let db = tpch_db();
    let new = RowStore::new(db.clone());
    let old = RowStore::legacy(db);
    // The hash-join upgrade must not change answers (only speed).
    for name in ["Q3", "Q5", "Q10", "Q12", "Q14"] {
        let sql = sqalpel_sql::tpch::query(name).unwrap();
        let a = new.execute(sql).unwrap();
        let b = old.execute(sql).unwrap();
        assert!(
            a.canonicalized().approx_eq(&b.canonicalized(), 1e-9),
            "{name} diverged between rowstore versions"
        );
    }
}

#[test]
fn airtraffic_database_queries_agree() {
    let db = Arc::new(Database::airtraffic(20, 2015, 3));
    let row = RowStore::new(db.clone());
    let col = ColStore::new(db);
    let queries = [
        "select carrier, count(*) as flights, avg(depdelay) as adelay \
         from ontime where cancelled = 0 group by carrier order by adelay desc",
        "select origin, count(*) from ontime group by origin order by count(*) desc limit 5",
        "select count(*) from ontime where depdelay > 30 and distance > 1000",
    ];
    for sql in queries {
        let a = row.execute(sql).unwrap();
        let b = col.execute(sql).unwrap();
        assert!(a.canonicalized().approx_eq(&b.canonicalized(), 1e-9), "{sql}");
    }
}

#[test]
fn ssb_database_queries_agree() {
    let db = Arc::new(Database::ssb(0.0005, 7));
    let row = RowStore::new(db.clone());
    let col = ColStore::new(db);
    // SSB Q1.1-shaped query over the star schema.
    let sql = "select sum(lo_extendedprice * lo_discount) as revenue \
               from lineorder, date_dim where lo_orderdate = d_datekey \
               and d_year = 1993 and lo_discount between 1 and 3 and lo_quantity < 25";
    let a = row.execute(sql).unwrap();
    let b = col.execute(sql).unwrap();
    assert!(a.approx_eq(&b, 1e-6), "\n{a}\nvs\n{b}");
}

#[test]
fn ssb_flight_agrees_across_engines() {
    let db = Arc::new(Database::ssb(0.0005, 7));
    let row = RowStore::new(db.clone());
    let col = ColStore::new(db);
    for (name, sql) in sqalpel_sql::ssb::all_queries() {
        let a = row
            .execute(sql)
            .unwrap_or_else(|e| panic!("{name} failed on rowstore: {e}"));
        let b = col
            .execute(sql)
            .unwrap_or_else(|e| panic!("{name} failed on colstore: {e}"));
        assert!(
            a.canonicalized().approx_eq(&b.canonicalized(), 1e-6),
            "{name} diverged:\nrowstore:\n{a}\ncolstore:\n{b}"
        );
    }
}
