//! Adversarial shapes for the radix-partitioned kernels.
//!
//! The TPC-H/SSB differential suite exercises realistic distributions;
//! this one aims at the spots where a partitioned kernel could diverge
//! from its sequential twin:
//!
//! * **single group** — every row lands in one partition, the merge
//!   phase degenerates to a pure reduction across chunks;
//! * **all distinct** — no two rows share a group, the stitch phase has
//!   to reproduce the sequential first-seen order for tens of thousands
//!   of groups;
//! * **zipf-ish skew** — one giant group plus a long tail, so chunk
//!   partials disagree wildly in size;
//! * **join extremes** — duplicate-heavy probe sides, unique⋈unique, a
//!   mixed int=decimal key (the widened 16-byte domain), and string
//!   keys.
//!
//! Every case must be byte-identical (`approx_eq` with tolerance 0.0)
//! between `threads = 1` and `threads ∈ {2, 4, 8}` on both engines, and
//! budget exhaustion must fail with the same error kind at every thread
//! count.

use sqalpel_engine::storage::{dec_col, float_col, int_col, str_col};
use sqalpel_engine::{ColStore, Database, Dbms, EngineError, RowStore, Table};
use std::sync::Arc;

const THREADS: [usize; 3] = [2, 4, 8];

/// See `parallel_differential.rs`: lift the single-core worker bound so
/// the partitioned kernels actually run on any CI machine.
fn force_parallel() {
    std::env::set_var("SQALPEL_FORCE_WORKERS", "8");
}

/// Rows in the aggregation table: comfortably past the engines'
/// parallel spawn threshold (2 × 4096).
const AGG_ROWS: usize = 20_000;
/// Probe side of the join table pair; build side is `JOIN_KEYS`.
const PROBE_ROWS: usize = 16_384;
const JOIN_KEYS: usize = 1_000;

fn kind(e: &EngineError) -> &'static str {
    match e {
        EngineError::Parse(_) => "parse",
        EngineError::UnknownTable(_) => "unknown-table",
        EngineError::UnknownColumn(_) => "unknown-column",
        EngineError::AmbiguousColumn(_) => "ambiguous-column",
        EngineError::Type(_) => "type",
        EngineError::Unsupported(_) => "unsupported",
        EngineError::Overflow(_) => "overflow",
        EngineError::ScalarCardinality(_) => "scalar-cardinality",
        EngineError::Budget(_) => "budget",
    }
}

fn assert_thread_invariant<D: Dbms>(seq: &D, par: &D, threads: usize, sql: &str) {
    match (seq.execute(sql), par.execute(sql)) {
        (Ok(a), Ok(b)) => assert!(
            a.approx_eq(&b, 0.0),
            "{sql} differs on {} between threads=1 and threads={threads}:\n{a}\nvs\n{b}",
            seq.label(),
        ),
        (Err(a), Err(b)) => assert_eq!(
            kind(&a),
            kind(&b),
            "{sql} fails differently on {}: threads=1 -> {a}, threads={threads} -> {b}",
            seq.label(),
        ),
        (Ok(a), Err(b)) => panic!(
            "{sql} on {}: threads=1 succeeded but threads={threads} failed: {b}\n{a}",
            seq.label()
        ),
        (Err(a), Ok(b)) => panic!(
            "{sql} on {}: threads=1 failed ({a}) but threads={threads} succeeded\n{b}",
            seq.label()
        ),
    }
}

/// One table holding every adversarial aggregation distribution as a
/// separate column, so each query picks its poison.
fn agg_db() -> Arc<Database> {
    let n = AGG_ROWS;
    let mut db = Database::new();
    db.add_table(
        Table::new(
            "skew",
            vec![
                // Single group: the whole table collapses into one key.
                int_col("one_group", (0..n).map(|_| 7)),
                // All distinct: every row is its own group.
                int_col("distinct_key", (0..n).map(|i| i as i64)),
                // Zipf-ish: 90% of rows share key 0, the rest scatter.
                int_col(
                    "zipf",
                    (0..n).map(|i| {
                        if i % 10 == 0 {
                            ((i * i) % 1009) as i64
                        } else {
                            0
                        }
                    }),
                ),
                dec_col("dec_val", (0..n).map(|i| (i % 1000) as i64), 2),
                str_col("str_key", (0..n).map(|i| format!("s{:02}", i % 97))),
                float_col("f_val", (0..n).map(|i| i as f64 * 0.5)),
            ],
        )
        .expect("skew table"),
    );
    Arc::new(db)
}

/// Probe/build pair for the join extremes.
fn join_db() -> Arc<Database> {
    let mut db = Database::new();
    db.add_table(
        Table::new(
            "build",
            vec![
                int_col("k", (0..JOIN_KEYS).map(|i| i as i64)),
                // Same key domain as `k`, spelled as decimal(·,2): raw
                // i*100 at scale 2 is the value i, so `probe.k =
                // build.dec_k` matches exactly where `probe.k = build.k`
                // does — through the widened int=decimal codec domain.
                dec_col("dec_k", (0..JOIN_KEYS).map(|i| (i * 100) as i64), 2),
                str_col("name", (0..JOIN_KEYS).map(|i| format!("n{i}"))),
            ],
        )
        .expect("build table"),
    );
    db.add_table(
        Table::new(
            "probe",
            vec![
                // Duplicate-heavy: ~16 probe rows per build key.
                int_col("k", (0..PROBE_ROWS).map(|i| (i % JOIN_KEYS) as i64)),
                // Unique: only the first JOIN_KEYS rows find a partner.
                int_col("u", (0..PROBE_ROWS).map(|i| i as i64)),
                str_col(
                    "name_k",
                    (0..PROBE_ROWS).map(|i| format!("n{}", i % JOIN_KEYS)),
                ),
                int_col("v", (0..PROBE_ROWS).map(|i| (i % 13) as i64)),
            ],
        )
        .expect("probe table"),
    );
    Arc::new(db)
}

const AGG_QUERIES: &[&str] = &[
    "select one_group, count(*), sum(dec_val) from skew group by one_group",
    "select distinct_key, count(*), sum(dec_val) from skew group by distinct_key",
    "select zipf, count(*), min(distinct_key), max(str_key) from skew group by zipf",
    "select str_key, count(*), min(str_key), max(dec_val) from skew group by str_key",
    "select one_group, avg(f_val), count(distinct zipf) from skew group by one_group",
    // Float group keys stay off the codec path by design; the sequential
    // fallback must be just as thread-invariant.
    "select count(*), sum(dec_val) from skew group by f_val",
];

const JOIN_QUERIES: &[&str] = &[
    "select count(*), sum(probe.v) from probe, build where probe.k = build.k",
    "select count(*), min(build.name) from probe, build where probe.u = build.k",
    "select count(*), sum(probe.v) from probe, build where probe.k = build.dec_k",
    "select count(*), max(probe.v) from probe, build where probe.name_k = build.name",
];

#[test]
fn aggregation_extremes_are_thread_invariant() {
    force_parallel();
    let db = agg_db();
    for &sql in AGG_QUERIES {
        for threads in THREADS {
            let row_seq = RowStore::new(db.clone()).with_threads(1);
            let row_par = RowStore::new(db.clone()).with_threads(threads);
            let col_seq = ColStore::new(db.clone()).with_threads(1);
            let col_par = ColStore::new(db.clone()).with_threads(threads);
            assert_thread_invariant(&row_seq, &row_par, threads, sql);
            assert_thread_invariant(&col_seq, &col_par, threads, sql);
        }
    }
}

#[test]
fn join_extremes_are_thread_invariant() {
    force_parallel();
    let db = join_db();
    for &sql in JOIN_QUERIES {
        for threads in THREADS {
            let row_seq = RowStore::new(db.clone()).with_threads(1);
            let row_par = RowStore::new(db.clone()).with_threads(threads);
            let col_seq = ColStore::new(db.clone()).with_threads(1);
            let col_par = ColStore::new(db.clone()).with_threads(threads);
            assert_thread_invariant(&row_seq, &row_par, threads, sql);
            assert_thread_invariant(&col_seq, &col_par, threads, sql);
        }
    }
}

#[test]
fn budget_exhaustion_is_thread_invariant() {
    force_parallel();
    // Budgets chosen to trip mid-kernel: the scan fits but the join (or
    // the group build) does not, so the abort happens inside the
    // partitioned code, not before it.
    let agg = agg_db();
    let join = join_db();
    let cases = [
        (
            &agg,
            "select distinct_key, sum(dec_val) from skew group by distinct_key",
            25_000u64,
        ),
        (
            &join,
            "select count(*), sum(probe.v) from probe, build where probe.k = build.k",
            20_000u64,
        ),
    ];
    for (db, sql, budget) in cases {
        for threads in THREADS {
            let row_seq = RowStore::new((*db).clone())
                .with_budget(budget)
                .with_threads(1);
            let row_par = RowStore::new((*db).clone())
                .with_budget(budget)
                .with_threads(threads);
            let col_seq = ColStore::new((*db).clone())
                .with_budget(budget)
                .with_threads(1);
            let col_par = ColStore::new((*db).clone())
                .with_budget(budget)
                .with_threads(threads);
            assert_thread_invariant(&row_seq, &row_par, threads, sql);
            assert_thread_invariant(&col_seq, &col_par, threads, sql);
        }
    }
}
