//! EXPLAIN golden files for the full TPC-H and SSB flights.
//!
//! Every query's rendered plan (and its canonical fingerprint) is pinned
//! in `tests/goldens/explain/`. The rewriter is deterministic, so any
//! drift in the goldens means a rule changed plan shapes — which must be
//! a conscious decision, re-blessed with `SQALPEL_BLESS=1` (or
//! `./ci.sh explain-goldens --bless`).
//!
//! Both engines share the binder and rewriter, so the suite also asserts
//! RowStore and ColStore produce byte-identical EXPLAIN output.

use sqalpel_engine::{ColStore, Database, Dbms, RowStore};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join("explain")
}

fn golden_name(query: &str) -> String {
    format!(
        "{}.txt",
        query.to_lowercase().replace(['.', '-'], "_")
    )
}

fn check_flight(db: Arc<Database>, queries: &[(&str, &str)]) {
    let bless = std::env::var_os("SQALPEL_BLESS").is_some();
    let row = RowStore::new(db.clone());
    let col = ColStore::new(db);
    let dir = golden_dir();
    if bless {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut drifted = Vec::new();
    for (name, sql) in queries {
        let a = row
            .explain(sql)
            .unwrap_or_else(|e| panic!("{name} failed to explain on rowstore: {e}"));
        let b = col
            .explain(sql)
            .unwrap_or_else(|e| panic!("{name} failed to explain on colstore: {e}"));
        assert_eq!(
            a.text, b.text,
            "{name}: engines disagree on EXPLAIN text"
        );
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "{name}: engines disagree on fingerprint"
        );
        let rendered = format!("fingerprint: {}\n{}", a.fingerprint_hex(), a.text);
        let path = dir.join(golden_name(name));
        if bless {
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing golden {}: {e}", path.display()));
        if golden != rendered {
            drifted.push(format!(
                "{name}: EXPLAIN drifted from {}\n--- golden ---\n{golden}\n--- actual ---\n{rendered}",
                path.display()
            ));
        }
    }
    assert!(
        drifted.is_empty(),
        "{} golden(s) drifted; re-bless with SQALPEL_BLESS=1 if intended\n\n{}",
        drifted.len(),
        drifted.join("\n")
    );
}

#[test]
fn tpch_explain_matches_goldens() {
    // Fixed tiny scale and seed: the join-order optimizer consults
    // load-time statistics, so the goldens depend on reproducible data,
    // not just the schema.
    let db = Arc::new(Database::tpch(0.001, 42));
    check_flight(db, &sqalpel_sql::tpch::all_queries());
}

#[test]
fn ssb_explain_matches_goldens() {
    let db = Arc::new(Database::ssb(0.001, 42));
    check_flight(db, &sqalpel_sql::ssb::all_queries());
}

#[test]
fn goldens_cover_the_whole_flight() {
    // 22 TPC-H + 8 SSB golden files, no strays.
    let mut files: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("golden dir exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    files.sort();
    let mut expected: Vec<String> = sqalpel_sql::tpch::all_queries()
        .iter()
        .chain(sqalpel_sql::ssb::all_queries().iter())
        .map(|(name, _)| golden_name(name))
        .collect();
    expected.sort();
    assert_eq!(files, expected);
}
