//! Property tests for the cardinality estimator.
//!
//! Two invariants the join-order search leans on, checked over randomly
//! generated predicates and (possibly degenerate) frame statistics:
//!
//! 1. `selectivity` is always a fraction in `[0, 1]` — never NaN, never
//!    negative, never above one — no matter how nonsensical the stats
//!    (empty columns, inverted min/max, zero NDV) or the predicate.
//! 2. Conjunction is monotone: adding a conjunct never *increases* the
//!    estimate. The DP compares subplans whose predicate sets grow as
//!    joins stack up; a non-monotone estimator could rank a superset of
//!    predicates as less selective and pick absurd orders.

use proptest::prelude::*;
use sqalpel_engine::ir::cost::{selectivity, FrameStats, SlotStat};
use sqalpel_engine::ir::{Expr, Ty};
use sqalpel_sql::ast::{BinOp, Literal, UnaryOp};

/// Deterministic splitmix-style expansion of a proptest-drawn seed, the
/// same idiom the storage and profiler property tests use.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 17
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn i64_small(&mut self) -> i64 {
        self.below(2001) as i64 - 1000
    }
}

/// Random statistics, deliberately including degenerate shapes: unknown
/// slots, empty columns (ndv 0, no bounds), single-value columns, and
/// inverted bounds that a buggy loader could produce.
fn random_frame(g: &mut Gen, slots: usize) -> FrameStats {
    let slots = (0..slots)
        .map(|_| {
            if g.below(4) == 0 {
                return None;
            }
            let min = (g.below(5) > 0).then(|| g.i64_small());
            let max = (g.below(5) > 0).then(|| g.i64_small());
            Some(SlotStat {
                min,
                max,
                ndv: g.below(1_000) as f64 / 3.0,
                scale: (g.below(6) == 0).then(|| g.below(3) as u8),
            })
        })
        .collect();
    FrameStats { slots }
}

fn random_literal(g: &mut Gen) -> Expr {
    Expr::Literal(match g.below(4) {
        0 => Literal::Integer(g.i64_small()),
        1 => Literal::Decimal(g.i64_small() as f64 / 7.0),
        2 => Literal::String(format!("s{}", g.below(50))),
        _ => Literal::Null,
    })
}

fn random_col(g: &mut Gen, width: usize) -> Expr {
    let tys = [Ty::Int, Ty::Decimal, Ty::Str, Ty::Date, Ty::Float];
    Expr::Col {
        slot: g.below(width as u64) as usize,
        ty: tys[g.below(tys.len() as u64) as usize],
    }
}

/// A random boolean predicate over `width` slots, depth-bounded.
fn random_pred(g: &mut Gen, width: usize, depth: usize) -> Expr {
    let cmp_ops = [
        BinOp::Eq,
        BinOp::NotEq,
        BinOp::Lt,
        BinOp::LtEq,
        BinOp::Gt,
        BinOp::GtEq,
    ];
    if depth > 0 && g.below(3) == 0 {
        return match g.below(3) {
            0 => Expr::and(
                random_pred(g, width, depth - 1),
                random_pred(g, width, depth - 1),
            ),
            1 => Expr::Binary {
                left: Box::new(random_pred(g, width, depth - 1)),
                op: BinOp::Or,
                right: Box::new(random_pred(g, width, depth - 1)),
            },
            _ => Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(random_pred(g, width, depth - 1)),
            },
        };
    }
    match g.below(6) {
        0 => Expr::Binary {
            left: Box::new(random_col(g, width)),
            op: cmp_ops[g.below(cmp_ops.len() as u64) as usize],
            right: Box::new(random_literal(g)),
        },
        1 => Expr::Binary {
            // Literal-on-the-left and column-vs-column comparisons.
            left: Box::new(random_literal(g)),
            op: cmp_ops[g.below(cmp_ops.len() as u64) as usize],
            right: Box::new(random_col(g, width)),
        },
        2 => Expr::Between {
            expr: Box::new(random_col(g, width)),
            negated: g.below(2) == 0,
            low: Box::new(random_literal(g)),
            high: Box::new(random_literal(g)),
        },
        3 => Expr::InList {
            expr: Box::new(random_col(g, width)),
            negated: g.below(2) == 0,
            list: (0..1 + g.below(6)).map(|_| random_literal(g)).collect(),
        },
        4 => Expr::Like {
            expr: Box::new(random_col(g, width)),
            negated: g.below(2) == 0,
            pattern: Box::new(Expr::Literal(Literal::String(format!(
                "%p{}%",
                g.below(9)
            )))),
        },
        _ => Expr::IsNull {
            expr: Box::new(random_col(g, width)),
            negated: g.below(2) == 0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn selectivity_is_always_a_fraction(seed in any::<u64>()) {
        let mut g = Gen(seed | 1);
        let width = 1 + g.below(8) as usize;
        let frame = random_frame(&mut g, width);
        let e = random_pred(&mut g, width, 3);
        let s = selectivity(&e, &frame);
        prop_assert!(
            (0.0..=1.0).contains(&s),
            "selectivity {s} out of [0,1] for {e}"
        );
    }

    #[test]
    fn adding_a_conjunct_never_increases_selectivity(seed in any::<u64>()) {
        let mut g = Gen(seed | 1);
        let width = 1 + g.below(8) as usize;
        let frame = random_frame(&mut g, width);
        let a = random_pred(&mut g, width, 2);
        let b = random_pred(&mut g, width, 2);
        let sa = selectivity(&a, &frame);
        let both = selectivity(&Expr::and(a.clone(), b.clone()), &frame);
        prop_assert!(
            both <= sa + 1e-12,
            "sel(a AND b) = {both} > sel(a) = {sa}\n a = {a}\n b = {b}"
        );
    }
}
