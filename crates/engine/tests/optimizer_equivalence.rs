//! The optimizer's contract: join reordering is result-preserving.
//!
//! Both full flights (TPC-H, SSB) plus handcrafted multi-join queries
//! run with the cost-based optimizer on and off, on both engines,
//! sequentially and with 4 morsel workers. Every pairing must produce
//! the same *result set*: identical column names and identical rows
//! after sorting their debug renderings — a reordered join legally
//! permutes row order wherever ORDER BY is absent or not a total
//! order, so exact row order is the rewriter wall's concern, not this
//! one's. On top of row equality, the optimizer must never move a
//! fingerprint: the canonical form is join-order-invariant, so EXPLAIN
//! with the optimizer on and off must hash identically.

use sqalpel_engine::{ColStore, Database, Dbms, ResultSet, RowStore};
use std::sync::Arc;

/// Order-insensitive byte-exact comparison: each row's debug rendering
/// is collected and sorted, so any permutation of identical rows
/// passes and any value difference fails.
fn sorted_rows(rs: &ResultSet) -> Vec<String> {
    let mut v: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

fn assert_same_set(name: &str, ctx: &str, a: &ResultSet, b: &ResultSet) {
    assert_eq!(a.columns, b.columns, "{name} [{ctx}]: column names differ");
    assert_eq!(
        sorted_rows(a),
        sorted_rows(b),
        "{name} [{ctx}]: row sets differ"
    );
}

fn check_queries(db: Arc<Database>, queries: &[(&str, &str)]) {
    // Fingerprint invariance is thread-independent; check it once.
    let on = RowStore::new(db.clone());
    let off = RowStore::new(db.clone()).with_optimizer(false);
    for (name, sql) in queries {
        let a = on.explain(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
        let b = off.explain(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "{name}: fingerprint moved with the join order\n--- optimized ---\n{}\n--- syntactic ---\n{}",
            a.text, b.text
        );
    }
    for &threads in &[1usize, 4] {
        let row_on = RowStore::new(db.clone()).with_threads(threads);
        let row_off = RowStore::new(db.clone())
            .with_threads(threads)
            .with_optimizer(false);
        let col_on = ColStore::new(db.clone()).with_threads(threads);
        let col_off = ColStore::new(db.clone())
            .with_threads(threads)
            .with_optimizer(false);
        for (name, sql) in queries {
            let ctx_row = format!("rowstore, threads={threads}");
            let ctx_col = format!("colstore, threads={threads}");
            let a = row_on
                .execute(sql)
                .unwrap_or_else(|e| panic!("{name} [{ctx_row}, optimizer on] failed: {e}"));
            let b = row_off
                .execute(sql)
                .unwrap_or_else(|e| panic!("{name} [{ctx_row}, optimizer off] failed: {e}"));
            assert_same_set(name, &ctx_row, &a, &b);
            let c = col_on
                .execute(sql)
                .unwrap_or_else(|e| panic!("{name} [{ctx_col}, optimizer on] failed: {e}"));
            let d = col_off
                .execute(sql)
                .unwrap_or_else(|e| panic!("{name} [{ctx_col}, optimizer off] failed: {e}"));
            assert_same_set(name, &ctx_col, &c, &d);
            // No cross-engine assert here: the engines intentionally
            // differ in aggregate value representation (float vs
            // decimal); cross_engine.rs owns that comparison with the
            // appropriate normalization.
        }
    }
}

#[test]
fn tpch_flight_is_join_order_invariant() {
    let db = Arc::new(Database::tpch(0.0005, 7));
    check_queries(db, &sqalpel_sql::tpch::all_queries());
}

#[test]
fn ssb_flight_is_join_order_invariant() {
    let db = Arc::new(Database::ssb(0.002, 7));
    check_queries(db, &sqalpel_sql::ssb::all_queries());
}

#[test]
fn multi_join_corner_cases_are_join_order_invariant() {
    let db = Arc::new(Database::tpch(0.001, 42));
    let queries: &[(&str, &str)] = &[
        // A FROM list written in the worst order: big relations first,
        // the selective region filter dead last.
        (
            "worst-syntactic-order",
            "select count(*) from lineitem, orders, customer, nation, region \
             where l_orderkey = o_orderkey and o_custkey = c_custkey \
               and c_nationkey = n_nationkey and n_regionkey = r_regionkey \
               and r_name = 'ASIA'",
        ),
        // An unconnected FROM item: the optimizer must cope with a
        // genuine cross product in the region.
        (
            "cross-product-region",
            "select count(*) from region, nation, supplier \
             where n_nationkey = s_nationkey",
        ),
        // Join with a non-equi (residual) predicate between two tables.
        (
            "residual-join",
            "select count(*) from part, lineitem \
             where p_partkey = l_partkey and l_quantity < p_size",
        ),
        // LEFT OUTER is a reorder barrier; inner regions on both sides.
        (
            "outer-barrier",
            "select n_name, count(r_name) from nation \
             left join region on n_regionkey = r_regionkey and r_name like 'A%' \
             group by n_name order by n_name",
        ),
        // A derived table as a region leaf, its body its own region.
        (
            "derived-leaf",
            "select count(*) from \
             (select o_orderkey, o_custkey from orders where o_totalprice > 1000) o, \
             customer, nation \
             where o_custkey = c_custkey and c_nationkey = n_nationkey",
        ),
        // CTE referenced twice: both references are leaves of one region.
        (
            "cte-twice",
            "with n as (select n_nationkey, n_name, n_regionkey from nation) \
             select count(*) from n a, n b, region \
             where a.n_regionkey = r_regionkey and b.n_regionkey = r_regionkey \
               and a.n_nationkey < b.n_nationkey",
        ),
        // Correlated subquery predicate: immovable, must stay above the
        // region while the rest reorders.
        (
            "correlated-immovable",
            "select count(*) from supplier, nation \
             where s_nationkey = n_nationkey \
               and s_acctbal > (select min(c_acctbal) from customer \
                                where c_nationkey = n_nationkey)",
        ),
        // Self-join chain with an ORDER BY that is not a total order.
        (
            "partial-order-by",
            "select a.n_regionkey, b.n_name from nation a, nation b, region \
             where a.n_regionkey = b.n_regionkey and a.n_regionkey = r_regionkey \
             order by a.n_regionkey",
        ),
    ];
    check_queries(db, queries);
}
