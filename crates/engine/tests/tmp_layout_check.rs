use sqalpel_engine::{Planner, Database};

#[test]
fn boundquery_core_offset() {
    let db = Database::tpch_sample();
    let q = sqalpel_sql::parse_query("select n_name from nation").unwrap();
    let bound = Planner::new(&db).bind(&q).unwrap();
    let bq_addr = &bound as *const _ as usize;
    let core_addr = &bound.core as *const _ as usize;
    eprintln!("bq={bq_addr:#x} core={core_addr:#x} offset={}", core_addr - bq_addr);
    assert_ne!(bq_addr, core_addr, "select node and core plan share a profile key");
}
