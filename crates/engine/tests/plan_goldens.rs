//! Plan goldens for the cost-based join-order optimizer.
//!
//! The five TPC-H queries where join order matters most (Q5, Q7, Q8,
//! Q9, Q21) are pinned through [`RowStore::explain_adaptive`]: each
//! golden holds the *cold* plan (chosen from load-time statistics
//! alone, `est_rows` next to executed actuals) followed by the
//! *reoptimized* plan (re-planned with the observed cardinalities as
//! hints). The goldens therefore lock down three things at once — the
//! chosen join order, the estimator's numbers, and the adaptive loop's
//! second-pass behavior. Timings are masked (`time=***`); row counts
//! stay live because the data is reproducible (SF 0.001, seed 42).
//!
//! Re-bless with `SQALPEL_BLESS=1` (or `./ci.sh plan-goldens --bless`).

use sqalpel_engine::{Database, Dbms, RowStore};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join("plan")
}

fn golden_name(query: &str) -> String {
    format!("{}.txt", query.to_lowercase().replace(['.', '-'], "_"))
}

/// Replace every `time=<digits>ns` with `time=***`.
fn mask_times(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find("time=") {
        let after = pos + "time=".len();
        out.push_str(&rest[..after]);
        rest = &rest[after..];
        let digits = rest.chars().take_while(char::is_ascii_digit).count();
        if digits > 0 && rest[digits..].starts_with("ns") {
            out.push_str("***");
            rest = &rest[digits + 2..];
        }
    }
    out.push_str(rest);
    out
}

/// The join-order slice: every multi-way inner-join query the issue
/// names, each with at least four relations in one region.
fn slice() -> Vec<(&'static str, &'static str)> {
    let picks = ["Q5", "Q7", "Q8", "Q9", "Q21"];
    sqalpel_sql::tpch::all_queries()
        .into_iter()
        .filter(|(name, _)| picks.contains(name))
        .collect()
}

#[test]
fn adaptive_plans_match_goldens() {
    let bless = std::env::var_os("SQALPEL_BLESS").is_some();
    let db = Arc::new(Database::tpch(0.001, 42));
    let row = RowStore::new(db).with_threads(1);
    let dir = golden_dir();
    if bless {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut drifted = Vec::new();
    for (name, sql) in slice() {
        let (cold, warm) = row
            .explain_adaptive(sql)
            .unwrap_or_else(|e| panic!("{name} failed adaptive explain: {e}"));

        // Reoptimization may change the join order but never the plan
        // identity: the fingerprint is join-order-invariant.
        assert_eq!(
            cold.fingerprint, warm.fingerprint,
            "{name}: reoptimization moved the fingerprint"
        );
        assert!(
            cold.text.contains("est_rows="),
            "{name}: cold plan lacks estimates:\n{}",
            cold.text
        );

        let rendered = format!(
            "fingerprint: {}\n-- cold (stats-only estimates)\n{}-- reoptimized (actual-cardinality hints)\n{}",
            cold.fingerprint_hex(),
            mask_times(&cold.text),
            mask_times(&warm.text),
        );
        let path = dir.join(golden_name(name));
        if bless {
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing golden {}: {e}", path.display()));
        if golden != rendered {
            drifted.push(format!(
                "{name}: plan golden drifted from {}\n--- golden ---\n{golden}\n--- actual ---\n{rendered}",
                path.display()
            ));
        }
    }
    assert!(
        drifted.is_empty(),
        "{} golden(s) drifted; re-bless with SQALPEL_BLESS=1 if intended\n\n{}",
        drifted.len(),
        drifted.join("\n")
    );
}

#[test]
fn optimizer_reorders_the_slice() {
    // The acceptance bar: with the optimizer on, at least three of the
    // five pinned queries pick a join order different from the
    // syntactic one. All five currently reorder; three keeps the gate
    // meaningful without pinning the exact count.
    let db = Arc::new(Database::tpch(0.001, 42));
    let on = RowStore::new(db.clone()).with_threads(1);
    let off = RowStore::new(db).with_threads(1).with_optimizer(false);
    let mut reordered = 0;
    for (name, sql) in slice() {
        let a = on.explain(sql).unwrap();
        let b = off.explain(sql).unwrap();
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "{name}: optimizer on/off disagree on fingerprint"
        );
        if a.text != b.text {
            reordered += 1;
        }
    }
    assert!(
        reordered >= 3,
        "optimizer changed only {reordered}/5 join orders on the pinned slice"
    );
}

#[test]
fn plan_goldens_cover_the_slice() {
    let mut files: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("golden dir exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    files.sort();
    let mut expected: Vec<String> = slice().iter().map(|(n, _)| golden_name(n)).collect();
    expected.sort();
    assert_eq!(files, expected);
}
