//! Property tests for the compressed storage layer.
//!
//! Dictionary and frame-of-reference encodings must be lossless, and a
//! zone map may only skip a chunk when no row in the *unencoded* data
//! could satisfy the predicate — a false skip silently drops rows, which
//! no differential wall would catch if both engines shared the bug.

use proptest::prelude::*;
use sqalpel_engine::storage::{
    date_col, dict_encode, int_col, str_col, ColumnData, ForVec, Table, CHUNK_ROWS,
};
use sqalpel_engine::value::Day;

/// Deterministic splitmix-style expansion of a proptest-drawn seed, the
/// same idiom the profiler property tests use for structured inputs.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 17
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Strings drawn from a small random pool so dictionary encoding engages;
/// the pool itself is arbitrary, so dictionaries see unsorted, duplicated,
/// and empty-string inputs. Spans multiple chunks.
fn low_ndv_strings(seed: u64, len: usize) -> Vec<String> {
    let mut g = Gen(seed | 1);
    let pool_size = 1 + g.below(24) as usize;
    let alphabet = [
        "", "a", "b", "z", "aa", "ab", "ship", "mail", "rail", "air", "truck", "Ä", "名",
    ];
    let pool: Vec<String> = (0..pool_size)
        .map(|_| {
            let n = g.below(4);
            (0..n)
                .map(|_| alphabet[g.below(alphabet.len() as u64) as usize])
                .collect::<Vec<_>>()
                .join("-")
        })
        .collect();
    (0..len)
        .map(|_| pool[g.below(pool.len() as u64) as usize].clone())
        .collect()
}

/// Integer vectors spanning several chunks, mixing narrow clusters (where
/// bit-packing engages) with full-range outliers (where it must not lose
/// bits).
fn mixed_ints(seed: u64, len: usize) -> Vec<i64> {
    let mut g = Gen(seed | 1);
    (0..len)
        .map(|_| {
            if g.below(10) == 0 {
                g.next() as i64 ^ (g.next() as i64) << 32
            } else {
                g.below(10_000) as i64
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// dict_encode is lossless: `dict[codes[i]] == values[i]`, and the
    /// dictionary is strictly sorted so code order is string order.
    #[test]
    fn dict_encode_round_trips(seed in any::<u64>(), len in 1usize..6000) {
        let values = low_ndv_strings(seed, len);
        let (codes, dict) = dict_encode(&values).expect("low-NDV input must encode");
        prop_assert_eq!(codes.len(), values.len());
        prop_assert!(dict.windows(2).all(|w| w[0] < w[1]), "dict must be strictly sorted");
        for (code, value) in codes.iter().zip(&values) {
            prop_assert_eq!(&dict[*code as usize], value);
        }
    }

    /// Frame-of-reference bit-packing is lossless for any i64 input,
    /// including full-range outliers, via both `get` and `decode`.
    #[test]
    fn for_encode_round_trips(seed in any::<u64>(), len in 0usize..10_000) {
        let values = mixed_ints(seed, len);
        let packed = ForVec::encode(&values);
        prop_assert_eq!(packed.len(), values.len());
        prop_assert_eq!(&packed.decode(), &values);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(packed.get(i), v);
        }
    }

    /// Optimizer statistics are encoding-blind: a bit-packed column and
    /// its raw twin collect identical min/max/NDV, so the join-order
    /// search sees the same numbers regardless of storage layout.
    #[test]
    fn for_encoding_does_not_change_stats(seed in any::<u64>(), len in 0usize..10_000) {
        let values = mixed_ints(seed, len);
        let raw = sqalpel_engine::ir::stats::collect(&ColumnData::Int(values.clone()));
        let packed = sqalpel_engine::ir::stats::collect(&ColumnData::ForInt(ForVec::encode(&values)));
        prop_assert_eq!(raw, packed);
    }

    /// Same for dictionary encoding: the sketch hashes strings, not
    /// codes, so the NDV estimate survives the encoding exactly.
    #[test]
    fn dict_encoding_does_not_change_stats(seed in any::<u64>(), len in 1usize..6000) {
        let values = low_ndv_strings(seed, len);
        let raw = sqalpel_engine::ir::stats::collect(&ColumnData::Str(values.clone()));
        let (codes, dict) = dict_encode(&values).expect("low-NDV input must encode");
        let encoded = sqalpel_engine::ir::stats::collect(&ColumnData::Dict { codes, dict });
        prop_assert_eq!(raw, encoded);
    }

    /// ForVec chunk bounds are exact: each chunk's (min, max) equals the
    /// true min/max of the raw values in that chunk.
    #[test]
    fn for_chunk_bounds_are_exact(seed in any::<u64>(), len in 1usize..10_000) {
        let values = mixed_ints(seed, len);
        let packed = ForVec::encode(&values);
        let bounds: Vec<(i64, i64)> = packed.chunk_bounds().collect();
        let raw: Vec<&[i64]> = values.chunks(CHUNK_ROWS).collect();
        prop_assert_eq!(bounds.len(), raw.len());
        for (b, chunk) in bounds.iter().zip(&raw) {
            prop_assert_eq!(b.0, chunk.iter().copied().min().unwrap());
            prop_assert_eq!(b.1, chunk.iter().copied().max().unwrap());
        }
    }

    /// Zone-map soundness for numeric scans: when `overlaps` says a chunk
    /// can be skipped for `v ∈ [lo, hi]`, no row of the unencoded input in
    /// that chunk satisfies the predicate — whichever physical encoding
    /// the loader picked.
    #[test]
    fn zone_skip_never_drops_qualifying_rows(
        seed in any::<u64>(),
        len in 1usize..10_000,
        lo in any::<i64>(),
        span in 0i64..1_000_000,
    ) {
        let values = mixed_ints(seed, len);
        let hi = lo.saturating_add(span);
        let table = Table::new(
            "t",
            vec![
                int_col("v", values.iter().copied()),
                date_col("d", values.iter().map(|&v| (v as i32).unsigned_abs().min(1 << 20) as Day)),
            ],
        )
        .unwrap();
        let zm = table.zone_map(0).expect("int columns always have zone maps");
        for (chunk, raw) in values.chunks(CHUNK_ROWS).enumerate() {
            if !zm.overlaps(chunk, Some(lo), Some(hi)) {
                prop_assert!(
                    raw.iter().all(|&v| v < lo || v > hi),
                    "chunk {} skipped but contains a qualifying row", chunk
                );
            }
        }
        let dzm = table.zone_map(1).expect("date columns always have zone maps");
        for (chunk, raw) in values.chunks(CHUNK_ROWS).enumerate() {
            if !dzm.overlaps(chunk, Some(lo), Some(hi)) {
                prop_assert!(
                    raw.iter()
                        .map(|&v| (v as i32).unsigned_abs().min(1 << 20) as i64)
                        .all(|v| v < lo || v > hi),
                    "date chunk {} skipped but contains a qualifying row", chunk
                );
            }
        }
    }

    /// Zone-map completeness for dictionary columns: a chunk that contains
    /// string `s` always overlaps the code-domain point predicate for `s`,
    /// so an equality scan can never skip a chunk holding a match.
    #[test]
    fn dict_zone_map_covers_every_present_string(seed in any::<u64>(), len in 1usize..6000) {
        let values = low_ndv_strings(seed, len);
        let table = Table::new("t", vec![str_col("s", values.iter().cloned())]).unwrap();
        let ColumnData::Dict { dict, .. } = &table.columns[0].data else {
            panic!("low-NDV strings must dictionary-encode");
        };
        let zm = table.zone_map(0).expect("dict columns have code-domain zone maps");
        for (chunk, raw) in values.chunks(CHUNK_ROWS).enumerate() {
            for s in raw {
                let code = dict.binary_search(s).expect("dict covers values") as i64;
                prop_assert!(
                    zm.overlaps(chunk, Some(code), Some(code)),
                    "chunk {} holds {:?} but its zone map excludes code {}", chunk, s, code
                );
            }
        }
    }
}

/// Above DICT_MAX_NDV distinct values the encoder must decline rather
/// than build an unprofitable dictionary.
#[test]
fn dict_encode_rejects_high_ndv() {
    let values: Vec<String> = (0..2000).map(|i| format!("val-{i:04}")).collect();
    assert!(dict_encode(&values).is_none());
}
