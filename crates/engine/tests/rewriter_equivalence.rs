//! The rewriter's contract: every rewrite is result-preserving.
//!
//! Both full flights (TPC-H, SSB) plus handcrafted queries that exercise
//! each rule's tricky corners run with the rewriter on and off, on both
//! engines, sequentially and with 4 morsel workers — and every pairing
//! must produce byte-identical ResultSets (column names and debug-exact
//! rows, not just approximate equality).

use sqalpel_engine::{ColStore, Database, Dbms, ResultSet, RowStore};
use std::sync::Arc;

/// Byte-identical comparison: Value has no PartialEq by design, so the
/// rows are compared through their exact debug rendering.
fn assert_identical(name: &str, ctx: &str, a: &ResultSet, b: &ResultSet) {
    assert_eq!(a.columns, b.columns, "{name} [{ctx}]: column names differ");
    assert_eq!(
        format!("{:?}", a.rows),
        format!("{:?}", b.rows),
        "{name} [{ctx}]: rows differ"
    );
}

fn check_queries(db: Arc<Database>, queries: &[(&str, &str)]) {
    for &threads in &[1usize, 4] {
        // The join-order optimizer is pinned off on every store: this
        // wall isolates the *rewriter*, and exact row order is only
        // comparable when both sides execute the same join order (see
        // optimizer_equivalence for the optimizer's own wall).
        let row_on = RowStore::new(db.clone())
            .with_threads(threads)
            .with_optimizer(false);
        let row_off = RowStore::new(db.clone())
            .with_threads(threads)
            .with_optimizer(false)
            .with_rewriter(false);
        let col_on = ColStore::new(db.clone())
            .with_threads(threads)
            .with_optimizer(false);
        let col_off = ColStore::new(db.clone())
            .with_threads(threads)
            .with_optimizer(false)
            .with_rewriter(false);
        for (name, sql) in queries {
            let ctx_row = format!("rowstore, threads={threads}");
            let ctx_col = format!("colstore, threads={threads}");
            let a = row_on
                .execute(sql)
                .unwrap_or_else(|e| panic!("{name} [{ctx_row}, rewrite on] failed: {e}"));
            let b = row_off
                .execute(sql)
                .unwrap_or_else(|e| panic!("{name} [{ctx_row}, rewrite off] failed: {e}"));
            assert_identical(name, &ctx_row, &a, &b);
            let c = col_on
                .execute(sql)
                .unwrap_or_else(|e| panic!("{name} [{ctx_col}, rewrite on] failed: {e}"));
            let d = col_off
                .execute(sql)
                .unwrap_or_else(|e| panic!("{name} [{ctx_col}, rewrite off] failed: {e}"));
            assert_identical(name, &ctx_col, &c, &d);
        }
    }
}

#[test]
fn tpch_flight_is_rewrite_invariant() {
    let db = Arc::new(Database::tpch(0.0005, 7));
    check_queries(db, &sqalpel_sql::tpch::all_queries());
}

#[test]
fn ssb_flight_is_rewrite_invariant() {
    let db = Arc::new(Database::ssb(0.002, 7));
    check_queries(db, &sqalpel_sql::ssb::all_queries());
}

#[test]
fn rule_corner_cases_are_rewrite_invariant() {
    let db = Arc::new(Database::tpch(0.001, 42));
    let queries: &[(&str, &str)] = &[
        // Constant folding, including short-circuit booleans.
        (
            "const-fold",
            "select n_name from nation where 1 + 1 = 2 and n_regionkey < 2 + 1",
        ),
        (
            "trivial-true-filter",
            "select count(*) from lineitem where 1 = 1",
        ),
        (
            "contradiction-filter",
            "select n_name from nation where 1 = 0",
        ),
        // Pushdown through an inner join plus duplicate equi-conjuncts.
        (
            "dup-equi-conjuncts",
            "select n_name, r_name from nation, region \
             where n_regionkey = r_regionkey and r_regionkey = n_regionkey \
               and r_name = 'ASIA' order by n_name",
        ),
        // Pushdown into a derived table.
        (
            "derived-pushdown",
            "select x_name from (select n_name as x_name, n_regionkey as x_reg \
             from nation) t where x_reg = 2 order by x_name",
        ),
        // Pushdown into a derived table under a join.
        (
            "derived-under-join",
            "select x_name, r_name from \
             (select n_name as x_name, n_regionkey as x_reg from nation) t, region \
             where x_reg = r_regionkey and x_reg < 3 order by x_name, r_name",
        ),
        // Pushdown into a CTE body referenced once.
        (
            "cte-pushdown",
            "with big as (select o_orderkey, o_totalprice, o_custkey from orders) \
             select count(*), sum(o_totalprice) from big where o_custkey < 500",
        ),
        // A CTE referenced twice: per-reference filters must not leak
        // into the shared body.
        (
            "cte-shared-twice",
            "with n as (select n_nationkey, n_name, n_regionkey from nation) \
             select a.n_name, b.n_name from n a, n b \
             where a.n_regionkey = 0 and b.n_regionkey = 1 \
               and a.n_nationkey < b.n_nationkey \
             order by a.n_name, b.n_name",
        ),
        // Projection pruning: a wide scan of which only one column is live.
        (
            "liveness-prune",
            "select count(*) from lineitem where l_quantity < 10",
        ),
        // Left outer joins must keep their filters above the join.
        (
            "left-outer-filter",
            "select n_name, r_name from nation left join region \
             on n_regionkey = r_regionkey and r_name = 'ASIA' \
             order by n_name",
        ),
        // Correlated subquery: the outer column must survive pruning.
        (
            "correlated-subquery",
            "select n_name from nation n where n_regionkey = \
             (select min(r_regionkey) from region where r_regionkey = n.n_regionkey) \
             order by n_name",
        ),
        // Aggregation over an expression the rewriter could fold.
        (
            "agg-over-folded",
            "select l_returnflag, sum(l_quantity * (2 - 1)) from lineitem \
             group by l_returnflag order by l_returnflag",
        ),
    ];
    check_queries(db, queries);
}
