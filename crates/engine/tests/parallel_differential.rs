//! Morsel-parallel execution must be observationally identical to
//! sequential execution: for every query, `threads = N` returns the exact
//! same rows in the exact same order as `threads = 1` — or fails with the
//! same *kind* of error. (Budget error *messages* quote the shared row
//! counter, whose exact value at abort time may differ between thread
//! counts, so kinds are compared rather than messages.)
//!
//! The scale factor is chosen so lineitem comfortably exceeds the
//! engine's parallel spawn threshold — otherwise every query would take
//! the sequential path on both sides and the test would be vacuous.

use sqalpel_engine::{ColStore, Database, Dbms, EngineError, RowStore};
use std::sync::Arc;

/// Thread count for the parallel side of every comparison.
const THREADS: usize = 4;

/// The engines refuse to choose a parallel plan when the host offers a
/// single core (it would be pure overhead); force the worker bound up so
/// this suite exercises the parallel kernels on any CI machine. Every
/// test calls this before its first engine use — the bound is read once,
/// lazily, so the first caller in the process wins with the same value.
fn force_parallel() {
    std::env::set_var("SQALPEL_FORCE_WORKERS", "8");
}

fn kind(e: &EngineError) -> &'static str {
    match e {
        EngineError::Parse(_) => "parse",
        EngineError::UnknownTable(_) => "unknown-table",
        EngineError::UnknownColumn(_) => "unknown-column",
        EngineError::AmbiguousColumn(_) => "ambiguous-column",
        EngineError::Type(_) => "type",
        EngineError::Unsupported(_) => "unsupported",
        EngineError::Overflow(_) => "overflow",
        EngineError::ScalarCardinality(_) => "scalar-cardinality",
        EngineError::Budget(_) => "budget",
    }
}

/// Run `sql` on a sequential and a parallel clone of the same system and
/// demand byte-identical success or same-kind failure.
fn assert_thread_invariant<D: Dbms>(seq: &D, par: &D, name: &str, sql: &str) {
    match (seq.execute(sql), par.execute(sql)) {
        (Ok(a), Ok(b)) => assert!(
            a.approx_eq(&b, 0.0),
            "{name} differs on {} between threads=1 and threads={THREADS}:\n{a}\nvs\n{b}",
            seq.label(),
        ),
        (Err(a), Err(b)) => assert_eq!(
            kind(&a),
            kind(&b),
            "{name} fails differently on {}: threads=1 -> {a}, threads={THREADS} -> {b}",
            seq.label(),
        ),
        (Ok(a), Err(b)) => panic!(
            "{name} on {}: threads=1 succeeded but threads={THREADS} failed: {b}\n{a}",
            seq.label()
        ),
        (Err(a), Ok(b)) => panic!(
            "{name} on {}: threads=1 failed ({a}) but threads={THREADS} succeeded\n{b}",
            seq.label()
        ),
    }
}

fn tpch_db() -> Arc<Database> {
    // SF 0.005: lineitem ~30k rows, well past the morsel spawn threshold.
    Arc::new(Database::tpch(0.005, 7))
}

/// Queries whose joins degenerate to filtered cross products (Q19's OR
/// group spans both tables) materialize enormous intermediates at this
/// scale; a tight budget kills them — identically at every thread count,
/// which is exactly what this suite verifies.
const SUITE_BUDGET: u64 = 20_000_000;

#[test]
fn tpch_rowstore_threads_are_invisible() {
    force_parallel();
    let db = tpch_db();
    let seq = RowStore::new(db.clone()).with_budget(SUITE_BUDGET).with_threads(1);
    let par = RowStore::new(db).with_budget(SUITE_BUDGET).with_threads(THREADS);
    for (name, sql) in sqalpel_sql::tpch::all_queries() {
        assert_thread_invariant(&seq, &par, name, sql);
    }
}

#[test]
fn tpch_colstore_threads_are_invisible() {
    force_parallel();
    let db = tpch_db();
    let seq = ColStore::new(db.clone()).with_budget(SUITE_BUDGET).with_threads(1);
    let par = ColStore::new(db).with_budget(SUITE_BUDGET).with_threads(THREADS);
    for (name, sql) in sqalpel_sql::tpch::all_queries() {
        assert_thread_invariant(&seq, &par, name, sql);
    }
}

#[test]
fn ssb_flight_threads_are_invisible() {
    force_parallel();
    let db = Arc::new(Database::ssb(0.005, 7));
    let row_seq = RowStore::new(db.clone()).with_budget(SUITE_BUDGET).with_threads(1);
    let row_par = RowStore::new(db.clone()).with_budget(SUITE_BUDGET).with_threads(THREADS);
    let col_seq = ColStore::new(db.clone()).with_budget(SUITE_BUDGET).with_threads(1);
    let col_par = ColStore::new(db).with_budget(SUITE_BUDGET).with_threads(THREADS);
    for (name, sql) in sqalpel_sql::ssb::all_queries() {
        assert_thread_invariant(&row_seq, &row_par, name, sql);
        assert_thread_invariant(&col_seq, &col_par, name, sql);
    }
}

#[test]
fn budget_kill_fires_at_every_thread_count() {
    force_parallel();
    // A budget small enough that the scan itself blows it: the *kind* of
    // failure must not depend on how many workers shared the counter.
    let db = tpch_db();
    let sql = "select count(*) from lineitem where l_quantity < 24";
    for threads in [1, 2, THREADS, 8] {
        let row = RowStore::new(db.clone()).with_budget(1_000).with_threads(threads);
        let col = ColStore::new(db.clone()).with_budget(1_000).with_threads(threads);
        assert!(
            matches!(row.execute(sql), Err(EngineError::Budget(_))),
            "rowstore budget kill missing at threads={threads}"
        );
        assert!(
            matches!(col.execute(sql), Err(EngineError::Budget(_))),
            "colstore budget kill missing at threads={threads}"
        );
    }
}

#[test]
fn binding_errors_are_identical_at_every_thread_count() {
    force_parallel();
    // Errors raised before (unknown names) and during (row-level type
    // clash) parallel execution must carry the same kind either way.
    let db = tpch_db();
    let cases = [
        "select nope from lineitem where l_quantity < 24",
        "select l_orderkey from nowhere",
        "select l_orderkey from lineitem where l_comment + 1 > 0",
    ];
    let row_seq = RowStore::new(db.clone()).with_threads(1);
    let row_par = RowStore::new(db.clone()).with_threads(THREADS);
    let col_seq = ColStore::new(db.clone()).with_threads(1);
    let col_par = ColStore::new(db).with_threads(THREADS);
    for sql in cases {
        assert_thread_invariant(&row_seq, &row_par, "error-case", sql);
        assert_thread_invariant(&col_seq, &col_par, "error-case", sql);
    }
}
