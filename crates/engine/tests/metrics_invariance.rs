//! The profiler's contract: observing an execution never changes it.
//!
//! Both full flights (TPC-H, SSB) run on both engines, sequentially and
//! with 4 morsel workers, profiler on (`execute_analyzed`) and off
//! (`execute`). Every pairing must produce byte-identical ResultSets,
//! the ANALYZE fingerprint must equal the plain EXPLAIN fingerprint, and
//! the profiled (op, rows_in, rows_out) strip must be identical across
//! engines and across thread counts — row counts are a property of the
//! plan's semantics, not of who executes it or how many workers it gets.
//! (Batch counts and timings are engine- and schedule-specific, so they
//! are deliberately left out of the cross-engine comparison.)

use sqalpel_engine::{
    AnalyzedPlan, ColStore, Database, Dbms, EngineResult, ResultSet, RowStore,
};
use std::sync::Arc;

/// Byte-identical comparison: Value has no PartialEq by design, so the
/// rows are compared through their exact debug rendering.
fn assert_identical(name: &str, ctx: &str, a: &ResultSet, b: &ResultSet) {
    assert_eq!(a.columns, b.columns, "{name} [{ctx}]: column names differ");
    assert_eq!(
        format!("{:?}", a.rows),
        format!("{:?}", b.rows),
        "{name} [{ctx}]: rows differ"
    );
}

/// Either engine behind one face, so the checks below read uniformly.
enum Store {
    Row(RowStore),
    Col(ColStore),
}

impl Store {
    fn execute(&self, sql: &str) -> EngineResult<ResultSet> {
        match self {
            Store::Row(s) => s.execute(sql),
            Store::Col(s) => s.execute(sql),
        }
    }

    fn execute_analyzed(&self, sql: &str) -> EngineResult<(ResultSet, AnalyzedPlan)> {
        match self {
            Store::Row(s) => s.execute_analyzed(sql),
            Store::Col(s) => s.execute_analyzed(sql),
        }
    }

    fn plain_fingerprint(&self, sql: &str) -> u64 {
        match self {
            Store::Row(s) => s.explain(sql).expect("plain explain").fingerprint,
            Store::Col(s) => s.explain(sql).expect("plain explain").fingerprint,
        }
    }
}

/// The schedule-independent part of a profile: per operator, the rows
/// that flowed in and out.
type RowStrip = Vec<(String, u64, u64)>;

fn row_strip(plan: &AnalyzedPlan) -> RowStrip {
    plan.ops
        .iter()
        .map(|op| (op.op.clone(), op.metrics.rows_in, op.metrics.rows_out))
        .collect()
}

fn check_queries(db: Arc<Database>, queries: &[(&str, &str)]) {
    for (name, sql) in queries {
        // One strip per (engine, threads) pairing; all four must agree.
        let mut strips: Vec<(String, RowStrip)> = Vec::new();
        for &threads in &[1usize, 4] {
            let stores = [
                ("rowstore", Store::Row(RowStore::new(db.clone()).with_threads(threads))),
                ("colstore", Store::Col(ColStore::new(db.clone()).with_threads(threads))),
            ];
            for (engine, store) in &stores {
                let ctx = format!("{engine}, threads={threads}");
                let off = store
                    .execute(sql)
                    .unwrap_or_else(|e| panic!("{name} [{ctx}, profiler off] failed: {e}"));
                let (on, plan) = store
                    .execute_analyzed(sql)
                    .unwrap_or_else(|e| panic!("{name} [{ctx}, profiler on] failed: {e}"));
                assert_identical(name, &ctx, &off, &on);
                assert_eq!(
                    plan.explain.fingerprint,
                    store.plain_fingerprint(sql),
                    "{name} [{ctx}]: ANALYZE changed the plan fingerprint"
                );
                assert!(
                    plan.explain.text.contains("rows_in="),
                    "{name} [{ctx}]: ANALYZE text carries no metrics"
                );
                strips.push((ctx, row_strip(&plan)));
            }
        }
        let (base_ctx, base) = &strips[0];
        for (ctx, strip) in &strips[1..] {
            assert_eq!(
                strip, base,
                "{name}: profiled rows differ between [{base_ctx}] and [{ctx}]"
            );
        }
    }
}

#[test]
fn tpch_flight_profiles_invariantly() {
    let db = Arc::new(Database::tpch(0.0005, 7));
    check_queries(db, &sqalpel_sql::tpch::all_queries());
}

#[test]
fn ssb_flight_profiles_invariantly() {
    let db = Arc::new(Database::ssb(0.002, 7));
    check_queries(db, &sqalpel_sql::ssb::all_queries());
}
