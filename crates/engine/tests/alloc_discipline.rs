//! The radix kernels' allocation contract: aggregation and join inner
//! loops must not allocate per row for int/decimal keys. A counting
//! global allocator measures whole-query allocation counts; the bound is
//! a small fraction of the row count, so any per-row `Vec<Key>` boxing or
//! key cloning creeping back into the hot loops fails the test loudly.
//!
//! One `#[test]` only: the allocator counts globally, so concurrent tests
//! would pollute each other's deltas.

use sqalpel_engine::storage::{dec_col, int_col, str_col};
use sqalpel_engine::{ColStore, Database, Dbms, Table};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static A: Counting = Counting;

const ROWS: usize = 100_000;
const KEYS: usize = 1_000;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn kernel_loops_do_not_allocate_per_row() {
    // Lift the single-core worker bound so the partitioned kernels are
    // measured too, not just the sequential codec path.
    std::env::set_var("SQALPEL_FORCE_WORKERS", "8");

    let mut db = Database::new();
    db.add_table(
        Table::new(
            "facts",
            vec![
                int_col("k", (0..ROWS).map(|i| (i % KEYS) as i64)),
                dec_col("amount", (0..ROWS).map(|i| (i % 500) as i64), 2),
                // Low-NDV, so the loader dictionary-encodes it: predicates
                // and probes on this column run over u32 codes.
                str_col("tag", (0..ROWS).map(|i| format!("tag-{:02}", i % 40))),
            ],
        )
        .expect("facts table"),
    );
    db.add_table(
        Table::new("dims", vec![int_col("k", (0..KEYS).map(|i| i as i64))])
            .expect("dims table"),
    );
    // A second dimension keyed on the dict-encoded string: its own
    // (distinct) dictionary, so the join compares via string bytes.
    db.add_table(
        Table::new("tags", vec![str_col("tag", (0..40).map(|i| format!("tag-{i:02}")))])
            .expect("tags table"),
    );
    let db = Arc::new(db);

    let agg = "select k, count(*), sum(amount), min(amount), max(amount) from facts group by k";
    let join = "select count(*) from facts, dims where facts.k = dims.k";
    // Selection-vector path: vectorizable conjuncts evaluated stage by
    // stage over each chunk, the dict equality comparing u32 codes.
    let filt = "select count(*), sum(amount) from facts \
                where k >= 100 and k < 900 and tag = 'tag-07'";
    // Dict-probe path: both join keys are dictionary-encoded with
    // different dictionaries.
    let probe = "select count(*) from facts, tags where facts.tag = tags.tag";

    for threads in [1usize, 4] {
        let col = ColStore::new(db.clone()).with_threads(threads);
        // Warm once: lazy one-time state (worker bound, table caches)
        // must not count against the steady-state budget.
        col.execute(agg).expect("agg warms");
        col.execute(join).expect("join warms");
        col.execute(filt).expect("filter warms");
        col.execute(probe).expect("probe warms");

        // Steady-state allocation budget: group state, partition tables,
        // chunk merges and the result are all O(groups + chunks + cols),
        // far below the row count. Per-row boxing would cost >= ROWS
        // allocations and blow straight past ROWS / 2.
        let agg_allocs = allocs_during(|| {
            col.execute(agg).expect("agg executes");
        });
        assert!(
            agg_allocs < (ROWS / 2) as u64,
            "aggregation at threads={threads} allocated {agg_allocs} times \
             for {ROWS} rows — a per-row allocation is back in the loop"
        );

        let join_allocs = allocs_during(|| {
            col.execute(join).expect("join executes");
        });
        assert!(
            join_allocs < (ROWS / 2) as u64,
            "join at threads={threads} allocated {join_allocs} times \
             for {ROWS} probe rows — a per-row allocation is back in the loop"
        );

        // Selection-vector filters stay in the code domain: a dict
        // equality must not materialize strings per row, and the staged
        // conjuncts must not clone surviving rows between stages.
        let filt_allocs = allocs_during(|| {
            col.execute(filt).expect("filter executes");
        });
        assert!(
            filt_allocs < (ROWS / 2) as u64,
            "selection-vector filter at threads={threads} allocated {filt_allocs} times \
             for {ROWS} rows — a per-row allocation is back in the loop"
        );

        // Dict-keyed probe: key encoding reads dictionary bytes in place;
        // per-row String materialization would blow the budget.
        let probe_allocs = allocs_during(|| {
            col.execute(probe).expect("probe executes");
        });
        assert!(
            probe_allocs < (ROWS / 2) as u64,
            "dict probe at threads={threads} allocated {probe_allocs} times \
             for {ROWS} probe rows — a per-row allocation is back in the loop"
        );
    }
}
