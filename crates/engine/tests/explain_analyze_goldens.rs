//! EXPLAIN ANALYZE golden files for a representative query slice.
//!
//! Four TPC-H queries spanning the plan shapes (Q1 scan+agg, Q3 3-way
//! join, Q6 selective filter, Q18 CTE) plus one SSB star join are pinned
//! with their profiled annotations in `tests/goldens/explain_analyze/`.
//! Timings are inherently nondeterministic, so `time=<n>ns` is masked to
//! `time=***` before comparison — rows_in/rows_out/batches stay live, so
//! any cardinality drift trips the golden. Re-bless with
//! `SQALPEL_BLESS=1` (or `./ci.sh explain-goldens --bless`).
//!
//! At one worker both engines must render byte-identical masked output,
//! ANALYZE must not move the plan fingerprint, and the plain EXPLAIN
//! goldens must be untouched by the annotation machinery.

use sqalpel_engine::{ColStore, Database, Dbms, RowStore};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join("explain_analyze")
}

fn plain_golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join("explain")
}

fn golden_name(query: &str) -> String {
    format!("{}.txt", query.to_lowercase().replace(['.', '-'], "_"))
}

/// Replace every `time=<digits>ns` with `time=***`.
fn mask_times(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find("time=") {
        let after = pos + "time=".len();
        out.push_str(&rest[..after]);
        rest = &rest[after..];
        let digits = rest.chars().take_while(char::is_ascii_digit).count();
        if digits > 0 && rest[digits..].starts_with("ns") {
            out.push_str("***");
            rest = &rest[digits + 2..];
        }
    }
    out.push_str(rest);
    out
}

/// Remove ` chunks_scanned=<n> chunks_skipped=<n>` annotations — the
/// column engine's zone-map counters, which the row engine (the golden
/// oracle) has no notion of. Everything else must match byte-for-byte.
fn strip_chunks(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find(" chunks_scanned=") {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let end = rest.find(')').unwrap_or(rest.len());
        rest = &rest[end..];
    }
    out.push_str(rest);
    out
}

/// The pinned slice: every distinct plan shape, not the whole flight.
fn slice() -> Vec<(&'static str, &'static str)> {
    let picks = ["Q1", "Q3", "Q6", "Q18", "SSB-Q1.1"];
    sqalpel_sql::tpch::all_queries()
        .into_iter()
        .chain(sqalpel_sql::ssb::all_queries())
        .filter(|(name, _)| picks.contains(name))
        .collect()
}

fn check(db: Arc<Database>, queries: &[(&str, &str)]) {
    let bless = std::env::var_os("SQALPEL_BLESS").is_some();
    let row = RowStore::new(db.clone()).with_threads(1);
    let col = ColStore::new(db).with_threads(1);
    let dir = golden_dir();
    if bless {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut drifted = Vec::new();
    for (name, sql) in queries {
        let (_, a) = row
            .execute_analyzed(sql)
            .unwrap_or_else(|e| panic!("{name} failed to analyze on rowstore: {e}"));
        let (_, b) = col
            .execute_analyzed(sql)
            .unwrap_or_else(|e| panic!("{name} failed to analyze on colstore: {e}"));
        let masked = mask_times(&a.explain.text);
        assert_eq!(
            masked,
            strip_chunks(&mask_times(&b.explain.text)),
            "{name}: engines disagree on masked EXPLAIN ANALYZE text"
        );

        // ANALYZE annotates the rendering but never the plan identity.
        let plain = row.explain(sql).unwrap();
        assert_eq!(
            a.explain.fingerprint, plain.fingerprint,
            "{name}: ANALYZE moved the fingerprint"
        );
        let plain_golden = std::fs::read_to_string(plain_golden_dir().join(golden_name(name)))
            .unwrap_or_else(|e| panic!("{name}: missing plain golden: {e}"));
        assert_eq!(
            plain_golden,
            format!("fingerprint: {}\n{}", plain.fingerprint_hex(), plain.text),
            "{name}: plain EXPLAIN golden drifted — annotations leaked?"
        );

        let rendered = format!("fingerprint: {}\n{}", a.explain.fingerprint_hex(), masked);
        let path = dir.join(golden_name(name));
        if bless {
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing golden {}: {e}", path.display()));
        if golden != rendered {
            drifted.push(format!(
                "{name}: EXPLAIN ANALYZE drifted from {}\n--- golden ---\n{golden}\n--- actual ---\n{rendered}",
                path.display()
            ));
        }
    }
    assert!(
        drifted.is_empty(),
        "{} golden(s) drifted; re-bless with SQALPEL_BLESS=1 if intended\n\n{}",
        drifted.len(),
        drifted.join("\n")
    );
}

#[test]
fn analyze_slice_matches_goldens() {
    // Fixed scale and seed: the annotated row counts are part of the
    // golden, so the data must be reproducible, not just the schema.
    let tpch = Arc::new(Database::tpch(0.001, 42));
    let ssb = Arc::new(Database::ssb(0.001, 42));
    let (t, s): (Vec<_>, Vec<_>) = slice()
        .into_iter()
        .partition(|(name, _)| !name.starts_with("SSB"));
    check(tpch, &t);
    check(ssb, &s);
}

#[test]
fn colstore_analyze_reports_zone_skipping() {
    // Q6's date window covers one year of seven: with shipdate roughly
    // clustered by orderdate, most lineitem chunks prune, and the scan
    // node must say so.
    let db = Arc::new(Database::tpch(0.05, 42));
    let col = ColStore::new(db.clone()).with_threads(1);
    let (_, plan) = col.execute_analyzed(sqalpel_sql::tpch::Q6).unwrap();
    let scan = plan
        .ops
        .iter()
        .find(|o| o.op.starts_with("scan"))
        .expect("Q6 has a scan operator");
    assert!(
        scan.metrics.chunks_skipped > 0,
        "zone maps skipped nothing on Q6: {:?}",
        scan.metrics
    );
    assert!(
        plan.explain.text.contains("chunks_skipped="),
        "ANALYZE text lacks chunk counters:\n{}",
        plan.explain.text
    );
    // The row engine never mentions chunks.
    let row = RowStore::new(db).with_threads(1);
    let (_, rplan) = row.execute_analyzed(sqalpel_sql::tpch::Q6).unwrap();
    assert!(!rplan.explain.text.contains("chunks_"));
}

#[test]
fn analyze_goldens_cover_the_slice() {
    let mut files: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("golden dir exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    files.sort();
    let mut expected: Vec<String> = slice().iter().map(|(n, _)| golden_name(n)).collect();
    expected.sort();
    assert_eq!(files, expected);
}
