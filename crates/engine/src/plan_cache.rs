//! Fingerprint-keyed LRU plan cache.
//!
//! The wire layer's `ExecuteByFingerprint` op sends a canonical plan
//! fingerprint (see [`crate::ir`]) alongside — or instead of re-sending —
//! the SQL text. A cache hit hands the executor an already bound and
//! rewritten [`BoundQuery`], skipping parse/bind/rewrite entirely: the
//! prepared-statement fast path of the v2 protocol.
//!
//! The cache is shared (`Arc`) between the serving threads, so the map
//! sits behind a mutex; entries are `Arc<BoundQuery>` so execution never
//! holds the lock. Recency is tracked with an intrusive-free `VecDeque`
//! of keys — capacities are small (hundreds of plans), so the O(n) key
//! scan on touch is noise next to executing the query.

use crate::ir::cost::CardHints;
use crate::plan::BoundQuery;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How an `execute_by_fingerprint` call interacted with the plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The fingerprint was cached: parse/bind/rewrite were skipped.
    Hit,
    /// The plan was (re)built from SQL and inserted. `evicted` reports
    /// whether the insert pushed out a colder entry.
    Miss { evicted: bool },
    /// The cached plan was stale against newer cardinality feedback: the
    /// query was re-planned with the observed cardinalities and the cache
    /// entry replaced in place. The adaptive slow-path of the fast path.
    Reoptimized,
    /// The target system has no plan cache configured.
    Bypass,
}

/// The product of [`crate::Dbms::execute_by_fingerprint`]: the rows, the
/// authoritative fingerprint of the plan that produced them, and how the
/// cache was involved.
#[derive(Debug, Clone)]
pub struct FpExecution {
    pub result: crate::result::ResultSet,
    /// Canonical fingerprint of the executed plan — on a miss this is
    /// the key the plan was inserted under, which the client reuses on
    /// its next call to hit.
    pub fingerprint: u64,
    pub cache: CacheOutcome,
}

/// Monotone counters, readable without locking the map.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Plans rebuilt with profile-observed cardinalities replacing a
    /// stale cached entry (or seeding a miss that had feedback waiting).
    pub reoptimized: u64,
}

struct Inner {
    map: HashMap<u64, Arc<BoundQuery>>,
    /// Keys, least recently used first.
    recency: VecDeque<u64>,
}

/// Per-fingerprint cardinality feedback from executed (profiled) runs.
///
/// `generation` bumps every time fresh actuals arrive; `planned` records
/// the generation the currently cached plan was built against. A cached
/// plan whose `planned < generation` is stale and gets re-optimized on
/// its next fingerprint execution.
#[derive(Debug, Default, Clone)]
struct Feedback {
    hints: CardHints,
    generation: u64,
    planned: u64,
}

/// A bounded, fingerprint-keyed LRU cache of bound query plans.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    feedback: Mutex<HashMap<u64, Feedback>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    reoptimized: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                recency: VecDeque::new(),
            }),
            feedback: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            reoptimized: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a fingerprint, counting a hit or a miss and refreshing
    /// recency on hit.
    pub fn get(&self, fingerprint: u64) -> Option<Arc<BoundQuery>> {
        let mut inner = self.inner.lock().unwrap();
        match inner.map.get(&fingerprint).cloned() {
            Some(plan) => {
                if let Some(pos) = inner.recency.iter().position(|&k| k == fingerprint) {
                    inner.recency.remove(pos);
                }
                inner.recency.push_back(fingerprint);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Count a miss without probing the map — the caller had no
    /// fingerprint to probe with (plain `Execute` warming the cache).
    pub fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Insert (or refresh) a plan; returns whether a colder entry was
    /// evicted to make room.
    pub fn insert(&self, fingerprint: u64, plan: Arc<BoundQuery>) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if inner.map.insert(fingerprint, plan).is_some() {
            // Refresh: key already present, just touch recency.
            if let Some(pos) = inner.recency.iter().position(|&k| k == fingerprint) {
                inner.recency.remove(pos);
            }
            inner.recency.push_back(fingerprint);
            return false;
        }
        inner.recency.push_back(fingerprint);
        if inner.map.len() > self.capacity {
            if let Some(cold) = inner.recency.pop_front() {
                inner.map.remove(&cold);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Record actual cardinalities observed for `fingerprint` (from a
    /// profiled run). Bumps the feedback generation, making any cached
    /// plan for that fingerprint stale. Empty hint sets are ignored.
    pub fn record_feedback(&self, fingerprint: u64, hints: CardHints) {
        if hints.is_empty() {
            return;
        }
        let mut fb = self.feedback.lock().unwrap();
        let entry = fb.entry(fingerprint).or_default();
        entry.hints = hints;
        entry.generation += 1;
    }

    /// The hints to re-plan `fingerprint` with, if fresher feedback has
    /// arrived since the cached plan was built.
    pub fn stale_hints(&self, fingerprint: u64) -> Option<(CardHints, u64)> {
        let fb = self.feedback.lock().unwrap();
        let entry = fb.get(&fingerprint)?;
        if entry.generation > entry.planned {
            Some((entry.hints.clone(), entry.generation))
        } else {
            None
        }
    }

    /// Mark the cached plan for `fingerprint` as built against feedback
    /// `generation`, ending its staleness.
    pub fn mark_planned(&self, fingerprint: u64, generation: u64) {
        let mut fb = self.feedback.lock().unwrap();
        if let Some(entry) = fb.get_mut(&fingerprint) {
            entry.planned = entry.planned.max(generation);
        }
    }

    /// Count one adaptive re-optimization.
    pub fn count_reoptimized(&self) {
        self.reoptimized.fetch_add(1, Ordering::Relaxed);
    }

    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            reoptimized: self.reoptimized.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use crate::storage::Database;
    use crate::{ir, Dbms, RowStore};

    fn bound(db: &Database, sql: &str) -> (u64, Arc<BoundQuery>) {
        let q = sqalpel_sql::parse_query(sql).unwrap();
        let b = Planner::new(db).bind(&q).unwrap();
        (ir::explain(&b).fingerprint, Arc::new(b))
    }

    #[test]
    fn lru_evicts_coldest_and_counts() {
        let db = Database::tpch(0.001, 42);
        let cache = PlanCache::new(2);
        let (f1, p1) = bound(&db, "select count(*) from region");
        let (f2, p2) = bound(&db, "select count(*) from nation");
        let (f3, p3) = bound(&db, "select count(*) from supplier");
        assert!(!cache.insert(f1, p1));
        assert!(!cache.insert(f2, p2));
        // Touch f1 so f2 is coldest.
        assert!(cache.get(f1).is_some());
        assert!(cache.insert(f3, p3), "third insert must evict");
        assert!(cache.get(f2).is_none(), "coldest entry gone");
        assert!(cache.get(f1).is_some());
        assert!(cache.get(f3).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (3, 1, 1));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let db = Database::tpch(0.001, 42);
        let cache = PlanCache::new(2);
        let (f1, p1) = bound(&db, "select count(*) from region");
        cache.insert(f1, p1.clone());
        assert!(!cache.insert(f1, p1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn execute_by_fingerprint_hit_skips_replanning_and_matches_bytes() {
        let db = Arc::new(Database::tpch(0.001, 42));
        let cache = Arc::new(PlanCache::new(16));
        let store = RowStore::new(db).with_plan_cache(cache.clone());
        let sql = "select n_regionkey, count(*) from nation group by n_regionkey order by n_regionkey";

        let cold = store.execute_by_fingerprint(sql, None).unwrap();
        assert_eq!(cold.cache, CacheOutcome::Miss { evicted: false });
        let fp = cold.fingerprint;
        assert_eq!(fp, store.explain(sql).unwrap().fingerprint);

        let warm = store.execute_by_fingerprint(sql, Some(fp)).unwrap();
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(warm.fingerprint, fp);
        assert_eq!(cold.result.to_csv(), warm.result.to_csv());
        assert_eq!(warm.result.to_csv(), store.execute(sql).unwrap().to_csv());
        let s = cache.stats();
        assert!(s.hits >= 1 && s.misses >= 1);
    }

    #[test]
    fn unknown_fingerprint_falls_back_to_sql() {
        let db = Arc::new(Database::tpch(0.001, 42));
        let store = RowStore::new(db).with_plan_cache(Arc::new(PlanCache::new(4)));
        let sql = "select count(*) from region";
        let out = store.execute_by_fingerprint(sql, Some(0xdead_beef)).unwrap();
        assert!(matches!(out.cache, CacheOutcome::Miss { .. }));
        assert_ne!(out.fingerprint, 0xdead_beef, "authoritative key wins");
        // The authoritative key now hits.
        let again = store.execute_by_fingerprint(sql, Some(out.fingerprint)).unwrap();
        assert_eq!(again.cache, CacheOutcome::Hit);
    }

    #[test]
    fn feedback_reoptimizes_stale_cached_plans() {
        let db = Arc::new(Database::tpch(0.001, 42));
        let cache = Arc::new(PlanCache::new(16));
        let store = RowStore::new(db)
            .with_plan_cache(cache.clone())
            .with_threads(1);
        let sql = "select n_name, count(*) from part, supplier, partsupp, nation \
                   where ps_partkey = p_partkey and ps_suppkey = s_suppkey \
                   and s_nationkey = n_nationkey group by n_name order by n_name";

        let cold = store.execute_by_fingerprint(sql, None).unwrap();
        assert!(matches!(cold.cache, CacheOutcome::Miss { .. }));
        assert_eq!(cache.stats().reoptimized, 0);

        // A profiled run records actual cardinalities as feedback under
        // the same (join-order-invariant) fingerprint.
        let (_, plan) = store.execute_analyzed(sql).unwrap();
        assert_eq!(plan.explain.fingerprint, cold.fingerprint);

        // The next fingerprint execution sees newer feedback than the
        // cached plan, re-plans with actuals, and replaces the entry.
        let warm = store
            .execute_by_fingerprint(sql, Some(cold.fingerprint))
            .unwrap();
        assert_eq!(warm.cache, CacheOutcome::Reoptimized);
        assert_eq!(warm.fingerprint, cold.fingerprint);
        assert_eq!(warm.result.to_csv(), cold.result.to_csv());
        assert_eq!(cache.stats().reoptimized, 1);

        // Once re-planned, the same fingerprint is a plain hit again.
        let again = store
            .execute_by_fingerprint(sql, Some(cold.fingerprint))
            .unwrap();
        assert_eq!(again.cache, CacheOutcome::Hit);
        assert_eq!(cache.stats().reoptimized, 1);
    }

    #[test]
    fn no_cache_means_bypass() {
        let db = Arc::new(Database::tpch(0.001, 42));
        let store = RowStore::new(db);
        let out = store
            .execute_by_fingerprint("select count(*) from region", None)
            .unwrap();
        assert_eq!(out.cache, CacheOutcome::Bypass);
        assert_eq!(out.fingerprint, store.explain("select count(*) from region").unwrap().fingerprint);
    }
}
