//! The column engine executor: column-at-a-time, materializing, guarded
//! fixed-point arithmetic.
//!
//! "System B" of the pair, modelled on MonetDB's execution discipline:
//! every operator — including every node of a scalar expression — consumes
//! whole columns and **materializes** its result as a new column; decimal
//! arithmetic is widened to `i128` with explicit overflow guards
//! ([`ArithMode::GuardedDecimal`]). Selective scans and tight aggregations
//! fly; deep arithmetic expressions pay for guard checks and intermediate
//! materialization — exactly the cost profile behind the paper's Figure 2
//! `sum_charge` anecdote.
//!
//! Expressions the vectorized kernels cannot handle (subqueries, CASE,
//! string functions) fall back to per-row evaluation over materialized
//! rows, sharing the semantics in [`crate::eval`].

use crate::codec;
use crate::error::{EngineError, EngineResult};
use crate::eval::{
    collect_aggregates, eval, eval_filter, Accumulator, AggFunc, AggSpec, AggValues, Env, EvalCtx,
    SubqueryRunner,
};
use crate::ir::{Expr, Ty};
use crate::morsel::{self, BudgetCounter};
use crate::output::finish_rows;
use crate::plan::{BoundQuery, Plan, Planner, Schema};
use crate::profile::{self, NodeMetrics, ProfileShard, Profiler};
use crate::storage::{ColumnData, Database, Table};
use crate::value::{self, ArithMode, Key, Value};
use sqalpel_sql::ast::{BinOp, JoinKind, Query, UnaryOp};
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Range;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const MODE: ArithMode = ArithMode::GuardedDecimal;

/// Grouped-aggregation state: (representative row index, accumulators)
/// per group, in first-seen order.
type MergedGroups = Vec<(usize, Vec<Accumulator>)>;

/// A materialized column vector.
#[derive(Debug, Clone)]
pub enum ColVec {
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// Widened fixed-point (`i128`): the overflow-guard representation.
    Decimal { raw: Vec<i128>, scale: u8 },
    Str(Vec<String>),
    Date(Vec<i32>),
    Bool(Vec<bool>),
    /// Mixed / nullable fallback.
    Val(Vec<Value>),
    /// A broadcast constant (literals, outer-row references).
    Const(Value, usize),
    /// Dictionary-coded strings sharing the storage dictionary. The
    /// dictionary is sorted, so code order is string order and predicate
    /// kernels compare codes instead of strings.
    Dict {
        codes: Vec<u32>,
        dict: Arc<Vec<String>>,
    },
}

impl ColVec {
    pub fn len(&self) -> usize {
        match self {
            ColVec::Int(v) => v.len(),
            ColVec::Float(v) => v.len(),
            ColVec::Decimal { raw, .. } => raw.len(),
            ColVec::Str(v) => v.len(),
            ColVec::Date(v) => v.len(),
            ColVec::Bool(v) => v.len(),
            ColVec::Val(v) => v.len(),
            ColVec::Const(_, n) => *n,
            ColVec::Dict { codes, .. } => codes.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read one element as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColVec::Int(v) => Value::Int(v[i]),
            ColVec::Float(v) => Value::Float(v[i]),
            ColVec::Decimal { raw, scale } => Value::Decimal {
                raw: raw[i],
                scale: *scale,
            },
            ColVec::Str(v) => Value::Str(v[i].clone()),
            ColVec::Date(v) => Value::Date(v[i]),
            ColVec::Bool(v) => Value::Bool(v[i]),
            ColVec::Val(v) => v[i].clone(),
            ColVec::Const(v, _) => v.clone(),
            ColVec::Dict { codes, dict } => Value::Str(dict[codes[i] as usize].clone()),
        }
    }

    /// Gather elements at `idx` into a new vector (materializes).
    pub fn gather(&self, idx: &[usize]) -> ColVec {
        match self {
            ColVec::Int(v) => ColVec::Int(idx.iter().map(|&i| v[i]).collect()),
            ColVec::Float(v) => ColVec::Float(idx.iter().map(|&i| v[i]).collect()),
            ColVec::Decimal { raw, scale } => ColVec::Decimal {
                raw: idx.iter().map(|&i| raw[i]).collect(),
                scale: *scale,
            },
            ColVec::Str(v) => ColVec::Str(idx.iter().map(|&i| v[i].clone()).collect()),
            ColVec::Date(v) => ColVec::Date(idx.iter().map(|&i| v[i]).collect()),
            ColVec::Bool(v) => ColVec::Bool(idx.iter().map(|&i| v[i]).collect()),
            ColVec::Val(v) => ColVec::Val(idx.iter().map(|&i| v[i].clone()).collect()),
            ColVec::Const(v, _) => ColVec::Const(v.clone(), idx.len()),
            // Gathering codes keeps the encoding: no string is touched.
            ColVec::Dict { codes, dict } => ColVec::Dict {
                codes: idx.iter().map(|&i| codes[i]).collect(),
                dict: Arc::clone(dict),
            },
        }
    }

    /// Truth vector view: `Some(bool)` per row, `None` for SQL NULL.
    fn truth(&self, i: usize) -> EngineResult<Option<bool>> {
        match self {
            ColVec::Bool(v) => Ok(Some(v[i])),
            // Borrow boxed values instead of cloning them per row.
            ColVec::Val(v) => match &v[i] {
                Value::Bool(b) => Ok(Some(*b)),
                Value::Null => Ok(None),
                other => Err(EngineError::Type(format!(
                    "expected boolean column, got {}",
                    other.type_name()
                ))),
            },
            _ => match self.get(i) {
                Value::Bool(b) => Ok(Some(b)),
                Value::Null => Ok(None),
                other => Err(EngineError::Type(format!(
                    "expected boolean column, got {}",
                    other.type_name()
                ))),
            },
        }
    }
}

/// A materialized batch: the unit every column operator consumes and
/// produces.
#[derive(Debug, Clone)]
pub struct Batch {
    pub schema: Schema,
    pub len: usize,
    pub cols: Vec<ColVec>,
}

impl Batch {
    pub fn empty(schema: Schema) -> Batch {
        let cols = schema.iter().map(|_| ColVec::Val(Vec::new())).collect();
        Batch {
            schema,
            len: 0,
            cols,
        }
    }

    /// Materialize one row.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    /// Materialize one row into a caller-owned buffer, so row-at-a-time
    /// loops reuse one allocation instead of building a `Vec` per row.
    pub fn row_into(&self, i: usize, buf: &mut Vec<Value>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|c| c.get(i)));
    }

    /// Keep only the rows at `idx`.
    pub fn gather(&self, idx: &[usize]) -> Batch {
        Batch {
            schema: self.schema.clone(),
            len: idx.len(),
            cols: self.cols.iter().map(|c| c.gather(idx)).collect(),
        }
    }

}

/// One materialized CTE visible during execution.
struct CteFrame {
    name: String,
    cols: Vec<(String, Ty)>,
    rows: Rc<Vec<Vec<Value>>>,
}

enum SubState {
    Cached(Rc<Vec<Vec<Value>>>),
    Correlated(Rc<BoundQuery>),
}

/// One query execution over the column engine.
pub struct ColExec<'a> {
    db: &'a Database,
    budget: u64,
    used: BudgetCounter,
    /// Worker cap for morsel-parallel operators; `1` keeps every operator
    /// on its original sequential code path.
    threads: usize,
    subqueries: RefCell<HashMap<usize, SubState>>,
    ctes: RefCell<Vec<CteFrame>>,
    /// Whether the logical rewriter runs on bound plans (on by default;
    /// the equivalence suites turn it off to diff against raw plans).
    rewrite: bool,
    /// Whether predicate-bearing scans consult per-chunk zone maps to
    /// skip chunks outright (on by default; the scan benchmarks turn it
    /// off to measure the skipping itself).
    zone_maps: bool,
    /// Per-node metrics collection; `None` (the default) keeps every
    /// operator on an early-return path with no metrics code at all.
    profiler: Option<Profiler>,
}

impl<'a> ColExec<'a> {
    pub fn new(db: &'a Database, budget: u64) -> Self {
        Self::with_threads(db, budget, 1)
    }

    /// An executor that may fan base-table work out over `threads` morsel
    /// workers. `threads = 1` is exactly the sequential executor.
    pub fn with_threads(db: &'a Database, budget: u64, threads: usize) -> Self {
        let threads = threads.max(1);
        ColExec {
            db,
            budget,
            // A shared (atomic) counter only pays off when a parallel
            // plan can actually be chosen; otherwise every per-row charge
            // would eat an atomic increment for nothing.
            used: if morsel::effective_workers(threads) > 1 {
                BudgetCounter::shared()
            } else {
                BudgetCounter::local()
            },
            threads,
            subqueries: RefCell::new(HashMap::new()),
            ctes: RefCell::new(Vec::new()),
            rewrite: true,
            zone_maps: true,
            profiler: None,
        }
    }

    /// Toggle the logical rewriter for this execution (and any runtime
    /// subquery binds it performs).
    pub fn with_rewrite(mut self, on: bool) -> Self {
        self.rewrite = on;
        self
    }

    /// Toggle zone-map scan skipping (on by default). Results are
    /// identical either way; only the chunks a scan touches change.
    pub fn with_zone_maps(mut self, on: bool) -> Self {
        self.zone_maps = on;
        self
    }

    /// Collect per-node metrics during execution; retrieve the profile
    /// with [`Self::take_profile`] afterwards.
    pub fn with_profiler(mut self) -> Self {
        self.profiler = Some(Profiler::new());
        self
    }

    /// The metrics accumulated so far, draining the profiler. Empty when
    /// profiling was never enabled.
    pub fn take_profile(&self) -> ProfileShard {
        self.profiler
            .as_ref()
            .map(|p| p.take())
            .unwrap_or_default()
    }

    /// A sequential executor for one parallel worker, charging the shared
    /// budget of the coordinating execution. Workers never profile into
    /// the coordinator directly; morsel kernels collect per-worker
    /// [`ProfileShard`]s and merge them after the parallel region.
    fn worker(db: &'a Database, budget: u64, counter: Arc<AtomicU64>) -> Self {
        ColExec {
            db,
            budget,
            used: BudgetCounter::Shared(counter),
            threads: 1,
            subqueries: RefCell::new(HashMap::new()),
            ctes: RefCell::new(Vec::new()),
            rewrite: true,
            zone_maps: true,
            profiler: None,
        }
    }

    /// Parse, bind and run a SQL query, returning output names and rows.
    pub fn run_sql(&self, sql: &str) -> EngineResult<(Vec<String>, Vec<Vec<Value>>)> {
        let q = sqalpel_sql::parse_query(sql)?;
        let bound = Planner::new(self.db).with_rewrite(self.rewrite).bind(&q)?;
        let rows = self.run_query(&bound, None)?;
        Ok((bound.output_names(), rows))
    }

    fn charge(&self, n: u64) -> EngineResult<()> {
        let used = self.used.add(n);
        if used > self.budget {
            Err(EngineError::Budget(format!("{used} rows touched")))
        } else {
            Ok(())
        }
    }

    /// Execute a bound query with an optional outer row in scope.
    pub fn run_query(
        &self,
        bq: &BoundQuery,
        outer: Option<&Env<'_>>,
    ) -> EngineResult<Vec<Vec<Value>>> {
        let Some(prof) = &self.profiler else {
            return self.run_query_inner(bq, outer);
        };
        // The select node's rows_in is the *delta* of the core's
        // cumulative rows_out across this execution, so repeated runs of
        // one bound tree (correlated subqueries) never double-count.
        let root = profile::node_key(&bq.core);
        let before = prof.rows_out_of(root);
        let start = Instant::now();
        let rows = self.run_query_inner(bq, outer)?;
        prof.record(
            profile::node_key(bq),
            NodeMetrics {
                rows_in: prof.rows_out_of(root) - before,
                rows_out: rows.len() as u64,
                batches: 1,
                nanos: start.elapsed().as_nanos() as u64,
                ..NodeMetrics::default()
            },
        );
        Ok(rows)
    }

    fn run_query_inner(
        &self,
        bq: &BoundQuery,
        outer: Option<&Env<'_>>,
    ) -> EngineResult<Vec<Vec<Value>>> {
        let frame_base = self.ctes.borrow().len();
        for (name, cte_query) in &bq.ctes {
            let rows = self.run_query(cte_query, outer)?;
            self.ctes.borrow_mut().push(CteFrame {
                name: name.clone(),
                cols: cte_query.output_schema(),
                rows: Rc::new(rows),
            });
        }
        let result = self.run_body(bq, outer);
        self.ctes.borrow_mut().truncate(frame_base);
        result
    }

    fn run_body(
        &self,
        bq: &BoundQuery,
        outer: Option<&Env<'_>>,
    ) -> EngineResult<Vec<Vec<Value>>> {
        // Projection pushdown happened at plan time: the rewriter's
        // liveness pass shrank every scan's `live` list, so scans
        // materialize only referenced columns (the column-store advantage
        // MonetDB's BATs provide).
        let batch = self.exec_core(&bq.core, outer)?;
        let mut produced: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
        if bq.aggregated {
            self.project_aggregated(bq, &batch, outer, &mut produced)?;
        } else {
            self.project_plain(bq, &batch, outer, &mut produced)?;
        }
        finish_rows(bq, produced)
    }

    fn project_plain(
        &self,
        bq: &BoundQuery,
        batch: &Batch,
        outer: Option<&Env<'_>>,
        produced: &mut Vec<(Vec<Value>, Vec<Value>)>,
    ) -> EngineResult<()> {
        let out_cols: Vec<ColVec> = bq
            .items
            .iter()
            .map(|item| self.eval_vec(&item.expr, batch, outer))
            .collect::<EngineResult<_>>()?;
        // Sort keys: select-list aliases were bound to output columns at
        // plan time, anything else evaluates over the core batch.
        let mut key_cols: Vec<ColVec> = Vec::with_capacity(bq.order_by.len());
        for (key, _) in &bq.order_by {
            if let Expr::OutputCol(i) = key {
                key_cols.push(out_cols[*i].clone());
                continue;
            }
            key_cols.push(self.eval_vec(key, batch, outer)?);
        }
        for i in 0..batch.len {
            let row: Vec<Value> = out_cols.iter().map(|c| c.get(i)).collect();
            let keys: Vec<Value> = key_cols.iter().map(|c| c.get(i)).collect();
            produced.push((row, keys));
        }
        Ok(())
    }

    fn project_aggregated(
        &self,
        bq: &BoundQuery,
        batch: &Batch,
        outer: Option<&Env<'_>>,
        produced: &mut Vec<(Vec<Value>, Vec<Value>)>,
    ) -> EngineResult<()> {
        let mut agg_exprs: Vec<&Expr> = bq.items.iter().map(|i| &i.expr).collect();
        if let Some(h) = &bq.having {
            agg_exprs.push(h);
        }
        for (k, _) in &bq.order_by {
            agg_exprs.push(k);
        }
        let specs = collect_aggregates(&agg_exprs);
        let keys: Vec<String> = specs.iter().map(|s| s.key.clone()).collect();

        // Vectorized pass 1: group-key columns and aggregate arguments.
        let key_cols: Vec<ColVec> = bq
            .group_by
            .iter()
            .map(|g| self.eval_vec(g, batch, outer))
            .collect::<EngineResult<_>>()?;
        let arg_cols: Vec<Option<ColVec>> = specs
            .iter()
            .map(|s| {
                s.arg
                    .as_ref()
                    .map(|a| self.eval_vec(a, batch, outer))
                    .transpose()
            })
            .collect::<EngineResult<_>>()?;

        // Pass 2: group ids and accumulation — radix-partitioned and
        // morsel-parallel when every accumulator merges exactly,
        // sequential (but still codec-keyed) otherwise.
        let mut groups: Vec<(usize, Vec<Accumulator>)> = // (rep row idx, accs)
            match self.par_aggregate(batch, &key_cols, &arg_cols, &specs)? {
                Some(groups) => groups,
                None => self.seq_aggregate(batch, &key_cols, &arg_cols, &specs)?,
            };
        if groups.is_empty() && bq.group_by.is_empty() {
            groups.push((
                usize::MAX,
                specs.iter().map(|s| Accumulator::new(s, MODE)).collect(),
            ));
        }

        // Pass 3: per-group projection (few groups: row-wise is fine).
        let ctx = EvalCtx::new(self, MODE);
        for (rep, accs) in &groups {
            let rep_row: Vec<Value> = if *rep == usize::MAX {
                vec![Value::Null; batch.schema.len()]
            } else {
                batch.row(*rep)
            };
            let values: Vec<Value> = accs.iter().map(|a| a.finish()).collect();
            let aggs = AggValues {
                keys: &keys,
                values: &values,
            };
            let env = match outer {
                Some(o) => Env::with_outer(&batch.schema, &rep_row, o),
                None => Env::new(&batch.schema, &rep_row),
            };
            let gctx = ctx.with_aggs(&aggs);
            if let Some(h) = &bq.having {
                if !eval_filter(h, &env, &gctx)? {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(bq.items.len());
            for item in &bq.items {
                out.push(eval(&item.expr, &env, &gctx)?);
            }
            let skeys = crate::output::sort_keys(bq, &out, &env, &gctx, Some(&aggs))?;
            produced.push((out, skeys));
        }
        Ok(())
    }

    // ---------------------------------------------------- parallel operators

    /// Sequential grouped accumulation. Typed key columns go through the
    /// [`codec`] (no per-row key allocation); `Float`/`Val` columns keep
    /// the legacy `Vec<Key>` path, whose representation-unifying key
    /// images those columns genuinely need.
    fn seq_aggregate(
        &self,
        batch: &Batch,
        key_cols: &[ColVec],
        arg_cols: &[Option<ColVec>],
        specs: &[AggSpec],
    ) -> EngineResult<MergedGroups> {
        let feeders: Vec<ArgCol> = arg_cols.iter().map(ArgCol::from).collect();
        let mut groups: MergedGroups = Vec::new();
        if let Some(codec) = codec::GroupCodec::for_group(key_cols) {
            let mut map = codec::GroupMap::new(codec.u64_mode());
            let mut scratch = Vec::new();
            for i in 0..batch.len {
                self.charge(1)?;
                let k = codec.encode(i, &mut scratch)?;
                let gid = match map.get(&k) {
                    Some(g) => g as usize,
                    None => {
                        let g = groups.len();
                        map.insert(&k, g as u32);
                        groups.push((
                            i,
                            specs.iter().map(|s| Accumulator::new(s, MODE)).collect(),
                        ));
                        g
                    }
                };
                let (_, accs) = &mut groups[gid];
                for (f, acc) in feeders.iter().zip(accs.iter_mut()) {
                    f.feed(acc, i)?;
                }
            }
            return Ok(groups);
        }
        let mut group_index: HashMap<Vec<Key>, usize> = HashMap::new();
        for i in 0..batch.len {
            self.charge(1)?;
            let key: Vec<Key> = key_cols
                .iter()
                .map(|c| c.get(i).key())
                .collect::<EngineResult<_>>()?;
            let gid = match group_index.get(&key) {
                Some(&g) => g,
                None => {
                    let g = groups.len();
                    group_index.insert(key, g);
                    groups.push((
                        i,
                        specs.iter().map(|s| Accumulator::new(s, MODE)).collect(),
                    ));
                    g
                }
            };
            let (_, accs) = &mut groups[gid];
            for (f, acc) in feeders.iter().zip(accs.iter_mut()) {
                f.feed(acc, i)?;
            }
        }
        Ok(groups)
    }

    /// Radix-partitioned morsel-parallel grouped accumulation, in three
    /// deterministic phases:
    ///
    /// 1. each worker accumulates one coarse chunk into [`codec::NPARTS`]
    ///    partition-local tables (partition = pure function of the key);
    /// 2. partitions are **disjoint**, so they merge in parallel — within
    ///    a partition, chunks fold in chunk order, so every group keeps
    ///    the representative row of the first chunk that saw it, i.e. its
    ///    global first-occurrence row;
    /// 3. a stitch pass sorts all groups by representative row. First
    ///    occurrences are unique per group and ascending row order *is*
    ///    the sequential first-seen order, so the output is byte-identical
    ///    to the sequential scan at every thread count.
    ///
    /// Returns `None` — falling back to [`Self::seq_aggregate`] — unless
    /// every accumulator merges exactly (DISTINCT needs one seen-set,
    /// float sums would expose addition order) and the keys have a typed
    /// codec.
    fn par_aggregate(
        &self,
        batch: &Batch,
        key_cols: &[ColVec],
        arg_cols: &[Option<ColVec>],
        specs: &[AggSpec],
    ) -> EngineResult<Option<MergedGroups>> {
        let Some(counter) = self.used.handle() else {
            return Ok(None);
        };
        if morsel::effective_workers(self.threads) < 2 || batch.len < morsel::MIN_PARALLEL_ROWS {
            return Ok(None);
        }
        let exactly_mergeable = specs.iter().zip(arg_cols).all(|(s, arg)| {
            if s.distinct {
                return false;
            }
            match s.func {
                AggFunc::Count => true,
                // Sums stay on the i128 decimal path only for integer /
                // decimal inputs; anything else folds into f64.
                AggFunc::Sum | AggFunc::Avg => match arg {
                    None | Some(ColVec::Int(_)) | Some(ColVec::Decimal { .. }) => true,
                    Some(ColVec::Const(v, _)) => {
                        matches!(v, Value::Int(_) | Value::Decimal { .. } | Value::Null)
                    }
                    _ => false,
                },
                // Typed columns are homogeneous, so comparison is a total
                // order and min/max are merge-order independent; a mixed
                // `Val` column could compare incomparable pairs in a
                // different order than the sequential scan.
                AggFunc::Min | AggFunc::Max => !matches!(arg, Some(ColVec::Val(_))),
            }
        });
        if !exactly_mergeable {
            return Ok(None);
        }
        let Some(codec) = codec::GroupCodec::for_group(key_cols) else {
            return Ok(None);
        };

        let budget = self.budget;
        // Per partition, groups in first-seen order within one chunk.
        type PartGroups = Vec<(codec::OwnedEnc, usize, Vec<Accumulator>)>;
        // Coarse chunks: per-chunk group tables must be merged afterwards,
        // and with 4096-row morsels that merge would rival the
        // accumulation itself when groups are plentiful.
        let chunks = morsel::coarse_morsels(batch.len, self.threads);
        let partials: Vec<Vec<PartGroups>> =
            morsel::run_on_ranges(chunks, self.threads, |range| {
                let mut maps: Vec<codec::GroupMap> = (0..codec::NPARTS)
                    .map(|_| codec::GroupMap::new(codec.u64_mode()))
                    .collect();
                let mut parts: Vec<PartGroups> = vec![Vec::new(); codec::NPARTS];
                // One charge per chunk, not per row: the accumulated total
                // (and so whether the budget trips) matches the sequential
                // per-row charges, without a contended atomic in the loop.
                let n = range.len() as u64;
                let used = counter.fetch_add(n, Ordering::Relaxed) + n;
                if used > budget {
                    return Err(EngineError::Budget(format!("{used} rows touched")));
                }
                let feeders: Vec<ArgCol> = arg_cols.iter().map(ArgCol::from).collect();
                let mut scratch = Vec::new();
                for i in range {
                    let k = codec.encode(i, &mut scratch)?;
                    let p = codec::partition(k.hash());
                    let gid = match maps[p].get(&k) {
                        Some(g) => g as usize,
                        None => {
                            let g = parts[p].len();
                            maps[p].insert(&k, g as u32);
                            parts[p].push((
                                k.to_owned_enc(),
                                i,
                                specs.iter().map(|s| Accumulator::new(s, MODE)).collect(),
                            ));
                            g
                        }
                    };
                    let (_, _, accs) = &mut parts[p][gid];
                    for (f, acc) in feeders.iter().zip(accs.iter_mut()) {
                        f.feed(acc, i)?;
                    }
                }
                Ok(parts)
            })?;

        // Phase 2: disjoint partitions merge in parallel, chunks in order.
        let merged: Vec<MergedGroups> =
            morsel::run_indexed(codec::NPARTS, self.threads, |p| {
                let mut map = codec::GroupMap::new(codec.u64_mode());
                let mut groups: MergedGroups = Vec::new();
                for chunk in &partials {
                    for (key, rep, accs) in &chunk[p] {
                        let k = key.as_row();
                        match map.get(&k) {
                            Some(g) => {
                                for (acc, other) in
                                    groups[g as usize].1.iter_mut().zip(accs)
                                {
                                    acc.merge(other)?;
                                }
                            }
                            None => {
                                map.insert(&k, groups.len() as u32);
                                groups.push((*rep, accs.clone()));
                            }
                        }
                    }
                }
                Ok(groups)
            })?;

        // Phase 3: stitch — ascending first-occurrence row index is the
        // sequential first-seen group order.
        let mut groups: MergedGroups = merged.into_iter().flatten().collect();
        groups.sort_unstable_by_key(|(rep, _)| *rep);
        Ok(Some(groups))
    }

    /// Filter one storage chunk of a base-table scan with zone-map
    /// skipping and a staged selection vector. Returns the chunk's
    /// surviving rows (late-materialized: payload columns are fetched
    /// only at survivor positions) and whether the zone test skipped the
    /// chunk outright.
    ///
    /// This is THE per-chunk filter kernel: the sequential scan and every
    /// parallel morsel worker run this same function, so budget charges,
    /// error positions and zone decisions are identical at every thread
    /// count — the property the parallel differential walls pin.
    fn filter_chunk(
        &self,
        table: &Table,
        schema: &Schema,
        live: &[usize],
        range: Range<usize>,
        conjs: &[&Expr],
        zpreds: &[ZonePred],
    ) -> EngineResult<(Batch, bool)> {
        self.charge(range.len() as u64)?;
        let chunk = range.start / crate::storage::CHUNK_ROWS;
        for zp in zpreds {
            if let Some(zm) = table.zone_map(zp.col) {
                if !zm.overlaps(chunk, zp.lo, zp.hi) {
                    // Provably no qualifying row: emit a typed empty batch
                    // (so chunk concatenation keeps its representation).
                    let cols = live
                        .iter()
                        .map(|&ci| gather_table_col(&table.columns[ci].data, &[]))
                        .collect();
                    return Ok((
                        Batch {
                            schema: schema.clone(),
                            len: 0,
                            cols,
                        },
                        true,
                    ));
                }
            }
        }
        // Staged conjunct evaluation over a selection vector of global row
        // ids. Each conjunct materializes only the columns it reads, only
        // at the rows still in play; a row survives iff every conjunct is
        // true, so evaluating later conjuncts on earlier survivors only is
        // exact (Kleene AND: any false or NULL conjunct drops the row).
        let mut sel: Option<Vec<usize>> = None; // None = the whole chunk
        for conj in conjs {
            let n_cur = sel.as_ref().map_or(range.len(), Vec::len);
            let mut slots = conj.slots();
            slots.sort_unstable();
            slots.dedup();
            let mut cols: Vec<ColVec> = schema
                .iter()
                .map(|_| ColVec::Const(Value::Null, n_cur))
                .collect();
            for &slot in &slots {
                let data = &table.columns[live[slot]].data;
                cols[slot] = match &sel {
                    None => materialize_col(data, range.clone()),
                    Some(s) => gather_table_col(data, s),
                };
            }
            let batch = Batch {
                schema: schema.clone(),
                len: n_cur,
                cols,
            };
            let mask = self.eval_vec(conj, &batch, None)?;
            let mut next = Vec::new();
            for i in 0..n_cur {
                if mask.truth(i)? == Some(true) {
                    next.push(match &sel {
                        None => range.start + i,
                        Some(s) => s[i],
                    });
                }
            }
            sel = Some(next);
        }
        let sel = sel.unwrap_or_default();
        let cols = live
            .iter()
            .map(|&ci| gather_table_col(&table.columns[ci].data, &sel))
            .collect();
        Ok((
            Batch {
                schema: schema.clone(),
                len: sel.len(),
                cols,
            },
            false,
        ))
    }

    /// Sequential fused filter-scan: one pass over the table's chunks
    /// through [`Self::filter_chunk`], so zone maps skip chunks and
    /// filters never materialize a full-table intermediate. Returns
    /// `None` when the shape keeps this on the materialize-then-filter
    /// path (non-vectorizable predicates, correlated outer rows).
    fn seq_filter_scan(
        &self,
        input: &Plan,
        predicate: &Expr,
        outer: Option<&Env<'_>>,
    ) -> EngineResult<Option<Batch>> {
        let Plan::Scan { table, live, .. } = input else {
            return Ok(None);
        };
        if outer.is_some() || table.row_count() == 0 {
            return Ok(None);
        }
        let conjs = predicate.conjuncts();
        if !conjs.iter().copied().all(vectorizable) {
            return Ok(None);
        }
        let schema = input.schema();
        let zpreds = if self.zone_maps {
            zone_preds(&conjs, table, live)
        } else {
            Vec::new()
        };
        let start = self.profiler.as_ref().map(|_| Instant::now());
        let mut parts = Vec::new();
        let (mut scanned, mut skipped) = (0u64, 0u64);
        for range in morsel::morsels(table.row_count()) {
            let (batch, skip) = self.filter_chunk(table, &schema, live, range, &conjs, &zpreds)?;
            if skip {
                skipped += 1;
            } else {
                scanned += 1;
            }
            parts.push(batch);
        }
        if let (Some(prof), Some(t)) = (&self.profiler, start) {
            // One scan sample, as if the scan had produced the whole
            // table: skipped chunks still count their rows, so the
            // per-operator row flow is engine- and knob-independent.
            prof.record(
                profile::node_key(input),
                NodeMetrics {
                    rows_in: table.row_count() as u64,
                    rows_out: table.row_count() as u64,
                    batches: 1,
                    nanos: t.elapsed().as_nanos() as u64,
                    chunks_scanned: scanned,
                    chunks_skipped: skipped,
                },
            );
        }
        Ok(Some(concat_batches(schema, parts)))
    }

    /// Morsel-parallel filter over a base-table scan: each worker filters
    /// one chunk (through the same [`Self::filter_chunk`] kernel as the
    /// sequential scan when the predicate is vectorizable, the generic
    /// materialize-then-filter loop otherwise); chunk outputs are
    /// concatenated in order, so the surviving rows appear exactly as the
    /// sequential scan emits them. Returns `None` when the shape or
    /// configuration keeps this on the sequential path.
    fn par_filter_scan(
        &self,
        input: &Plan,
        predicate: &Expr,
        outer: Option<&Env<'_>>,
    ) -> EngineResult<Option<Batch>> {
        let Plan::Scan { table, live, .. } = input else {
            return Ok(None);
        };
        let Some(counter) = self.used.handle() else {
            return Ok(None);
        };
        if morsel::effective_workers(self.threads) < 2
            || outer.is_some()
            || table.row_count() < morsel::MIN_PARALLEL_ROWS
            || !predicate.parallel_safe()
        {
            return Ok(None);
        }
        let schema = input.schema();
        let conjs = predicate.conjuncts();
        let staged = conjs.iter().copied().all(vectorizable);
        let zpreds = if staged && self.zone_maps {
            zone_preds(&conjs, table, live)
        } else {
            Vec::new()
        };
        let db = self.db;
        let budget = self.budget;
        // This kernel bypasses `exec_core` for the scan child, so when
        // profiling each worker records the scan's share of the work in a
        // private shard (a `Profiler` is not `Sync`); the coordinator
        // merges the shards after the parallel region, in morsel order.
        let profiling = self.profiler.is_some();
        let scan_key = profile::node_key(input);
        let parts = morsel::run_on_morsels(table.row_count(), self.threads, |range| {
            let w = ColExec::worker(db, budget, Arc::clone(&counter));
            if staged {
                let n = range.len() as u64;
                let start = profiling.then(Instant::now);
                let (batch, skip) =
                    w.filter_chunk(table, &schema, live, range, &conjs, &zpreds)?;
                let shard = start.map(|t| {
                    let mut s = ProfileShard::new();
                    s.record(
                        scan_key,
                        NodeMetrics {
                            rows_in: n,
                            rows_out: n,
                            batches: 1,
                            nanos: t.elapsed().as_nanos() as u64,
                            chunks_scanned: u64::from(!skip),
                            chunks_skipped: u64::from(skip),
                        },
                    );
                    s
                });
                return Ok((batch, shard));
            }
            w.charge(range.len() as u64)?;
            let start = profiling.then(Instant::now);
            let batch = scan_batch(table, &schema, live, range);
            let shard = start.map(|t| {
                let mut s = ProfileShard::new();
                s.record(
                    scan_key,
                    NodeMetrics {
                        rows_in: batch.len as u64,
                        rows_out: batch.len as u64,
                        batches: 1,
                        nanos: t.elapsed().as_nanos() as u64,
                        ..NodeMetrics::default()
                    },
                );
                s
            });
            let mask = w.eval_vec(predicate, &batch, None)?;
            let mut idx = Vec::new();
            for i in 0..batch.len {
                if mask.truth(i)? == Some(true) {
                    idx.push(i);
                }
            }
            Ok((batch.gather(&idx), shard))
        })?;
        let mut batches = Vec::with_capacity(parts.len());
        for (batch, shard) in parts {
            if let (Some(prof), Some(s)) = (&self.profiler, &shard) {
                prof.absorb(s);
            }
            batches.push(batch);
        }
        Ok(Some(concat_batches(schema, batches)))
    }

    /// Equi-join candidate pairs over already-materialized key columns.
    /// Typed keys go through the [`codec`] (parallel when configuration
    /// and input size allow, sequential otherwise); anything the codec
    /// cannot represent keeps the legacy `Vec<Key>` build/probe. Every
    /// path emits the identical candidate sequence: probe rows in order,
    /// each key's match list in build-side row order.
    fn join_indices(
        &self,
        lbatch: &Batch,
        rbatch: &Batch,
        lkeys: &[ColVec],
        rkeys: &[ColVec],
    ) -> EngineResult<(Vec<usize>, Vec<usize>)> {
        // The codec gate: with an empty side the sequential path computes
        // keys (and surfaces per-row errors) only for the non-empty side,
        // which the legacy loop reproduces for free; row indices must
        // also fit the arenas' u32 slots.
        if lbatch.len > 0 && rbatch.len > 0 && rbatch.len <= u32::MAX as usize {
            if let Some((lc, rc)) = codec::join_codecs(lkeys, rkeys)? {
                if let Some(pairs) = self.par_hash_join(lbatch, rbatch, &lc, &rc)? {
                    return Ok(pairs);
                }
                return self.seq_hash_join(lbatch, rbatch, &lc, &rc);
            }
        }
        let mut table: HashMap<Vec<Key>, Vec<usize>> = HashMap::new();
        for j in 0..rbatch.len {
            let key: Vec<Key> = rkeys
                .iter()
                .map(|c| c.get(j).key())
                .collect::<EngineResult<_>>()?;
            table.entry(key).or_default().push(j);
        }
        let mut lidx = Vec::new();
        let mut ridx = Vec::new();
        for i in 0..lbatch.len {
            let key: Vec<Key> = lkeys
                .iter()
                .map(|c| c.get(i).key())
                .collect::<EngineResult<_>>()?;
            if let Some(matches) = table.get(&key) {
                self.charge(matches.len() as u64)?;
                for &j in matches {
                    lidx.push(i);
                    ridx.push(j);
                }
            }
        }
        Ok((lidx, ridx))
    }

    /// Sequential codec-keyed hash join: same budget charges and error
    /// positions as the legacy loop, no per-row key allocation.
    fn seq_hash_join(
        &self,
        lbatch: &Batch,
        rbatch: &Batch,
        lc: &codec::GroupCodec<'_>,
        rc: &codec::GroupCodec<'_>,
    ) -> EngineResult<(Vec<usize>, Vec<usize>)> {
        let mut table = codec::MatchMap::new(rc.u64_mode());
        let mut scratch = Vec::new();
        for j in 0..rbatch.len {
            let k = rc.encode(j, &mut scratch)?;
            table.push(&k, j as u32);
        }
        let mut lidx = Vec::new();
        let mut ridx = Vec::new();
        for i in 0..lbatch.len {
            let k = lc.encode(i, &mut scratch)?;
            if let Some(matches) = table.get(&k) {
                self.charge(matches.len() as u64)?;
                for &j in matches {
                    lidx.push(i);
                    ridx.push(j as usize);
                }
            }
        }
        Ok((lidx, ridx))
    }

    /// Radix-partitioned parallel equi-join: build-side keys are encoded
    /// morsel-parallel into per-(chunk, partition) arenas (flat buffers —
    /// no per-row allocation), each partition's table is then built by one
    /// worker replaying the arenas in chunk order (so every key's match
    /// list stays in global build-row order), and probing runs
    /// morsel-parallel with pair lists concatenated in morsel order — the
    /// candidate sequence is byte-identical to the sequential build/probe
    /// at every thread count.
    fn par_hash_join(
        &self,
        lbatch: &Batch,
        rbatch: &Batch,
        lc: &codec::GroupCodec<'_>,
        rc: &codec::GroupCodec<'_>,
    ) -> EngineResult<Option<(Vec<usize>, Vec<usize>)>> {
        let Some(counter) = self.used.handle() else {
            return Ok(None);
        };
        if morsel::effective_workers(self.threads) < 2 || lbatch.len.max(rbatch.len) < morsel::MIN_PARALLEL_ROWS {
            return Ok(None);
        }
        let budget = self.budget;

        let chunks = morsel::coarse_morsels(rbatch.len, self.threads);
        let bucketed: Vec<Vec<codec::Bucket>> =
            morsel::run_on_ranges(chunks, self.threads, |range| {
                let mut buckets: Vec<codec::Bucket> = (0..codec::NPARTS)
                    .map(|_| codec::Bucket::new(rc.u64_mode()))
                    .collect();
                let mut scratch = Vec::new();
                for j in range {
                    let k = rc.encode(j, &mut scratch)?;
                    buckets[codec::partition(k.hash())].push(&k, j as u32);
                }
                Ok(buckets)
            })?;
        let tables: Vec<codec::MatchMap> =
            morsel::run_indexed(codec::NPARTS, self.threads, |p| {
                let mut m = codec::MatchMap::new(rc.u64_mode());
                for chunk in &bucketed {
                    chunk[p].append_to(&mut m);
                }
                Ok(m)
            })?;
        let pairs: Vec<(Vec<usize>, Vec<usize>)> =
            morsel::run_on_morsels(lbatch.len, self.threads, |range| {
                let mut li = Vec::new();
                let mut ri = Vec::new();
                let mut scratch = Vec::new();
                for i in range {
                    let k = lc.encode(i, &mut scratch)?;
                    if let Some(matches) = tables[codec::partition(k.hash())].get(&k) {
                        let n = matches.len() as u64;
                        let used = counter.fetch_add(n, Ordering::Relaxed) + n;
                        if used > budget {
                            return Err(EngineError::Budget(format!("{used} rows touched")));
                        }
                        for &j in matches {
                            li.push(i);
                            ri.push(j as usize);
                        }
                    }
                }
                Ok((li, ri))
            })?;

        let total: usize = pairs.iter().map(|(li, _)| li.len()).sum();
        let mut lidx = Vec::with_capacity(total);
        let mut ridx = Vec::with_capacity(total);
        for (li, ri) in pairs {
            lidx.extend(li);
            ridx.extend(ri);
        }
        Ok(Some((lidx, ridx)))
    }

    // ------------------------------------------------------------- operators

    /// Execute the relational core to a materialized batch, recording
    /// per-node metrics when profiling is on. The off path is one branch
    /// and a tail call into [`Self::exec_node`].
    fn exec_core(&self, plan: &Plan, outer: Option<&Env<'_>>) -> EngineResult<Batch> {
        let Some(prof) = &self.profiler else {
            return self.exec_node(plan, outer);
        };
        let before = child_rows_out(prof, plan);
        let start = Instant::now();
        let batch = self.exec_node(plan, outer)?;
        let rows_in = match plan {
            Plan::Scan { table, .. } => table.row_count() as u64,
            Plan::Derived { .. } | Plan::Cte { .. } => batch.len as u64,
            Plan::Filter { .. } | Plan::Join { .. } => child_rows_out(prof, plan) - before,
        };
        prof.record(
            profile::node_key(plan),
            NodeMetrics {
                rows_in,
                rows_out: batch.len as u64,
                batches: 1,
                nanos: start.elapsed().as_nanos() as u64,
                ..NodeMetrics::default()
            },
        );
        Ok(batch)
    }

    /// The unprofiled node dispatch. Scans materialize only their `live`
    /// (plan-time pruned) columns.
    fn exec_node(&self, plan: &Plan, outer: Option<&Env<'_>>) -> EngineResult<Batch> {
        match plan {
            Plan::Scan { table, live, .. } => {
                self.charge(table.row_count() as u64)?;
                let schema = plan.schema();
                let cols = live
                    .iter()
                    .map(|&ci| materialize_col(&table.columns[ci].data, 0..table.row_count()))
                    .collect();
                Ok(Batch {
                    schema,
                    len: table.row_count(),
                    cols,
                })
            }
            Plan::Derived { query, .. } => {
                let rows = self.run_query(query, outer)?;
                self.charge(rows.len() as u64)?;
                Ok(rows_to_batch(plan.schema(), &rows))
            }
            Plan::Cte { name, .. } => {
                let rows = {
                    let frames = self.ctes.borrow();
                    frames
                        .iter()
                        .rev()
                        .find(|f| f.name == *name)
                        .map(|f| Rc::clone(&f.rows))
                        .ok_or_else(|| EngineError::UnknownTable(name.clone()))?
                };
                self.charge(rows.len() as u64)?;
                Ok(rows_to_batch(plan.schema(), &rows))
            }
            Plan::Filter { input, predicate } => {
                if let Some(filtered) = self.par_filter_scan(input, predicate, outer)? {
                    return Ok(filtered);
                }
                if let Some(filtered) = self.seq_filter_scan(input, predicate, outer)? {
                    return Ok(filtered);
                }
                let batch = self.exec_core(input, outer)?;
                let mask = self.eval_vec(predicate, &batch, outer)?;
                let mut idx = Vec::new();
                for i in 0..batch.len {
                    if mask.truth(i)? == Some(true) {
                        idx.push(i);
                    }
                }
                Ok(batch.gather(&idx))
            }
            Plan::Join {
                left,
                right,
                kind,
                equi,
                residual,
            } => self.exec_join(left, right, *kind, equi, residual.as_ref(), outer),
        }
    }

    /// Execute one join input. An inner equi-join input that is a plain
    /// base-table scan whose keys are all bare columns executes *lazily*:
    /// only the key columns materialize now (null-constant placeholders
    /// hold the other slots — invisible to the join, which touches key
    /// slots only), and the returned table reference lets the caller
    /// fetch payload columns at the matched rows alone.
    fn join_input<'p>(
        &self,
        plan: &'p Plan,
        kind: JoinKind,
        key_slots: Option<Vec<usize>>,
        outer: Option<&Env<'_>>,
    ) -> EngineResult<(Batch, Option<LazySide<'p>>)> {
        if let (JoinKind::Inner, Some(mut slots), Plan::Scan { table, live, .. }) =
            (kind, key_slots, plan)
        {
            self.charge(table.row_count() as u64)?;
            let start = self.profiler.as_ref().map(|_| Instant::now());
            let schema = plan.schema();
            let n = table.row_count();
            slots.sort_unstable();
            slots.dedup();
            let mut cols: Vec<ColVec> = schema
                .iter()
                .map(|_| ColVec::Const(Value::Null, n))
                .collect();
            for &slot in &slots {
                cols[slot] = materialize_col(&table.columns[live[slot]].data, 0..n);
            }
            if let (Some(prof), Some(t)) = (&self.profiler, start) {
                // `exec_core` is bypassed, so record the scan sample here
                // (same row flow as an eager scan of the whole table).
                prof.record(
                    profile::node_key(plan),
                    NodeMetrics {
                        rows_in: n as u64,
                        rows_out: n as u64,
                        batches: 1,
                        nanos: t.elapsed().as_nanos() as u64,
                        ..NodeMetrics::default()
                    },
                );
            }
            return Ok((
                Batch {
                    schema,
                    len: n,
                    cols,
                },
                Some((table.as_ref(), live.as_slice())),
            ));
        }
        Ok((self.exec_core(plan, outer)?, None))
    }

    fn exec_join(
        &self,
        left: &Plan,
        right: &Plan,
        kind: JoinKind,
        equi: &[(Expr, Expr)],
        residual: Option<&Expr>,
        outer: Option<&Env<'_>>,
    ) -> EngineResult<Batch> {
        // Bare-column key slots per side, when *every* key is one — the
        // late-materialization gate (expressions over placeholder slots
        // would otherwise reach the row-wise evaluator).
        let col_slots = |exprs: Vec<&Expr>| -> Option<Vec<usize>> {
            (!exprs.is_empty())
                .then(|| {
                    exprs
                        .iter()
                        .map(|e| match e {
                            Expr::Col { slot, .. } => Some(*slot),
                            _ => None,
                        })
                        .collect()
                })
                .flatten()
        };
        let (lbatch, llazy) =
            self.join_input(left, kind, col_slots(equi.iter().map(|(l, _)| l).collect()), outer)?;
        let (rbatch, rlazy) =
            self.join_input(right, kind, col_slots(equi.iter().map(|(_, r)| r).collect()), outer)?;
        let mut combined_schema = lbatch.schema.clone();
        combined_schema.extend(rbatch.schema.iter().cloned());

        // Candidate index pairs.
        let mut lidx: Vec<usize> = Vec::new();
        let mut ridx: Vec<usize> = Vec::new();
        let mut lmatched = vec![false; lbatch.len];

        if equi.is_empty() {
            self.charge(lbatch.len as u64 * rbatch.len.max(1) as u64)?;
            for i in 0..lbatch.len {
                for j in 0..rbatch.len {
                    lidx.push(i);
                    ridx.push(j);
                }
            }
        } else {
            // Vectorized key computation on both sides.
            let lkeys: Vec<ColVec> = equi
                .iter()
                .map(|(le, _)| self.eval_vec(le, &lbatch, outer))
                .collect::<EngineResult<_>>()?;
            let rkeys: Vec<ColVec> = equi
                .iter()
                .map(|(_, re)| self.eval_vec(re, &rbatch, outer))
                .collect::<EngineResult<_>>()?;
            self.charge((lbatch.len + rbatch.len) as u64)?;
            let (pl, pr) = self.join_indices(&lbatch, &rbatch, &lkeys, &rkeys)?;
            lidx = pl;
            ridx = pr;
        }

        // Materialize candidates, then apply the residual as a filter.
        // Lazily-scanned sides fetch payload columns straight from table
        // storage at the matched rows only (late materialization); their
        // placeholder slots are exactly the `Const(Null)` columns.
        let fetch = |batch: &Batch,
                     lazy: &Option<LazySide<'_>>,
                     idx: &[usize],
                     cols: &mut Vec<ColVec>| {
            for (slot, c) in batch.cols.iter().enumerate() {
                cols.push(match (lazy, c) {
                    (Some((table, live)), ColVec::Const(Value::Null, _)) => {
                        gather_table_col(&table.columns[live[slot]].data, idx)
                    }
                    _ => c.gather(idx),
                });
            }
        };
        let mut cols: Vec<ColVec> = Vec::with_capacity(combined_schema.len());
        fetch(&lbatch, &llazy, &lidx, &mut cols);
        fetch(&rbatch, &rlazy, &ridx, &mut cols);
        let mut candidates = Batch {
            schema: combined_schema,
            len: lidx.len(),
            cols,
        };
        if let Some(r) = residual {
            let mask = self.eval_vec(r, &candidates, outer)?;
            let mut keep = Vec::new();
            for i in 0..candidates.len {
                if mask.truth(i)? == Some(true) {
                    keep.push(i);
                }
            }
            let kept_lidx: Vec<usize> = keep.iter().map(|&i| lidx[i]).collect();
            candidates = candidates.gather(&keep);
            for &i in &kept_lidx {
                lmatched[i] = true;
            }
        } else {
            for &i in &lidx {
                lmatched[i] = true;
            }
        }

        if kind == JoinKind::LeftOuter {
            // Append null-padded rows for unmatched left rows.
            let unmatched: Vec<usize> = (0..lbatch.len).filter(|&i| !lmatched[i]).collect();
            if !unmatched.is_empty() {
                let pad = lbatch.gather(&unmatched);
                let rwidth = rbatch.schema.len();
                let mut rows: Vec<Vec<Value>> = Vec::with_capacity(candidates.len + pad.len);
                for i in 0..candidates.len {
                    rows.push(candidates.row(i));
                }
                for i in 0..pad.len {
                    let mut row = pad.row(i);
                    row.extend(std::iter::repeat_n(Value::Null, rwidth));
                    rows.push(row);
                }
                return Ok(rows_to_batch(candidates.schema, &rows));
            }
        }
        Ok(candidates)
    }

    // --------------------------------------------------------- vectorized eval

    /// Evaluate an expression over a whole batch, materializing the result.
    fn eval_vec(
        &self,
        e: &Expr,
        batch: &Batch,
        outer: Option<&Env<'_>>,
    ) -> EngineResult<ColVec> {
        let n = batch.len;
        match e {
            Expr::Col { slot, .. } => Ok(batch.cols[*slot].clone()), // materializing copy
            Expr::Outer(c) => match outer {
                Some(env) => Ok(ColVec::Const(env.resolve(c)?, n)),
                None => Err(EngineError::UnknownColumn(c.to_string())),
            },
            Expr::Bool(b) => Ok(ColVec::Const(Value::Bool(*b), n)),
            Expr::OutputCol(_) => Err(EngineError::Unsupported(
                "output-column reference outside ORDER BY".into(),
            )),
            Expr::Literal(_) => {
                // Reuse the row evaluator for literal conversion.
                let v = self.eval_one(e, batch, 0, outer, true)?;
                Ok(ColVec::Const(v, n))
            }
            Expr::Binary { left, op, right } => match op {
                BinOp::And | BinOp::Or => {
                    let l = self.eval_vec(left, batch, outer)?;
                    let r = self.eval_vec(right, batch, outer)?;
                    self.charge(n as u64)?;
                    bool_kernel(*op, &l, &r, n)
                }
                BinOp::Plus | BinOp::Minus | BinOp::Mul | BinOp::Div | BinOp::Mod
                | BinOp::Concat => {
                    let l = self.eval_vec(left, batch, outer)?;
                    let r = self.eval_vec(right, batch, outer)?;
                    self.charge(n as u64)?;
                    arith_kernel(*op, &l, &r, n)
                }
                cmp => {
                    let l = self.eval_vec(left, batch, outer)?;
                    let r = self.eval_vec(right, batch, outer)?;
                    self.charge(n as u64)?;
                    cmp_kernel(*cmp, &l, &r, n)
                }
            },
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                let v = self.eval_vec(expr, batch, outer)?;
                let lo = self.eval_vec(low, batch, outer)?;
                let hi = self.eval_vec(high, batch, outer)?;
                self.charge(2 * n as u64)?;
                let ge = cmp_kernel(BinOp::GtEq, &v, &lo, n)?;
                let le = cmp_kernel(BinOp::LtEq, &v, &hi, n)?;
                let both = bool_kernel(BinOp::And, &ge, &le, n)?;
                if *negated {
                    not_kernel(&both, n)
                } else {
                    Ok(both)
                }
            }
            Expr::Like {
                expr,
                negated,
                pattern,
            } => {
                let v = self.eval_vec(expr, batch, outer)?;
                let p = self.eval_vec(pattern, batch, outer)?;
                self.charge(n as u64)?;
                // Fast path: string column against constant pattern.
                if let (ColVec::Str(texts), ColVec::Const(Value::Str(pat), _)) = (&v, &p) {
                    let out: Vec<bool> = texts
                        .iter()
                        .map(|t| value::like_match(t, pat) != *negated)
                        .collect();
                    return Ok(ColVec::Bool(out));
                }
                // Dict fast path: match the pattern once per dictionary
                // entry, then map codes through the result table.
                if let (ColVec::Dict { codes, dict }, ColVec::Const(Value::Str(pat), _)) =
                    (&v, &p)
                {
                    let table: Vec<bool> = dict
                        .iter()
                        .map(|t| value::like_match(t, pat) != *negated)
                        .collect();
                    return Ok(ColVec::Bool(
                        codes.iter().map(|&c| table[c as usize]).collect(),
                    ));
                }
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(match (v.get(i), p.get(i)) {
                        (Value::Null, _) | (_, Value::Null) => Value::Null,
                        (Value::Str(t), Value::Str(pt)) => {
                            Value::Bool(value::like_match(&t, &pt) != *negated)
                        }
                        (a, b) => {
                            return Err(EngineError::Type(format!(
                                "LIKE requires strings, got {} and {}",
                                a.type_name(),
                                b.type_name()
                            )))
                        }
                    });
                }
                Ok(ColVec::Val(out))
            }
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => {
                let v = self.eval_vec(expr, batch, outer)?;
                self.charge(n as u64)?;
                not_kernel(&v, n)
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                let v = self.eval_vec(expr, batch, outer)?;
                let items: Vec<ColVec> = list
                    .iter()
                    .map(|it| self.eval_vec(it, batch, outer))
                    .collect::<EngineResult<_>>()?;
                self.charge(n as u64)?;
                // Dict fast path: constant string lists (`l_shipmode in
                // ('MAIL', 'SHIP')`) become a per-code membership table.
                if let ColVec::Dict { codes, dict } = &v {
                    if items
                        .iter()
                        .all(|it| matches!(it, ColVec::Const(Value::Str(_), _)))
                    {
                        let mut member = vec![false; dict.len()];
                        for it in &items {
                            if let ColVec::Const(Value::Str(s), _) = it {
                                if let Ok(p) = dict.binary_search(s) {
                                    member[p] = true;
                                }
                            }
                        }
                        return Ok(ColVec::Bool(
                            codes.iter().map(|&c| member[c as usize] != *negated).collect(),
                        ));
                    }
                }
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let x = v.get(i);
                    if x.is_null() {
                        out.push(Value::Null);
                        continue;
                    }
                    let found = items.iter().any(|it| value::group_eq(&x, &it.get(i)));
                    out.push(Value::Bool(found != *negated));
                }
                Ok(ColVec::Val(out))
            }
            // Everything else (CASE, EXTRACT, SUBSTRING, subqueries,
            // unary minus, IS NULL): row-wise fallback with full semantics.
            // The context and row buffer live outside the loop so the only
            // per-row allocations are the values themselves.
            _ => {
                self.charge(n as u64)?;
                let ctx = EvalCtx::new(self, MODE);
                let mut out = Vec::with_capacity(n);
                let mut row: Vec<Value> = Vec::with_capacity(batch.schema.len());
                for i in 0..n {
                    batch.row_into(i, &mut row);
                    let env = match outer {
                        Some(o) => Env::with_outer(&batch.schema, &row, o),
                        None => Env::new(&batch.schema, &row),
                    };
                    out.push(eval(e, &env, &ctx)?);
                }
                Ok(ColVec::Val(out))
            }
        }
    }

    /// Row-wise evaluation of one element (fallback path).
    fn eval_one(
        &self,
        e: &Expr,
        batch: &Batch,
        i: usize,
        outer: Option<&Env<'_>>,
        constant: bool,
    ) -> EngineResult<Value> {
        let row: Vec<Value> = if constant || batch.len == 0 {
            vec![Value::Null; batch.schema.len()]
        } else {
            batch.row(i)
        };
        let env = match outer {
            Some(o) => Env::with_outer(&batch.schema, &row, o),
            None => Env::new(&batch.schema, &row),
        };
        let ctx = EvalCtx::new(self, MODE);
        eval(e, &env, &ctx)
    }
}

impl SubqueryRunner for ColExec<'_> {
    fn run_subquery(&self, q: &Query, outer: &Env<'_>) -> EngineResult<Vec<Vec<Value>>> {
        let id = q as *const Query as usize;
        {
            let subs = self.subqueries.borrow();
            match subs.get(&id) {
                Some(SubState::Cached(rows)) => return Ok(rows.as_ref().clone()),
                Some(SubState::Correlated(bound)) => {
                    let bound = Rc::clone(bound);
                    drop(subs);
                    return self.run_query(&bound, Some(outer));
                }
                None => {}
            }
        }
        let cte_scope: Vec<(String, Vec<(String, Ty)>)> = self
            .ctes
            .borrow()
            .iter()
            .map(|f| (f.name.clone(), f.cols.clone()))
            .collect();
        let bound = Rc::new(
            Planner::with_ctes(self.db, cte_scope)
                .with_rewrite(self.rewrite)
                .bind(q)?,
        );
        match self.run_query(&bound, None) {
            Ok(rows) => {
                let rows = Rc::new(rows);
                self.subqueries
                    .borrow_mut()
                    .insert(id, SubState::Cached(Rc::clone(&rows)));
                Ok(rows.as_ref().clone())
            }
            Err(EngineError::UnknownColumn(_)) => {
                self.subqueries
                    .borrow_mut()
                    .insert(id, SubState::Correlated(Rc::clone(&bound)));
                self.run_query(&bound, Some(outer))
            }
            Err(other) => Err(other),
        }
    }
}

/// Cumulative profiled rows_out of a node's direct children — read before
/// and after an execution, the difference is the rows the node consumed
/// *this* time (stable under repeated executions of one bound tree).
fn child_rows_out(prof: &Profiler, plan: &Plan) -> u64 {
    match plan {
        Plan::Scan { .. } | Plan::Derived { .. } | Plan::Cte { .. } => 0,
        Plan::Filter { input, .. } => prof.rows_out_of(profile::node_key(&**input)),
        Plan::Join { left, right, .. } => {
            prof.rows_out_of(profile::node_key(&**left))
                + prof.rows_out_of(profile::node_key(&**right))
        }
    }
}

/// Whether every node of `e` stays on `eval_vec`'s vectorized kernels.
/// A lazily-scanned join input: the stored table plus the scan's live
/// column mapping, enough to fetch payload columns at matched rows only.
type LazySide<'p> = (&'p Table, &'p [usize]);

/// The staged filter builds batches whose unreferenced slots are null
/// placeholders, so any expression that could reach the row-wise fallback
/// (which materializes *all* slots) must be rejected here.
fn vectorizable(e: &Expr) -> bool {
    match e {
        Expr::Col { .. } | Expr::Literal(_) | Expr::Bool(_) => true,
        Expr::Binary { left, right, .. } => vectorizable(left) && vectorizable(right),
        Expr::Between {
            expr, low, high, ..
        } => vectorizable(expr) && vectorizable(low) && vectorizable(high),
        Expr::Like { expr, pattern, .. } => vectorizable(expr) && vectorizable(pattern),
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => vectorizable(expr),
        Expr::InList { expr, list, .. } => {
            vectorizable(expr) && list.iter().all(vectorizable)
        }
        _ => false,
    }
}

/// A scan-range constraint harvested from one filter conjunct, expressed
/// in the column's zone-map domain ([`crate::storage::ZoneMap`]): integer
/// value, decimal raw, day number, or dictionary code.
struct ZonePred {
    /// Table column index (`live[slot]` of the scan).
    col: usize,
    lo: Option<i64>,
    hi: Option<i64>,
}

/// Mirror a comparison across `lit op col` → `col op' lit`.
fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

/// Translate `col op literal` into zone-domain bounds, or `None` when the
/// literal doesn't map exactly into the column's domain. Bounds only ever
/// *widen* on inexact edges (saturating ±1), so a skip decision is always
/// sound: the zone test may scan a chunk it could have skipped, never the
/// reverse.
fn zone_bounds(
    op: BinOp,
    v: &Value,
    data: &ColumnData,
) -> Option<(Option<i64>, Option<i64>)> {
    let point: i64 = match (data, v) {
        (ColumnData::Int(_) | ColumnData::ForInt(_), Value::Int(i)) => *i,
        (ColumnData::Date(_) | ColumnData::ForDate(_), Value::Date(d)) => *d as i64,
        (ColumnData::Decimal { scale, .. }, Value::Decimal { raw, scale: ls }) => {
            let raw = if ls <= scale {
                raw.checked_mul(10i128.checked_pow((scale - ls) as u32)?)?
            } else {
                let f = 10i128.checked_pow((ls - scale) as u32)?;
                if raw % f != 0 {
                    return None; // not representable at the column's scale
                }
                raw / f
            };
            i64::try_from(raw).ok()?
        }
        (ColumnData::Decimal { scale, .. }, Value::Int(i)) => {
            i.checked_mul(10i64.checked_pow(*scale as u32)?)?
        }
        // Dictionary columns: the dictionary is sorted, so string bounds
        // become code bounds through one binary search. An absent string
        // folds `<`/`<=` (and `>`/`>=`) together at the insertion point;
        // an absent equality is provably empty (lo > hi skips everything).
        (ColumnData::Dict { dict, .. }, Value::Str(s)) => {
            return Some(match (op, dict.binary_search(s)) {
                (BinOp::Eq, Ok(p)) => (Some(p as i64), Some(p as i64)),
                (BinOp::Eq, Err(_)) => (Some(0), Some(-1)),
                (BinOp::Lt, Ok(p)) => (None, Some(p as i64 - 1)),
                (BinOp::LtEq, Ok(p)) => (None, Some(p as i64)),
                (BinOp::Lt | BinOp::LtEq, Err(p)) => (None, Some(p as i64 - 1)),
                (BinOp::Gt, Ok(p)) => (Some(p as i64 + 1), None),
                (BinOp::GtEq, Ok(p)) => (Some(p as i64), None),
                (BinOp::Gt | BinOp::GtEq, Err(p)) => (Some(p as i64), None),
                _ => return None,
            });
        }
        _ => return None,
    };
    Some(match op {
        BinOp::Eq => (Some(point), Some(point)),
        BinOp::Lt => (None, Some(point.saturating_sub(1))),
        BinOp::LtEq => (None, Some(point)),
        BinOp::Gt => (Some(point.saturating_add(1)), None),
        BinOp::GtEq => (Some(point), None),
        _ => return None,
    })
}

/// Harvest zone predicates from a conjunct list: `col ⋈ literal` in
/// either order and non-negated `BETWEEN` over literals. Conjuncts that
/// don't fit contribute no constraint (never an unsound one).
fn zone_preds(conjs: &[&Expr], table: &Table, live: &[usize]) -> Vec<ZonePred> {
    let mut out = Vec::new();
    let mut push = |slot: usize, op: BinOp, lit: &sqalpel_sql::ast::Literal| {
        let Ok(v) = crate::eval::literal(lit) else {
            return;
        };
        let col = live[slot];
        if let Some((lo, hi)) = zone_bounds(op, &v, &table.columns[col].data) {
            out.push(ZonePred { col, lo, hi });
        }
    };
    for conj in conjs {
        match conj {
            Expr::Binary { left, op, right } => match (left.as_ref(), right.as_ref()) {
                (Expr::Col { slot, .. }, Expr::Literal(l)) => push(*slot, *op, l),
                (Expr::Literal(l), Expr::Col { slot, .. }) => push(*slot, flip_cmp(*op), l),
                _ => {}
            },
            Expr::Between {
                expr,
                negated: false,
                low,
                high,
            } => {
                if let Expr::Col { slot, .. } = expr.as_ref() {
                    if let Expr::Literal(l) = low.as_ref() {
                        push(*slot, BinOp::GtEq, l);
                    }
                    if let Expr::Literal(h) = high.as_ref() {
                        push(*slot, BinOp::LtEq, h);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Materialize one range of a stored column into an executor vector:
/// `i64 → i128` decimal widening, frame-of-reference unpacking, and
/// dictionary code slicing (codes move, strings never do).
fn materialize_col(data: &ColumnData, range: Range<usize>) -> ColVec {
    match data {
        ColumnData::Int(v) => ColVec::Int(v[range].to_vec()),
        ColumnData::Decimal { raw, scale } => ColVec::Decimal {
            raw: raw[range].iter().map(|&x| x as i128).collect(),
            scale: *scale,
        },
        ColumnData::Str(v) => ColVec::Str(v[range].to_vec()),
        ColumnData::Date(v) => ColVec::Date(v[range].to_vec()),
        ColumnData::Float(v) => ColVec::Float(v[range].to_vec()),
        ColumnData::Dict { codes, dict } => ColVec::Dict {
            codes: codes[range].to_vec(),
            dict: Arc::clone(dict),
        },
        ColumnData::ForInt(v) => {
            let mut out = Vec::new();
            v.decode_range(range, &mut out);
            ColVec::Int(out)
        }
        ColumnData::ForDate(v) => {
            let mut out = Vec::with_capacity(range.len());
            for i in range {
                out.push(v.get(i) as i32);
            }
            ColVec::Date(out)
        }
    }
}

/// Gather single rows of a stored column directly, bypassing full
/// materialization — the late-materialization fetch used for join payload
/// columns and zone-map filter output.
fn gather_table_col(data: &ColumnData, idx: &[usize]) -> ColVec {
    match data {
        ColumnData::Int(v) => ColVec::Int(idx.iter().map(|&i| v[i]).collect()),
        ColumnData::Decimal { raw, scale } => ColVec::Decimal {
            raw: idx.iter().map(|&i| raw[i] as i128).collect(),
            scale: *scale,
        },
        ColumnData::Str(v) => ColVec::Str(idx.iter().map(|&i| v[i].clone()).collect()),
        ColumnData::Date(v) => ColVec::Date(idx.iter().map(|&i| v[i]).collect()),
        ColumnData::Float(v) => ColVec::Float(idx.iter().map(|&i| v[i]).collect()),
        ColumnData::Dict { codes, dict } => ColVec::Dict {
            codes: idx.iter().map(|&i| codes[i]).collect(),
            dict: Arc::clone(dict),
        },
        ColumnData::ForInt(v) => ColVec::Int(idx.iter().map(|&i| v.get(i)).collect()),
        ColumnData::ForDate(v) => ColVec::Date(idx.iter().map(|&i| v.get(i) as i32).collect()),
    }
}

/// Materialize one morsel of a base-table scan, pruned to the plan's
/// `live` columns (the same pruning and decoding as the full sequential
/// scan).
fn scan_batch(table: &Table, schema: &Schema, live: &[usize], range: Range<usize>) -> Batch {
    let cols = live
        .iter()
        .map(|&ci| materialize_col(&table.columns[ci].data, range.clone()))
        .collect();
    Batch {
        schema: schema.clone(),
        len: range.len(),
        cols,
    }
}

/// Concatenate per-morsel batches in morsel order.
fn concat_batches(schema: Schema, parts: Vec<Batch>) -> Batch {
    let len = parts.iter().map(|b| b.len).sum();
    let mut by_col: Vec<Vec<ColVec>> = (0..schema.len())
        .map(|_| Vec::with_capacity(parts.len()))
        .collect();
    for b in parts {
        for (slot, col) in by_col.iter_mut().zip(b.cols) {
            slot.push(col);
        }
    }
    let cols = by_col.into_iter().map(concat_col).collect();
    Batch { schema, len, cols }
}

/// Concatenate column fragments, preserving the typed representation.
/// Fragments from one operator share a variant; mismatches (possible only
/// through future operators) fall back to boxed values.
fn concat_col(parts: Vec<ColVec>) -> ColVec {
    let total: usize = parts.iter().map(|c| c.len()).sum();
    let mut iter = parts.into_iter();
    let Some(mut acc) = iter.next() else {
        return ColVec::Val(Vec::new());
    };
    for part in iter {
        acc = match (acc, part) {
            (ColVec::Int(mut a), ColVec::Int(b)) => {
                a.extend(b);
                ColVec::Int(a)
            }
            (ColVec::Float(mut a), ColVec::Float(b)) => {
                a.extend(b);
                ColVec::Float(a)
            }
            (
                ColVec::Decimal { raw: mut a, scale: sa },
                ColVec::Decimal { raw: b, scale: sb },
            ) if sa == sb => {
                a.extend(b);
                ColVec::Decimal { raw: a, scale: sa }
            }
            (ColVec::Str(mut a), ColVec::Str(b)) => {
                a.extend(b);
                ColVec::Str(a)
            }
            (ColVec::Date(mut a), ColVec::Date(b)) => {
                a.extend(b);
                ColVec::Date(a)
            }
            (ColVec::Bool(mut a), ColVec::Bool(b)) => {
                a.extend(b);
                ColVec::Bool(a)
            }
            (ColVec::Val(mut a), ColVec::Val(b)) => {
                a.extend(b);
                ColVec::Val(a)
            }
            (
                ColVec::Dict {
                    codes: mut a,
                    dict: da,
                },
                ColVec::Dict { codes: b, dict: db },
            ) if Arc::ptr_eq(&da, &db) => {
                a.extend(b);
                ColVec::Dict { codes: a, dict: da }
            }
            (a, b) => {
                let mut out = Vec::with_capacity(total);
                for c in [a, b] {
                    for i in 0..c.len() {
                        out.push(c.get(i));
                    }
                }
                ColVec::Val(out)
            }
        };
    }
    acc
}

/// One aggregate argument's feeder: how each input row reaches its
/// accumulator. Splitting this out of the row loop keeps typed string
/// columns on [`Accumulator::update_str`] (no per-row boxing) and
/// avoids re-matching the column variant per row per aggregate.
enum ArgCol<'a> {
    /// `count(*)`: no argument.
    Star,
    /// A typed string column: feed by reference.
    Str(&'a [String]),
    /// A dictionary column: decode the code to a borrowed string, no
    /// per-row allocation.
    Dict {
        codes: &'a [u32],
        dict: &'a [String],
    },
    /// Everything else: box one value per row (ints and decimals are
    /// stack-only, so this allocates nothing for numeric columns).
    Generic(&'a ColVec),
}

impl<'a> ArgCol<'a> {
    fn from(arg: &'a Option<ColVec>) -> ArgCol<'a> {
        match arg {
            None => ArgCol::Star,
            Some(ColVec::Str(v)) => ArgCol::Str(v),
            Some(ColVec::Dict { codes, dict }) => ArgCol::Dict {
                codes,
                dict: dict.as_slice(),
            },
            Some(c) => ArgCol::Generic(c),
        }
    }

    #[inline]
    fn feed(&self, acc: &mut Accumulator, i: usize) -> EngineResult<()> {
        match self {
            ArgCol::Star => acc.update(None),
            ArgCol::Str(v) => acc.update_str(&v[i]),
            ArgCol::Dict { codes, dict } => acc.update_str(&dict[codes[i] as usize]),
            ArgCol::Generic(c) => {
                let v = c.get(i);
                acc.update(Some(&v))
            }
        }
    }
}

/// Convert row-major results into a batch (derived tables / CTE scans).
fn rows_to_batch(schema: Schema, rows: &[Vec<Value>]) -> Batch {
    let width = schema.len();
    let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(rows.len()); width];
    for row in rows {
        for (c, v) in cols.iter_mut().zip(row.iter()) {
            c.push(v.clone());
        }
    }
    Batch {
        schema,
        len: rows.len(),
        cols: cols.into_iter().map(ColVec::Val).collect(),
    }
}

// ------------------------------------------------------------------- kernels

/// Vectorized arithmetic with typed fast paths; the guarded-decimal paths
/// are the expensive, overflow-checked ones.
fn arith_kernel(op: BinOp, l: &ColVec, r: &ColVec, n: usize) -> EngineResult<ColVec> {
    match (op, l, r) {
        // decimal ⊙ decimal
        (
            BinOp::Mul,
            ColVec::Decimal { raw: lr, scale: ls },
            ColVec::Decimal { raw: rr, scale: rs },
        ) => {
            let mut out = Vec::with_capacity(n);
            let mut scale = ls + rs;
            let mut shift = 1i128;
            while scale > 6 {
                shift *= 10;
                scale -= 1;
            }
            for i in 0..n {
                let p = lr[i]
                    .checked_mul(rr[i])
                    .ok_or_else(|| EngineError::Overflow("decimal *".into()))?;
                out.push(p / shift);
            }
            Ok(ColVec::Decimal { raw: out, scale })
        }
        (
            BinOp::Plus | BinOp::Minus,
            ColVec::Decimal { raw: lr, scale: ls },
            ColVec::Decimal { raw: rr, scale: rs },
        ) => {
            let scale = (*ls).max(*rs);
            let lf = 10i128.pow((scale - ls) as u32);
            let rf = 10i128.pow((scale - rs) as u32);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let a = lr[i]
                    .checked_mul(lf)
                    .ok_or_else(|| EngineError::Overflow("decimal rescale".into()))?;
                let b = rr[i]
                    .checked_mul(rf)
                    .ok_or_else(|| EngineError::Overflow("decimal rescale".into()))?;
                let v = if op == BinOp::Plus {
                    a.checked_add(b)
                } else {
                    a.checked_sub(b)
                };
                out.push(v.ok_or_else(|| EngineError::Overflow("decimal +/-".into()))?);
            }
            Ok(ColVec::Decimal { raw: out, scale })
        }
        // int ⊙ int
        (BinOp::Plus, ColVec::Int(a), ColVec::Int(b)) => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(
                    a[i].checked_add(b[i])
                        .ok_or_else(|| EngineError::Overflow("integer +".into()))?,
                );
            }
            Ok(ColVec::Int(out))
        }
        (BinOp::Minus, ColVec::Int(a), ColVec::Int(b)) => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(
                    a[i].checked_sub(b[i])
                        .ok_or_else(|| EngineError::Overflow("integer -".into()))?,
                );
            }
            Ok(ColVec::Int(out))
        }
        (BinOp::Mul, ColVec::Int(a), ColVec::Int(b)) => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(
                    a[i].checked_mul(b[i])
                        .ok_or_else(|| EngineError::Overflow("integer *".into()))?,
                );
            }
            Ok(ColVec::Int(out))
        }
        // Constant broadcast: expand and retry via the generic path below
        // would lose the typed loop; handle decimal-const specially.
        (_, ColVec::Const(cv, _), _) if cv.is_numeric() || matches!(cv, Value::Null) => {
            elementwise(op, l, r, n)
        }
        (_, _, ColVec::Const(cv, _)) if cv.is_numeric() || matches!(cv, Value::Null) => {
            elementwise(op, l, r, n)
        }
        _ => elementwise(op, l, r, n),
    }
}

/// Generic element-at-a-time fallback using the guarded scalar ops.
fn elementwise(op: BinOp, l: &ColVec, r: &ColVec, n: usize) -> EngineResult<ColVec> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let a = l.get(i);
        let b = r.get(i);
        out.push(match op {
            BinOp::Plus => value::add(&a, &b, MODE)?,
            BinOp::Minus => value::sub(&a, &b, MODE)?,
            BinOp::Mul => value::mul(&a, &b, MODE)?,
            BinOp::Div => value::div(&a, &b, MODE)?,
            BinOp::Mod => value::rem(&a, &b)?,
            BinOp::Concat => value::concat(&a, &b)?,
            _ => return Err(EngineError::Type("non-arithmetic op in kernel".into())),
        });
    }
    Ok(ColVec::Val(out))
}

/// Vectorized comparison producing a boolean (or nullable) vector.
fn cmp_kernel(op: BinOp, l: &ColVec, r: &ColVec, n: usize) -> EngineResult<ColVec> {
    fn apply(o: std::cmp::Ordering, op: BinOp) -> bool {
        match op {
            BinOp::Eq => o.is_eq(),
            BinOp::NotEq => o.is_ne(),
            BinOp::Lt => o.is_lt(),
            BinOp::LtEq => o.is_le(),
            BinOp::Gt => o.is_gt(),
            BinOp::GtEq => o.is_ge(),
            _ => unreachable!(),
        }
    }
    // Typed fast paths against constants (the common filter shape).
    match (l, r) {
        (ColVec::Int(a), ColVec::Const(Value::Int(c), _)) => {
            return Ok(ColVec::Bool(
                a.iter().map(|&x| apply(x.cmp(c), op)).collect(),
            ))
        }
        (ColVec::Date(a), ColVec::Const(Value::Date(c), _)) => {
            return Ok(ColVec::Bool(
                a.iter().map(|&x| apply(x.cmp(c), op)).collect(),
            ))
        }
        (ColVec::Str(a), ColVec::Const(Value::Str(c), _)) => {
            return Ok(ColVec::Bool(
                a.iter().map(|x| apply(x.as_str().cmp(c.as_str()), op)).collect(),
            ))
        }
        (ColVec::Int(a), ColVec::Int(b)) => {
            return Ok(ColVec::Bool(
                a.iter().zip(b).map(|(&x, &y)| apply(x.cmp(&y), op)).collect(),
            ))
        }
        (ColVec::Date(a), ColVec::Date(b)) => {
            return Ok(ColVec::Bool(
                a.iter().zip(b).map(|(&x, &y)| apply(x.cmp(&y), op)).collect(),
            ))
        }
        // Dictionary column against a constant string: the dictionary is
        // sorted, so the whole comparison collapses into code space — one
        // binary search, then an integer compare per row.
        (ColVec::Dict { codes, dict }, ColVec::Const(Value::Str(c), _)) => {
            let out: Vec<bool> = match dict.binary_search(c) {
                Ok(p) => {
                    let p = p as u32;
                    codes.iter().map(|&x| apply(x.cmp(&p), op)).collect()
                }
                // The constant is absent: equality is constant-false,
                // inequality constant-true, and for range ops `p` is the
                // insertion point, so `x < p` ⇔ `dict[x] < c` (no code
                // equals `c`, which folds `<`/`<=` and `>`/`>=` together).
                Err(p) => {
                    let p = p as u32;
                    match op {
                        BinOp::Eq => vec![false; codes.len()],
                        BinOp::NotEq => vec![true; codes.len()],
                        BinOp::Lt | BinOp::LtEq => codes.iter().map(|&x| x < p).collect(),
                        BinOp::Gt | BinOp::GtEq => codes.iter().map(|&x| x >= p).collect(),
                        _ => unreachable!("cmp_kernel only sees comparison ops"),
                    }
                }
            };
            return Ok(ColVec::Bool(out));
        }
        (
            ColVec::Dict {
                codes: a,
                dict: da,
            },
            ColVec::Dict {
                codes: b,
                dict: db,
            },
        ) => {
            // Same dictionary: pure code compare; different dictionaries:
            // compare the strings by reference, still allocation-free.
            let out: Vec<bool> = if Arc::ptr_eq(da, db) {
                a.iter().zip(b).map(|(&x, &y)| apply(x.cmp(&y), op)).collect()
            } else {
                a.iter()
                    .zip(b)
                    .map(|(&x, &y)| {
                        apply(da[x as usize].as_str().cmp(db[y as usize].as_str()), op)
                    })
                    .collect()
            };
            return Ok(ColVec::Bool(out));
        }
        (ColVec::Dict { codes, dict }, ColVec::Str(b)) => {
            return Ok(ColVec::Bool(
                codes
                    .iter()
                    .zip(b)
                    .map(|(&x, y)| apply(dict[x as usize].as_str().cmp(y.as_str()), op))
                    .collect(),
            ))
        }
        (ColVec::Str(a), ColVec::Dict { codes, dict }) => {
            return Ok(ColVec::Bool(
                a.iter()
                    .zip(codes)
                    .map(|(x, &y)| apply(x.as_str().cmp(dict[y as usize].as_str()), op))
                    .collect(),
            ))
        }
        _ => {}
    }
    let mut out = Vec::with_capacity(n);
    let mut nullable = false;
    for i in 0..n {
        match value::compare(&l.get(i), &r.get(i))? {
            Some(o) => out.push(Value::Bool(apply(o, op))),
            None => {
                nullable = true;
                out.push(Value::Null);
            }
        }
    }
    if nullable {
        Ok(ColVec::Val(out))
    } else {
        Ok(ColVec::Bool(
            out.iter().map(|v| v.as_bool().unwrap()).collect(),
        ))
    }
}

/// Kleene AND/OR over boolean vectors.
fn bool_kernel(op: BinOp, l: &ColVec, r: &ColVec, n: usize) -> EngineResult<ColVec> {
    if let (ColVec::Bool(a), ColVec::Bool(b)) = (l, r) {
        let out: Vec<bool> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| if op == BinOp::And { x && y } else { x || y })
            .collect();
        return Ok(ColVec::Bool(out));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let a = l.truth(i)?;
        let b = r.truth(i)?;
        let v = if op == BinOp::And {
            match (a, b) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        } else {
            match (a, b) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }
        };
        out.push(match v {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        });
    }
    Ok(ColVec::Val(out))
}

fn not_kernel(v: &ColVec, n: usize) -> EngineResult<ColVec> {
    if let ColVec::Bool(b) = v {
        return Ok(ColVec::Bool(b.iter().map(|x| !x).collect()));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(match v.truth(i)? {
            Some(b) => Value::Bool(!b),
            None => Value::Null,
        });
    }
    Ok(ColVec::Val(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::tpch(0.001, 42)
    }

    fn run(db: &Database, sql: &str) -> (Vec<String>, Vec<Vec<Value>>) {
        ColExec::new(db, 50_000_000)
            .run_sql(sql)
            .unwrap_or_else(|e| panic!("{sql} failed: {e}"))
    }

    #[test]
    fn count_star() {
        let d = db();
        let (_, rows) = run(&d, "select count(*) from nation");
        assert!(matches!(rows[0][0], Value::Int(25)));
    }

    #[test]
    fn vectorized_filter() {
        let d = db();
        let (_, rows) = run(&d, "select n_name from nation where n_regionkey = 3 order by n_name");
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0].to_string(), "FRANCE");
    }

    #[test]
    fn guarded_decimal_sum_matches_exact() {
        let d = db();
        let (_, rows) = run(&d, "select sum(l_extendedprice) from lineitem");
        // The column engine returns an exact decimal.
        assert!(matches!(rows[0][0], Value::Decimal { .. }));
    }

    #[test]
    fn like_fast_path() {
        let d = db();
        let (_, rows) = run(&d, "select count(*) from part where p_type like 'PROMO%'");
        let Value::Int(n) = rows[0][0] else { panic!() };
        assert!(n > 0 && n < 200);
    }

    #[test]
    fn join_matches_row_engine() {
        let d = db();
        let sql = "select n_name, count(*) as c from nation, supplier \
                   where n_nationkey = s_nationkey group by n_name order by c desc, n_name";
        let (_, crows) = run(&d, sql);
        let (_, rrows) = crate::exec_row::RowExec::new(&d, 50_000_000)
            .run_sql(sql)
            .unwrap();
        assert_eq!(crows.len(), rrows.len());
        for (c, r) in crows.iter().zip(&rrows) {
            assert_eq!(c[0].to_string(), r[0].to_string());
            assert_eq!(c[1].to_string(), r[1].to_string());
        }
    }

    #[test]
    fn left_outer_join_null_padding() {
        let d = db();
        let (_, rows) = run(
            &d,
            "select c_custkey, count(o_orderkey) as n from customer \
             left outer join orders on c_custkey = o_custkey \
             group by c_custkey order by n, c_custkey limit 3",
        );
        assert!(matches!(rows[0][1], Value::Int(0)));
    }

    #[test]
    fn q1_runs_and_is_decimal_exact() {
        let d = db();
        let (_, rows) = run(&d, sqalpel_sql::tpch::Q1);
        assert!(rows.len() >= 3);
        // sum_charge (index 5) computed in the decimal domain.
        assert!(matches!(rows[0][5], Value::Decimal { .. } | Value::Float(_)));
    }

    #[test]
    fn q6_matches_row_engine_approximately() {
        let d = db();
        let (_, c) = run(&d, sqalpel_sql::tpch::Q6);
        let (_, r) = crate::exec_row::RowExec::new(&d, 50_000_000)
            .run_sql(sqalpel_sql::tpch::Q6)
            .unwrap();
        let cv = c[0][0].as_f64().unwrap();
        let rv = r[0][0].as_f64().unwrap();
        assert!((cv - rv).abs() / rv.abs() < 1e-6, "{cv} vs {rv}");
    }

    #[test]
    fn correlated_subquery_q17_style() {
        let d = db();
        let (_, rows) = run(
            &d,
            "select count(*) from lineitem, part where p_partkey = l_partkey \
             and p_brand = 'Brand#23' \
             and l_quantity < (select 0.3 * avg(l_quantity) from lineitem \
                               where l_partkey = p_partkey)",
        );
        assert!(matches!(rows[0][0], Value::Int(n) if n > 0));
    }

    #[test]
    fn budget_enforced() {
        let d = db();
        let err = ColExec::new(&d, 1_000)
            .run_sql("select count(*) from lineitem, lineitem l2")
            .unwrap_err();
        assert!(matches!(err, EngineError::Budget(_)));
    }

    #[test]
    fn gather_and_get_round_trip() {
        let v = ColVec::Decimal {
            raw: vec![100, 200, 300],
            scale: 2,
        };
        let g = v.gather(&[2, 0]);
        assert_eq!(g.get(0).to_string(), "3.00");
        assert_eq!(g.get(1).to_string(), "1.00");
        let c = ColVec::Const(Value::Int(7), 5);
        assert_eq!(c.gather(&[1, 2]).len(), 2);
    }

    #[test]
    fn in_list_vectorized() {
        let d = db();
        let (_, rows) = run(
            &d,
            "select count(*) from lineitem where l_shipmode in ('MAIL', 'SHIP')",
        );
        let Value::Int(n) = rows[0][0] else { panic!() };
        let (_, all) = run(&d, "select count(*) from lineitem");
        let Value::Int(total) = all[0][0] else { panic!() };
        assert!(n > 0 && n < total);
    }
}
