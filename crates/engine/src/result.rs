//! Query results: the shape the platform records, exports and compares.

use crate::value::{self, Value};
use std::fmt;

/// A completed query result.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    pub fn new(columns: Vec<String>, rows: Vec<Vec<Value>>) -> Self {
        ResultSet { columns, rows }
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// CSV export (the paper's "exported in CSV for post-processing").
    /// Fields containing commas, quotes or newlines are quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains([',', '"', '\n']) {
                    out.push('"');
                    out.push_str(&cell.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.columns);
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            write_row(&mut out, &cells);
        }
        out
    }

    /// Compare against another result with relative tolerance `eps` on
    /// numerics (the two engines use different arithmetic). Rows are
    /// compared in order — run with ORDER BY, or call
    /// [`Self::canonicalized`] first.
    pub fn approx_eq(&self, other: &ResultSet, eps: f64) -> bool {
        if self.columns.len() != other.columns.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        self.rows
            .iter()
            .zip(&other.rows)
            .all(|(a, b)| rows_approx_eq(a, b, eps))
    }

    /// A copy with rows sorted canonically (by display text), for
    /// order-insensitive comparison.
    pub fn canonicalized(&self) -> ResultSet {
        let mut rows = self.rows.clone();
        rows.sort_by_key(|r| r.iter().map(|v| v.to_string()).collect::<Vec<_>>());
        ResultSet {
            columns: self.columns.clone(),
            rows,
        }
    }
}

fn rows_approx_eq(a: &[Value], b: &[Value], eps: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(x, y)| cell_approx_eq(x, y, eps))
}

fn cell_approx_eq(a: &Value, b: &Value, eps: f64) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => {
            let denom = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() / denom <= eps
        }
        _ => match (a, b) {
            (Value::Null, Value::Null) => true,
            _ => value::group_eq(a, b),
        },
    }
}

impl fmt::Display for ResultSet {
    /// Pretty-print as an aligned text table (first 20 rows).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_ROWS: usize = 20;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let shown: Vec<Vec<String>> = self
            .rows
            .iter()
            .take(MAX_ROWS)
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &shown {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{c:width$}", width = widths[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)))?;
        for row in &shown {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{cell:width$}", width = widths[i])?;
            }
            writeln!(f)?;
        }
        if self.rows.len() > MAX_ROWS {
            writeln!(f, "... {} more rows", self.rows.len() - MAX_ROWS)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet::new(vec!["a".into(), "b".into()], rows)
    }

    #[test]
    fn csv_escaping() {
        let r = ResultSet::new(
            vec!["name".into()],
            vec![vec![Value::Str("a,b".into())], vec![Value::Str("q\"x".into())]],
        );
        assert_eq!(r.to_csv(), "name\n\"a,b\"\n\"q\"\"x\"\n");
    }

    #[test]
    fn approx_eq_tolerates_float_decimal_drift() {
        let a = rs(vec![vec![Value::Float(100.000001), Value::Int(1)]]);
        let b = rs(vec![vec![Value::cents(10_000), Value::Int(1)]]);
        assert!(a.approx_eq(&b, 1e-6));
        assert!(!a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn approx_eq_rejects_shape_mismatch() {
        let a = rs(vec![vec![Value::Int(1), Value::Int(2)]]);
        let b = rs(vec![]);
        assert!(!a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn canonicalized_sorts_rows() {
        let a = rs(vec![
            vec![Value::Str("b".into()), Value::Int(2)],
            vec![Value::Str("a".into()), Value::Int(1)],
        ]);
        let c = a.canonicalized();
        assert_eq!(c.rows[0][0].to_string(), "a");
    }

    #[test]
    fn display_renders_table() {
        let r = rs(vec![vec![Value::Int(1), Value::Str("xy".into())]]);
        let text = r.to_string();
        assert!(text.contains("a"));
        assert!(text.contains("xy"));
    }

    #[test]
    fn nulls_compare_equal_to_nulls_only() {
        let a = rs(vec![vec![Value::Null, Value::Int(1)]]);
        let b = rs(vec![vec![Value::Null, Value::Int(1)]]);
        let c = rs(vec![vec![Value::Int(0), Value::Int(1)]]);
        assert!(a.approx_eq(&b, 0.0));
        assert!(!a.approx_eq(&c, 0.0));
    }
}
