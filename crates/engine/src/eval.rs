//! Row-level expression evaluation, shared by both engines.
//!
//! Evaluation happens against an [`Env`] — a schema/row pair chained to an
//! optional outer environment, which is how correlated subqueries see the
//! enclosing row (SQL's innermost-first scoping). Subqueries are executed
//! through the [`SubqueryRunner`] callback so each engine runs nested
//! queries with its own executor; uncorrelated subqueries are detected on
//! first use and their result cached by the runner.
//!
//! The evaluator implements SQL three-valued logic: comparisons over NULL
//! yield NULL, `AND`/`OR` follow Kleene semantics, and filters treat NULL
//! as false.

use crate::error::{EngineError, EngineResult};
use crate::ir::Expr;
use crate::plan::Schema;
use crate::value::{self, ArithMode, Key, Value};
use sqalpel_sql::ast::{BinOp, IntervalUnit, Literal, Query, UnaryOp};
use std::collections::HashSet;

/// A row visible to expression evaluation, with a link to the enclosing
/// row for correlated subqueries.
#[derive(Clone, Copy)]
pub struct Env<'a> {
    pub schema: &'a Schema,
    pub row: &'a [Value],
    pub outer: Option<&'a Env<'a>>,
}

impl<'a> Env<'a> {
    pub fn new(schema: &'a Schema, row: &'a [Value]) -> Self {
        Env {
            schema,
            row,
            outer: None,
        }
    }

    pub fn with_outer(schema: &'a Schema, row: &'a [Value], outer: &'a Env<'a>) -> Self {
        Env {
            schema,
            row,
            outer: Some(outer),
        }
    }

    /// Resolve a column reference: innermost scope first, ambiguity is an
    /// error within a scope, unresolved names climb to the outer scope.
    pub fn resolve(&self, col: &sqalpel_sql::ColumnRef) -> EngineResult<Value> {
        let mut hit: Option<usize> = None;
        for (i, meta) in self.schema.iter().enumerate() {
            let matches = match &col.table {
                Some(t) => meta.binding == *t && meta.name == col.column,
                None => meta.name == col.column,
            };
            if matches {
                if hit.is_some() {
                    return Err(EngineError::AmbiguousColumn(col.to_string()));
                }
                hit = Some(i);
            }
        }
        match hit {
            Some(i) => Ok(self.row[i].clone()),
            None => match self.outer {
                Some(outer) => outer.resolve(col),
                None => Err(EngineError::UnknownColumn(col.to_string())),
            },
        }
    }
}

/// Callback for executing subqueries inside expressions.
pub trait SubqueryRunner {
    /// Run `q` with `outer` in scope; returns the result rows.
    fn run_subquery(&self, q: &Query, outer: &Env<'_>) -> EngineResult<Vec<Vec<Value>>>;
}

/// Computed aggregate values for post-grouping expression evaluation:
/// parallel arrays of spec keys and their per-group results.
pub struct AggValues<'a> {
    pub keys: &'a [String],
    pub values: &'a [Value],
}

impl AggValues<'_> {
    fn lookup(&self, key: &str) -> Option<Value> {
        self.keys
            .iter()
            .position(|k| k == key)
            .map(|i| self.values[i].clone())
    }
}

/// Everything evaluation needs besides the row itself.
pub struct EvalCtx<'a> {
    pub runner: &'a dyn SubqueryRunner,
    pub mode: ArithMode,
    /// Present when evaluating post-aggregation expressions (select items
    /// over groups, HAVING).
    pub aggs: Option<&'a AggValues<'a>>,
}

impl<'a> EvalCtx<'a> {
    pub fn new(runner: &'a dyn SubqueryRunner, mode: ArithMode) -> Self {
        EvalCtx {
            runner,
            mode,
            aggs: None,
        }
    }

    pub fn with_aggs(&self, aggs: &'a AggValues<'a>) -> EvalCtx<'a> {
        EvalCtx {
            runner: self.runner,
            mode: self.mode,
            aggs: Some(aggs),
        }
    }
}

/// Evaluate an expression to a [`Value`].
pub fn eval(e: &Expr, env: &Env<'_>, ctx: &EvalCtx<'_>) -> EngineResult<Value> {
    match e {
        Expr::Col { slot, .. } => Ok(env.row[*slot].clone()),
        // An outer reference still resolves through the full environment
        // chain (local schema first) so unresolved and ambiguous names
        // error exactly as they did pre-IR.
        Expr::Outer(c) => env.resolve(c),
        Expr::OutputCol(_) => Err(EngineError::Unsupported(
            "output-column reference outside ORDER BY".into(),
        )),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Literal(l) => literal(l),
        Expr::Wildcard => Err(EngineError::Type("bare * outside count(*)".into())),
        Expr::Unary { op, expr } => {
            let v = eval(expr, env, ctx)?;
            match op {
                UnaryOp::Neg => value::negate(&v, ctx.mode),
                UnaryOp::Not => Ok(match v {
                    Value::Null => Value::Null,
                    Value::Bool(b) => Value::Bool(!b),
                    other => {
                        return Err(EngineError::Type(format!(
                            "NOT requires boolean, got {}",
                            other.type_name()
                        )))
                    }
                }),
            }
        }
        Expr::Binary { left, op, right } => binary(left, *op, right, env, ctx),
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let v = eval(expr, env, ctx)?;
            let lo = eval(low, env, ctx)?;
            let hi = eval(high, env, ctx)?;
            let ge = compare_tv(&v, &lo, BinOp::GtEq)?;
            let le = compare_tv(&v, &hi, BinOp::LtEq)?;
            let b = kleene_and(ge, le);
            Ok(negate_tv(b, *negated))
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let v = eval(expr, env, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let iv = eval(item, env, ctx)?;
                if value::group_eq(&v, &iv) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::InSubquery {
            expr,
            negated,
            query,
        } => {
            let v = eval(expr, env, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let rows = ctx.runner.run_subquery(query, env)?;
            let mut found = false;
            for row in &rows {
                let cell = row
                    .first()
                    .ok_or_else(|| EngineError::Type("IN subquery with no columns".into()))?;
                if value::group_eq(&v, cell) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Exists { negated, query } => {
            let rows = ctx.runner.run_subquery(query, env)?;
            Ok(Value::Bool(rows.is_empty() == *negated))
        }
        Expr::Like {
            expr,
            negated,
            pattern,
        } => {
            let v = eval(expr, env, ctx)?;
            let p = eval(pattern, env, ctx)?;
            match (&v, &p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => {
                    Ok(Value::Bool(value::like_match(s, pat) != *negated))
                }
                _ => Err(EngineError::Type(format!(
                    "LIKE requires strings, got {} and {}",
                    v.type_name(),
                    p.type_name()
                ))),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, env, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            let op_val = operand
                .as_ref()
                .map(|o| eval(o, env, ctx))
                .transpose()?;
            for (when, then) in branches {
                let hit = match &op_val {
                    Some(ov) => {
                        let wv = eval(when, env, ctx)?;
                        value::group_eq(ov, &wv)
                    }
                    None => matches!(eval(when, env, ctx)?, Value::Bool(true)),
                };
                if hit {
                    return eval(then, env, ctx);
                }
            }
            match else_branch {
                Some(e) => eval(e, env, ctx),
                None => Ok(Value::Null),
            }
        }
        Expr::Function {
            name,
            distinct,
            args,
        } => {
            if sqalpel_sql::ast::is_aggregate(name) {
                let key = agg_key(name, *distinct, args.first());
                match ctx.aggs.and_then(|a| a.lookup(&key)) {
                    Some(v) => Ok(v),
                    None => Err(EngineError::Type(format!(
                        "aggregate {name} used outside aggregation context"
                    ))),
                }
            } else {
                Err(EngineError::Unsupported(format!("function {name}")))
            }
        }
        Expr::Extract { field, expr } => {
            let v = eval(expr, env, ctx)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Date(d) => {
                    let date = sqalpel_datagen::calendar::from_days(d);
                    Ok(Value::Int(match field {
                        IntervalUnit::Year => date.year as i64,
                        IntervalUnit::Month => date.month as i64,
                        IntervalUnit::Day => date.day as i64,
                    }))
                }
                other => Err(EngineError::Type(format!(
                    "EXTRACT requires a date, got {}",
                    other.type_name()
                ))),
            }
        }
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            let v = eval(expr, env, ctx)?;
            let s = eval(start, env, ctx)?;
            let l = length.as_ref().map(|l| eval(l, env, ctx)).transpose()?;
            match (&v, &s) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(text), Value::Int(start1)) => {
                    let chars: Vec<char> = text.chars().collect();
                    let begin = (*start1 - 1).max(0) as usize;
                    let end = match &l {
                        Some(Value::Int(n)) => (begin + (*n).max(0) as usize).min(chars.len()),
                        Some(other) => {
                            return Err(EngineError::Type(format!(
                                "SUBSTRING length must be integer, got {}",
                                other.type_name()
                            )))
                        }
                        None => chars.len(),
                    };
                    Ok(Value::Str(
                        chars[begin.min(chars.len())..end].iter().collect(),
                    ))
                }
                _ => Err(EngineError::Type(format!(
                    "SUBSTRING requires (string, integer), got ({}, {})",
                    v.type_name(),
                    s.type_name()
                ))),
            }
        }
        Expr::Subquery(q) => {
            let rows = ctx.runner.run_subquery(q, env)?;
            match rows.len() {
                0 => Ok(Value::Null),
                1 => rows[0]
                    .first()
                    .cloned()
                    .ok_or_else(|| EngineError::Type("scalar subquery with no columns".into())),
                n => Err(EngineError::ScalarCardinality(format!("{n} rows"))),
            }
        }
    }
}

pub(crate) fn literal(l: &Literal) -> EngineResult<Value> {
    Ok(match l {
        Literal::Integer(i) => Value::Int(*i),
        Literal::Decimal(d) => {
            // SQL decimal literals like 0.05 become fixed-point values so
            // guarded arithmetic stays in the decimal domain.
            let scaled = (d * 10_000.0).round();
            if (scaled / 10_000.0 - d).abs() < 1e-12 {
                Value::Decimal {
                    raw: scaled as i128,
                    scale: 4,
                }
            } else {
                Value::Float(*d)
            }
        }
        Literal::String(s) => Value::Str(s.clone()),
        Literal::Date(text) => Value::Date(
            sqalpel_datagen::calendar::parse_days(text)
                .ok_or_else(|| EngineError::Type(format!("invalid date literal '{text}'")))?,
        ),
        Literal::Interval { value, unit } => match unit {
            IntervalUnit::Day => Value::Interval {
                months: 0,
                days: *value as i32,
            },
            IntervalUnit::Month => Value::Interval {
                months: *value as i32,
                days: 0,
            },
            IntervalUnit::Year => Value::Interval {
                months: *value as i32 * 12,
                days: 0,
            },
        },
        Literal::Null => Value::Null,
    })
}

fn binary(
    left: &Expr,
    op: BinOp,
    right: &Expr,
    env: &Env<'_>,
    ctx: &EvalCtx<'_>,
) -> EngineResult<Value> {
    // Kleene short-circuit for the boolean connectives.
    if op == BinOp::And {
        let l = truth(eval(left, env, ctx)?)?;
        if l == Some(false) {
            return Ok(Value::Bool(false));
        }
        let r = truth(eval(right, env, ctx)?)?;
        return Ok(tv(kleene_and(l, r)));
    }
    if op == BinOp::Or {
        let l = truth(eval(left, env, ctx)?)?;
        if l == Some(true) {
            return Ok(Value::Bool(true));
        }
        let r = truth(eval(right, env, ctx)?)?;
        return Ok(tv(kleene_or(l, r)));
    }
    let lv = eval(left, env, ctx)?;
    let rv = eval(right, env, ctx)?;
    match op {
        BinOp::Plus => value::add(&lv, &rv, ctx.mode),
        BinOp::Minus => value::sub(&lv, &rv, ctx.mode),
        BinOp::Mul => value::mul(&lv, &rv, ctx.mode),
        BinOp::Div => value::div(&lv, &rv, ctx.mode),
        BinOp::Mod => value::rem(&lv, &rv),
        BinOp::Concat => value::concat(&lv, &rv),
        cmp => Ok(tv(compare_tv(&lv, &rv, cmp)?)),
    }
}

/// Three-valued comparison.
fn compare_tv(a: &Value, b: &Value, op: BinOp) -> EngineResult<Option<bool>> {
    let ord = value::compare(a, b)?;
    Ok(ord.map(|o| match op {
        BinOp::Eq => o.is_eq(),
        BinOp::NotEq => o.is_ne(),
        BinOp::Lt => o.is_lt(),
        BinOp::LtEq => o.is_le(),
        BinOp::Gt => o.is_gt(),
        BinOp::GtEq => o.is_ge(),
        _ => unreachable!("non-comparison op"),
    }))
}

fn truth(v: Value) -> EngineResult<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(b)),
        other => Err(EngineError::Type(format!(
            "expected boolean, got {}",
            other.type_name()
        ))),
    }
}

fn tv(b: Option<bool>) -> Value {
    match b {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn kleene_and(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn kleene_or(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn negate_tv(b: Option<bool>, negated: bool) -> Value {
    match b {
        Some(x) => Value::Bool(x != negated),
        None => Value::Null,
    }
}

/// Evaluate a predicate; NULL counts as false (SQL WHERE semantics).
pub fn eval_filter(e: &Expr, env: &Env<'_>, ctx: &EvalCtx<'_>) -> EngineResult<bool> {
    match eval(e, env, ctx)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(EngineError::Type(format!(
            "filter must be boolean, got {}",
            other.type_name()
        ))),
    }
}

// ---------------------------------------------------------------- aggregates

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Count,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn parse(name: &str) -> Option<AggFunc> {
        Some(match name {
            "sum" => AggFunc::Sum,
            "count" => AggFunc::Count,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }
}

/// One distinct aggregate appearing in a query.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: AggFunc,
    pub distinct: bool,
    /// `None` for `count(*)`.
    pub arg: Option<Expr>,
    /// Canonical key used to match expression nodes to computed values.
    pub key: String,
}

/// Canonical key of an aggregate call.
pub fn agg_key(name: &str, distinct: bool, arg: Option<&Expr>) -> String {
    let arg_text = match arg {
        None | Some(Expr::Wildcard) => "*".to_string(),
        Some(e) => e.to_string(),
    };
    format!(
        "{name}({}{arg_text})",
        if distinct { "DISTINCT " } else { "" }
    )
}

/// Collect the distinct aggregate calls appearing in `exprs`
/// (not descending into subqueries).
pub fn collect_aggregates(exprs: &[&Expr]) -> Vec<AggSpec> {
    let mut specs: Vec<AggSpec> = Vec::new();
    for e in exprs {
        e.visit(&mut |x| {
            if let Expr::Function {
                name,
                distinct,
                args,
            } = x
            {
                if let Some(func) = AggFunc::parse(name) {
                    let arg = match args.first() {
                        None | Some(Expr::Wildcard) => None,
                        Some(a) => Some(a.clone()),
                    };
                    let key = agg_key(name, *distinct, args.first());
                    if !specs.iter().any(|s| s.key == key) {
                        specs.push(AggSpec {
                            func,
                            distinct: *distinct,
                            arg,
                            key,
                        });
                    }
                }
            }
        });
    }
    specs
}

/// Running state for one aggregate over one group.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    /// Present for DISTINCT aggregates: the set of keys already folded.
    seen: Option<HashSet<Key>>,
    count: i64,
    sum_f: f64,
    sum_d: i128,
    sum_scale: u8,
    sum_is_decimal: bool,
    extreme: Option<Value>,
    mode: ArithMode,
}

impl Accumulator {
    pub fn new(spec: &AggSpec, mode: ArithMode) -> Accumulator {
        Accumulator {
            func: spec.func,
            seen: spec.distinct.then(HashSet::new),
            count: 0,
            sum_f: 0.0,
            sum_d: 0,
            sum_scale: 0,
            sum_is_decimal: true,
            extreme: None,
            mode,
        }
    }

    /// Fold one input value. `None` means `count(*)` (no argument).
    pub fn update(&mut self, v: Option<&Value>) -> EngineResult<()> {
        let v = match v {
            None => {
                self.count += 1;
                return Ok(());
            }
            Some(Value::Null) => return Ok(()), // aggregates skip NULLs
            Some(v) => v,
        };
        if let Some(seen) = &mut self.seen {
            if !seen.insert(v.key()?) {
                return Ok(());
            }
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match (self.mode, v) {
                (ArithMode::GuardedDecimal, Value::Int(i)) => {
                    self.add_decimal(*i as i128, 0)?;
                }
                (ArithMode::GuardedDecimal, Value::Decimal { raw, scale }) => {
                    self.add_decimal(*raw, *scale)?;
                }
                _ => {
                    let f = v.as_f64().ok_or_else(|| {
                        EngineError::Type(format!("cannot sum {}", v.type_name()))
                    })?;
                    self.sum_f += f;
                    self.sum_is_decimal = false;
                }
            },
            AggFunc::Min | AggFunc::Max => {
                let replace = match &self.extreme {
                    None => true,
                    Some(cur) => {
                        let ord = value::compare(v, cur)?
                            .ok_or_else(|| EngineError::Type("incomparable in min/max".into()))?;
                        match self.func {
                            AggFunc::Min => ord.is_lt(),
                            _ => ord.is_gt(),
                        }
                    }
                };
                if replace {
                    self.extreme = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Fold one string input without boxing it into a [`Value`]. The
    /// typed-column aggregation loop feeds `Str` columns through here so
    /// min/max over strings clone only on replacement, not per row.
    /// Behaviour is identical to `update(Some(&Value::Str(..)))`.
    pub fn update_str(&mut self, s: &str) -> EngineResult<()> {
        if self.seen.is_some()
            || matches!(&self.extreme, Some(v) if !matches!(v, Value::Str(_)))
        {
            // DISTINCT needs the key image, and a mixed-type extreme
            // needs the generic comparison (to error identically).
            return self.update(Some(&Value::Str(s.to_owned())));
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                return Err(EngineError::Type("cannot sum varchar".into()))
            }
            AggFunc::Min | AggFunc::Max => {
                let replace = match &self.extreme {
                    None => true,
                    Some(Value::Str(cur)) => match self.func {
                        AggFunc::Min => s < cur.as_str(),
                        _ => s > cur.as_str(),
                    },
                    Some(_) => unreachable!("non-string extremes take the boxed path"),
                };
                if replace {
                    self.extreme = Some(Value::Str(s.to_owned()));
                }
            }
        }
        Ok(())
    }

    fn add_decimal(&mut self, raw: i128, scale: u8) -> EngineResult<()> {
        if !self.sum_is_decimal {
            self.sum_f += raw as f64 / 10f64.powi(scale as i32);
            return Ok(());
        }
        // Align scales, widening as needed.
        if scale > self.sum_scale {
            let factor = 10i128.pow((scale - self.sum_scale) as u32);
            self.sum_d = self
                .sum_d
                .checked_mul(factor)
                .ok_or_else(|| EngineError::Overflow("sum rescale".into()))?;
            self.sum_scale = scale;
        }
        let addend = if scale < self.sum_scale {
            raw.checked_mul(10i128.pow((self.sum_scale - scale) as u32))
                .ok_or_else(|| EngineError::Overflow("sum rescale".into()))?
        } else {
            raw
        };
        self.sum_d = self
            .sum_d
            .checked_add(addend)
            .ok_or_else(|| EngineError::Overflow("sum".into()))?;
        Ok(())
    }

    /// Fold another accumulator for the same spec into `self`. Used by the
    /// parallel aggregation path: `other` covers rows strictly later in
    /// morsel order, so min/max ties keep `self`'s first-seen value and the
    /// result is identical to sequential accumulation. Callers never merge
    /// DISTINCT accumulators (the seen-sets cannot be reconciled) nor
    /// float sums (addition order would leak into the result).
    pub fn merge(&mut self, other: &Accumulator) -> EngineResult<()> {
        debug_assert!(self.seen.is_none() && other.seen.is_none());
        self.count += other.count;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                if other.sum_is_decimal {
                    self.add_decimal(other.sum_d, other.sum_scale)?;
                } else {
                    if self.sum_is_decimal {
                        self.sum_f += self.sum_d as f64 / 10f64.powi(self.sum_scale as i32);
                        self.sum_is_decimal = false;
                    }
                    self.sum_f += other.sum_f;
                }
            }
            AggFunc::Min | AggFunc::Max => {
                if let Some(v) = &other.extreme {
                    let replace = match &self.extreme {
                        None => true,
                        Some(cur) => {
                            let ord = value::compare(v, cur)?.ok_or_else(|| {
                                EngineError::Type("incomparable in min/max".into())
                            })?;
                            match self.func {
                                AggFunc::Min => ord.is_lt(),
                                _ => ord.is_gt(),
                            }
                        }
                    };
                    if replace {
                        self.extreme = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Produce the final value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.sum_is_decimal && self.mode == ArithMode::GuardedDecimal {
                    Value::Decimal {
                        raw: self.sum_d,
                        scale: self.sum_scale,
                    }
                } else {
                    Value::Float(self.sum_f)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else if self.sum_is_decimal && self.mode == ArithMode::GuardedDecimal {
                    Value::Float(
                        self.sum_d as f64 / 10f64.powi(self.sum_scale as i32) / self.count as f64,
                    )
                } else {
                    Value::Float(self.sum_f / self.count as f64)
                }
            }
            AggFunc::Min | AggFunc::Max => self.extreme.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::bind::bind_expr;
    use crate::ir::Ty;
    use crate::plan::ColMeta;
    use sqalpel_sql::parse_expr;

    /// A runner for tests: subqueries are not expected.
    struct NoSubqueries;
    impl SubqueryRunner for NoSubqueries {
        fn run_subquery(&self, _: &Query, _: &Env<'_>) -> EngineResult<Vec<Vec<Value>>> {
            panic!("no subqueries expected in this test")
        }
    }

    fn schema(names: &[&str]) -> Schema {
        names
            .iter()
            .map(|n| ColMeta {
                binding: "t".into(),
                name: n.to_string(),
                ty: Ty::Unknown,
            })
            .collect()
    }

    /// Parse and bind an expression, then bind aggregates by slot.
    fn bound(src: &str, sch: &Schema) -> EngineResult<Expr> {
        bind_expr(&parse_expr(src).unwrap(), sch)
    }

    fn eval_str(src: &str, sch: &Schema, row: &[Value]) -> EngineResult<Value> {
        let e = bound(src, sch)?;
        let env = Env::new(sch, row);
        let ctx = EvalCtx::new(&NoSubqueries, ArithMode::Float);
        eval(&e, &env, &ctx)
    }

    #[test]
    fn accumulator_merge_matches_sequential_update() {
        let funcs = [
            ("sum", AggFunc::Sum),
            ("count", AggFunc::Count),
            ("avg", AggFunc::Avg),
            ("min", AggFunc::Min),
            ("max", AggFunc::Max),
        ];
        let values: Vec<Value> = vec![
            Value::Int(5),
            Value::Null,
            Value::Decimal { raw: 250, scale: 2 },
            Value::Int(-3),
            Value::Decimal { raw: 7, scale: 0 },
        ];
        for (name, func) in funcs {
            let spec = AggSpec {
                func,
                distinct: false,
                arg: None,
                key: format!("{name}(x)"),
            };
            let mut sequential = Accumulator::new(&spec, ArithMode::GuardedDecimal);
            for v in &values {
                sequential.update(Some(v)).unwrap();
            }
            // Split at every point, accumulate the halves separately, merge.
            for split in 0..=values.len() {
                let mut lo = Accumulator::new(&spec, ArithMode::GuardedDecimal);
                let mut hi = Accumulator::new(&spec, ArithMode::GuardedDecimal);
                for v in &values[..split] {
                    lo.update(Some(v)).unwrap();
                }
                for v in &values[split..] {
                    hi.update(Some(v)).unwrap();
                }
                lo.merge(&hi).unwrap();
                assert_eq!(
                    format!("{:?}", lo.finish()),
                    format!("{:?}", sequential.finish()),
                    "{name} split at {split}"
                );
            }
        }
    }

    #[test]
    fn update_str_matches_boxed_update() {
        let strings = ["delta", "alpha", "alpha", "zulu", "mike"];
        for (name, func) in [
            ("count", AggFunc::Count),
            ("min", AggFunc::Min),
            ("max", AggFunc::Max),
        ] {
            for distinct in [false, true] {
                let spec = AggSpec {
                    func,
                    distinct,
                    arg: None,
                    key: format!("{name}(s)"),
                };
                let mut boxed = Accumulator::new(&spec, ArithMode::Float);
                let mut fast = Accumulator::new(&spec, ArithMode::Float);
                for s in strings {
                    boxed.update(Some(&Value::Str(s.into()))).unwrap();
                    fast.update_str(s).unwrap();
                }
                assert_eq!(
                    format!("{:?}", boxed.finish()),
                    format!("{:?}", fast.finish()),
                    "{name} distinct={distinct}"
                );
            }
        }
        // Summing strings errors identically on both paths.
        let spec = AggSpec {
            func: AggFunc::Sum,
            distinct: false,
            arg: None,
            key: "sum(s)".into(),
        };
        let mut boxed = Accumulator::new(&spec, ArithMode::GuardedDecimal);
        let mut fast = Accumulator::new(&spec, ArithMode::GuardedDecimal);
        let be = boxed.update(Some(&Value::Str("x".into()))).unwrap_err();
        let fe = fast.update_str("x").unwrap_err();
        assert_eq!(be.to_string(), fe.to_string());
    }

    #[test]
    fn column_resolution_and_arithmetic() {
        let sch = schema(&["a", "b"]);
        let row = vec![Value::Int(6), Value::Int(7)];
        assert!(matches!(
            eval_str("a * b + 1", &sch, &row).unwrap(),
            Value::Int(43)
        ));
    }

    #[test]
    fn qualified_resolution() {
        let sch = schema(&["a"]);
        let row = vec![Value::Int(1)];
        assert!(matches!(
            eval_str("t.a", &sch, &row).unwrap(),
            Value::Int(1)
        ));
        assert!(matches!(
            eval_str("u.a", &sch, &row),
            Err(EngineError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ambiguous_column_detected() {
        let mut sch = schema(&["a"]);
        sch.push(ColMeta {
            binding: "u".into(),
            name: "a".into(),
            ty: Ty::Unknown,
        });
        let row = vec![Value::Int(1), Value::Int(2)];
        assert!(matches!(
            eval_str("a", &sch, &row),
            Err(EngineError::AmbiguousColumn(_))
        ));
        // Qualified access disambiguates.
        assert!(matches!(eval_str("u.a", &sch, &row).unwrap(), Value::Int(2)));
    }

    #[test]
    fn outer_env_resolution() {
        let outer_sch = schema(&["x"]);
        let outer_row = vec![Value::Int(99)];
        let outer = Env::new(&outer_sch, &outer_row);
        let inner_sch = schema(&["y"]);
        let inner_row = vec![Value::Int(1)];
        let env = Env::with_outer(&inner_sch, &inner_row, &outer);
        let ctx = EvalCtx::new(&NoSubqueries, ArithMode::Float);
        // `x` does not resolve locally, so it binds as an outer reference.
        let e = bound("x + y", &inner_sch).unwrap();
        assert!(e.contains_outer());
        assert!(matches!(eval(&e, &env, &ctx).unwrap(), Value::Int(100)));
    }

    #[test]
    fn kleene_logic() {
        let sch = schema(&["n"]);
        let row = vec![Value::Null];
        // NULL AND false = false; NULL OR true = true.
        assert!(matches!(
            eval_str("n > 1 and 1 = 2", &sch, &row).unwrap(),
            Value::Bool(false)
        ));
        assert!(matches!(
            eval_str("n > 1 or 1 = 1", &sch, &row).unwrap(),
            Value::Bool(true)
        ));
        assert!(eval_str("n > 1 or 1 = 2", &sch, &row).unwrap().is_null());
        assert!(eval_str("not (n > 1)", &sch, &row).unwrap().is_null());
    }

    #[test]
    fn between_and_in_list() {
        let sch = schema(&["v"]);
        let row = vec![Value::Int(5)];
        assert!(matches!(
            eval_str("v between 1 and 9", &sch, &row).unwrap(),
            Value::Bool(true)
        ));
        assert!(matches!(
            eval_str("v not between 1 and 9", &sch, &row).unwrap(),
            Value::Bool(false)
        ));
        assert!(matches!(
            eval_str("v in (1, 5, 7)", &sch, &row).unwrap(),
            Value::Bool(true)
        ));
        assert!(matches!(
            eval_str("v not in (1, 7)", &sch, &row).unwrap(),
            Value::Bool(true)
        ));
    }

    #[test]
    fn case_forms() {
        let sch = schema(&["v"]);
        let row = vec![Value::Int(2)];
        let searched = eval_str(
            "case when v = 1 then 'one' when v = 2 then 'two' else 'many' end",
            &sch,
            &row,
        )
        .unwrap();
        assert_eq!(searched.to_string(), "two");
        let simple = eval_str("case v when 9 then 'nine' end", &sch, &row).unwrap();
        assert!(simple.is_null());
    }

    #[test]
    fn extract_and_substring() {
        let sch = schema(&["d", "s"]);
        let d = sqalpel_datagen::calendar::parse_days("1996-03-15").unwrap();
        let row = vec![Value::Date(d), Value::Str("13-555-2368".into())];
        assert!(matches!(
            eval_str("extract(year from d)", &sch, &row).unwrap(),
            Value::Int(1996)
        ));
        assert_eq!(
            eval_str("substring(s from 1 for 2)", &sch, &row)
                .unwrap()
                .to_string(),
            "13"
        );
        assert_eq!(
            eval_str("substring(s from 4)", &sch, &row)
                .unwrap()
                .to_string(),
            "555-2368"
        );
    }

    #[test]
    fn substring_out_of_range_clamps() {
        let sch = schema(&["s"]);
        let row = vec![Value::Str("ab".into())];
        assert_eq!(
            eval_str("substring(s from 1 for 99)", &sch, &row)
                .unwrap()
                .to_string(),
            "ab"
        );
        assert_eq!(
            eval_str("substring(s from 9 for 2)", &sch, &row)
                .unwrap()
                .to_string(),
            ""
        );
    }

    #[test]
    fn decimal_literal_stays_fixed_point() {
        let sch = schema(&["x"]);
        let row = vec![Value::Int(0)];
        let e = bound("0.05", &sch).unwrap();
        let env = Env::new(&sch, &row);
        let ctx = EvalCtx::new(&NoSubqueries, ArithMode::GuardedDecimal);
        match eval(&e, &env, &ctx).unwrap() {
            Value::Decimal { raw, scale } => {
                assert_eq!((raw, scale), (500, 4));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_function_unsupported() {
        let sch = schema(&["x"]);
        let row = vec![Value::Int(0)];
        assert!(matches!(
            eval_str("frobnicate(x)", &sch, &row),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn aggregate_outside_context_errors() {
        let sch = schema(&["x"]);
        let row = vec![Value::Int(0)];
        assert!(eval_str("sum(x)", &sch, &row).is_err());
    }

    #[test]
    fn collect_aggregates_dedups() {
        let sch = schema(&["x", "y"]);
        let a = bound("sum(x) + sum(x) + count(*)", &sch).unwrap();
        let b = bound("avg(y)", &sch).unwrap();
        let specs = collect_aggregates(&[&a, &b]);
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].key, "sum(#0)");
        assert_eq!(specs[1].key, "count(*)");
        assert!(specs[1].arg.is_none());
    }

    #[test]
    fn accumulator_sum_and_avg() {
        let sch = schema(&["x"]);
        let spec = &collect_aggregates(&[&bound("sum(x)", &sch).unwrap()])[0];
        let mut acc = Accumulator::new(spec, ArithMode::Float);
        for v in [1, 2, 3] {
            acc.update(Some(&Value::Int(v))).unwrap();
        }
        acc.update(Some(&Value::Null)).unwrap(); // skipped
        assert!(matches!(acc.finish(), Value::Float(f) if (f - 6.0).abs() < 1e-9));
    }

    #[test]
    fn accumulator_guarded_decimal_sum() {
        let sch = schema(&["x"]);
        let spec = &collect_aggregates(&[&bound("sum(x)", &sch).unwrap()])[0];
        let mut acc = Accumulator::new(spec, ArithMode::GuardedDecimal);
        acc.update(Some(&Value::cents(150))).unwrap();
        acc.update(Some(&Value::cents(250))).unwrap();
        match acc.finish() {
            Value::Decimal { raw, scale } => assert_eq!((raw, scale), (400, 2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn accumulator_distinct_count() {
        let sch = schema(&["x"]);
        let e = bound("count(distinct x)", &sch).unwrap();
        let spec = &collect_aggregates(&[&e])[0];
        let mut acc = Accumulator::new(spec, ArithMode::Float);
        for v in [1, 2, 2, 3, 1] {
            acc.update(Some(&Value::Int(v))).unwrap();
        }
        assert!(matches!(acc.finish(), Value::Int(3)));
    }

    #[test]
    fn accumulator_min_max() {
        let sch = schema(&["x"]);
        let specs = collect_aggregates(&[
            &bound("min(x)", &sch).unwrap(),
            &bound("max(x)", &sch).unwrap(),
        ]);
        let mut mn = Accumulator::new(&specs[0], ArithMode::Float);
        let mut mx = Accumulator::new(&specs[1], ArithMode::Float);
        for v in [5, 3, 9, 1] {
            mn.update(Some(&Value::Int(v))).unwrap();
            mx.update(Some(&Value::Int(v))).unwrap();
        }
        assert!(matches!(mn.finish(), Value::Int(1)));
        assert!(matches!(mx.finish(), Value::Int(9)));
    }

    #[test]
    fn empty_group_semantics() {
        let sch = schema(&["x"]);
        let specs = collect_aggregates(&[
            &bound("sum(x)", &sch).unwrap(),
            &bound("count(x)", &sch).unwrap(),
        ]);
        let sum = Accumulator::new(&specs[0], ArithMode::Float);
        let count = Accumulator::new(&specs[1], ArithMode::Float);
        assert!(sum.finish().is_null());
        assert!(matches!(count.finish(), Value::Int(0)));
    }
}
