//! Result shaping shared by both executors: ORDER BY key computation,
//! DISTINCT, sorting and LIMIT.
//!
//! The two engines differ in how they *produce* rows (pipelined tuples vs
//! materialized columns); the declarative tail they apply to the produced
//! rows is the same SQL semantics, implemented once here.

use crate::error::EngineResult;
use crate::eval::{eval, AggValues, Env, EvalCtx};
use crate::ir::Expr;
use crate::plan::BoundQuery;
use crate::value::{Key, Value};

/// Compute sort key values for one output row.
///
/// `ORDER BY` aliases were bound to output-column references at plan time
/// ([`Expr::OutputCol`]); anything else evaluates in the row environment.
pub fn sort_keys(
    bq: &BoundQuery,
    out: &[Value],
    env: &Env<'_>,
    ctx: &EvalCtx<'_>,
    aggs: Option<&AggValues<'_>>,
) -> EngineResult<Vec<Value>> {
    let mut keys = Vec::with_capacity(bq.order_by.len());
    for (key, _) in &bq.order_by {
        if let Expr::OutputCol(i) = key {
            keys.push(out[*i].clone());
            continue;
        }
        let v = match aggs {
            Some(a) => eval(key, env, &ctx.with_aggs(a))?,
            None => eval(key, env, ctx)?,
        };
        keys.push(v);
    }
    Ok(keys)
}

/// Total order for sorting: NULLs last, numerics by value, then by type.
pub fn sort_cmp(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_null(), b.is_null()) {
        (true, true) => return Ordering::Equal,
        (true, false) => return Ordering::Greater,
        (false, true) => return Ordering::Less,
        _ => {}
    }
    match crate::value::compare(a, b) {
        Ok(Some(o)) => o,
        _ => a.type_name().cmp(b.type_name()),
    }
}

/// Shared tail: DISTINCT, ORDER BY, LIMIT over produced rows.
pub fn finish_rows(
    bq: &BoundQuery,
    mut produced: Vec<(Vec<Value>, Vec<Value>)>,
) -> EngineResult<Vec<Vec<Value>>> {
    if bq.distinct {
        let mut seen: std::collections::HashSet<Vec<Key>> = std::collections::HashSet::new();
        let mut deduped = Vec::with_capacity(produced.len());
        for (row, keys) in produced {
            let image: EngineResult<Vec<Key>> = row.iter().map(|v| v.key()).collect();
            if seen.insert(image?) {
                deduped.push((row, keys));
            }
        }
        produced = deduped;
    }
    if !bq.order_by.is_empty() {
        produced.sort_by(|(_, ka), (_, kb)| {
            for (i, (_, desc)) in bq.order_by.iter().enumerate() {
                let o = sort_cmp(&ka[i], &kb[i]);
                let o = if *desc { o.reverse() } else { o };
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    let mut rows: Vec<Vec<Value>> = produced.into_iter().map(|(r, _)| r).collect();
    if let Some(n) = bq.limit {
        rows.truncate(n as usize);
    }
    Ok(rows)
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_cmp_nulls_last() {
        use std::cmp::Ordering;
        assert_eq!(sort_cmp(&Value::Null, &Value::Int(1)), Ordering::Greater);
        assert_eq!(sort_cmp(&Value::Int(1), &Value::Null), Ordering::Less);
        assert_eq!(sort_cmp(&Value::Null, &Value::Null), Ordering::Equal);
        assert_eq!(sort_cmp(&Value::Int(1), &Value::Int(2)), Ordering::Less);
    }

    #[test]
    fn sort_cmp_mixed_types_fall_back_to_type_name() {
        // Must not panic on incomparable values.
        let _ = sort_cmp(&Value::Int(1), &Value::Str("a".into()));
    }
}
