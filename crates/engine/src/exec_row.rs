//! The row engine executor: tuple-at-a-time, pipelined, float arithmetic.
//!
//! "System A" of the pair. Rows flow through the operator tree one at a
//! time via push-based sinks — nothing is materialized except hash-join
//! build sides, grouping state and the final result. Decimals are
//! converted to `f64` on touch ([`ArithMode::Float`]): cheap arithmetic,
//! no overflow guards — the opposite trade-off from the column engine.

use crate::error::{EngineError, EngineResult};
use crate::eval::{
    collect_aggregates, eval, eval_filter, Accumulator, AggValues, Env, EvalCtx, SubqueryRunner,
};
use crate::ir::{Expr, Ty};
use crate::morsel::{self, BudgetCounter};
use crate::output::{finish_rows, sort_keys};
use crate::plan::{BoundQuery, Plan, Planner, Schema};
use crate::profile::{self, NodeMetrics, ProfileShard, Profiler};
use crate::storage::Database;
use crate::codec::FxBuild;
use crate::value::{self, ArithMode, Value};
use sqalpel_sql::ast::{JoinKind, Query};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

/// How a subquery behaved on first execution.
/// One materialized CTE visible during execution.
struct CteFrame {
    name: String,
    cols: Vec<(String, Ty)>,
    rows: Rc<Vec<Vec<Value>>>,
}

enum SubState {
    /// Uncorrelated: bound query plus its cached result rows.
    Cached(Rc<Vec<Vec<Value>>>),
    /// Correlated: bound query, re-executed per outer row.
    Correlated(Rc<BoundQuery>),
}

/// One query execution over the row engine.
///
/// Created per statement; holds the per-execution subquery cache and the
/// CTE materialization stack.
pub struct RowExec<'a> {
    db: &'a Database,
    /// Rows the execution may touch before aborting with
    /// [`EngineError::Budget`] (morphed queries can go cartesian).
    budget: u64,
    used: BudgetCounter,
    /// Worker cap for the morsel-parallel scan+filter front end; `1`
    /// keeps execution fully sequential.
    threads: usize,
    subqueries: RefCell<HashMap<usize, SubState>>,
    /// CTE frames: innermost last.
    ctes: RefCell<Vec<CteFrame>>,
    /// False for the legacy (pre-hash-join) version: every join runs as a
    /// nested loop over its equality predicates.
    hash_joins: bool,
    /// Whether the logical rewriter runs on bound plans (on by default;
    /// the equivalence suites turn it off to diff against raw plans).
    rewrite: bool,
    /// Per-node metrics collection; `None` (the default) keeps every
    /// operator on an early-return path with no metrics code at all.
    profiler: Option<Profiler>,
}

const MODE: ArithMode = ArithMode::Float;

impl<'a> RowExec<'a> {
    pub fn new(db: &'a Database, budget: u64) -> Self {
        Self::with_options(db, budget, true)
    }

    /// Constructor with the hash-join switch (false = RowStore 1.x
    /// nested-loop behaviour).
    pub fn with_options(db: &'a Database, budget: u64, hash_joins: bool) -> Self {
        Self::with_threads(db, budget, hash_joins, 1)
    }

    /// Constructor with the worker cap. Only the scan+filter front end
    /// parallelizes — float aggregation must fold in row order — and
    /// `threads = 1` is exactly the sequential executor.
    pub fn with_threads(db: &'a Database, budget: u64, hash_joins: bool, threads: usize) -> Self {
        let threads = threads.max(1);
        RowExec {
            db,
            budget,
            // A shared (atomic) counter only pays off when a parallel
            // plan can actually be chosen; otherwise every per-row charge
            // would eat an atomic increment for nothing.
            used: if morsel::effective_workers(threads) > 1 {
                BudgetCounter::shared()
            } else {
                BudgetCounter::local()
            },
            threads,
            subqueries: RefCell::new(HashMap::new()),
            ctes: RefCell::new(Vec::new()),
            hash_joins,
            rewrite: true,
            profiler: None,
        }
    }

    /// Toggle the logical rewriter for this execution (and any runtime
    /// subquery binds it performs).
    pub fn with_rewrite(mut self, on: bool) -> Self {
        self.rewrite = on;
        self
    }

    /// Collect per-node metrics during execution; retrieve the profile
    /// with [`Self::take_profile`] afterwards.
    pub fn with_profiler(mut self) -> Self {
        self.profiler = Some(Profiler::new());
        self
    }

    /// The metrics accumulated so far, draining the profiler. Empty when
    /// profiling was never enabled.
    pub fn take_profile(&self) -> ProfileShard {
        self.profiler
            .as_ref()
            .map(|p| p.take())
            .unwrap_or_default()
    }

    /// A sequential executor for one parallel worker, charging the shared
    /// budget of the coordinating execution. Workers never profile into
    /// the coordinator directly; morsel kernels collect per-worker
    /// [`ProfileShard`]s and merge them after the parallel region.
    fn worker(db: &'a Database, budget: u64, hash_joins: bool, counter: Arc<AtomicU64>) -> Self {
        RowExec {
            db,
            budget,
            used: BudgetCounter::Shared(counter),
            threads: 1,
            subqueries: RefCell::new(HashMap::new()),
            ctes: RefCell::new(Vec::new()),
            hash_joins,
            rewrite: true,
            profiler: None,
        }
    }

    /// Parse, bind and run a SQL query, returning output names and rows.
    pub fn run_sql(&self, sql: &str) -> EngineResult<(Vec<String>, Vec<Vec<Value>>)> {
        let q = sqalpel_sql::parse_query(sql)?;
        let bound = Planner::new(self.db).with_rewrite(self.rewrite).bind(&q)?;
        let rows = self.run_query(&bound, None)?;
        Ok((bound.output_names(), rows))
    }

    fn charge(&self, n: u64) -> EngineResult<()> {
        let used = self.used.add(n);
        if used > self.budget {
            Err(EngineError::Budget(format!("{used} rows touched")))
        } else {
            Ok(())
        }
    }

    /// Execute a bound query, with `outer` in scope for correlation.
    pub fn run_query(
        &self,
        bq: &BoundQuery,
        outer: Option<&Env<'_>>,
    ) -> EngineResult<Vec<Vec<Value>>> {
        let Some(prof) = &self.profiler else {
            return self.run_query_inner(bq, outer);
        };
        // The select node's rows_in is the *delta* of the core's
        // cumulative rows_out across this execution, so repeated runs of
        // one bound tree (correlated subqueries) never double-count.
        let root = profile::node_key(&bq.core);
        let before = prof.rows_out_of(root);
        let start = Instant::now();
        let rows = self.run_query_inner(bq, outer)?;
        prof.record(
            profile::node_key(bq),
            NodeMetrics {
                rows_in: prof.rows_out_of(root) - before,
                rows_out: rows.len() as u64,
                batches: 1,
                nanos: start.elapsed().as_nanos() as u64,
                ..NodeMetrics::default()
            },
        );
        Ok(rows)
    }

    fn run_query_inner(
        &self,
        bq: &BoundQuery,
        outer: Option<&Env<'_>>,
    ) -> EngineResult<Vec<Vec<Value>>> {
        // Materialize CTEs innermost-last; pop them on exit.
        let frame_base = self.ctes.borrow().len();
        for (name, cte_query) in &bq.ctes {
            let rows = self.run_query(cte_query, outer)?;
            self.ctes.borrow_mut().push(CteFrame {
                name: name.clone(),
                cols: cte_query.output_schema(),
                rows: Rc::new(rows),
            });
        }
        let result = self.run_body(bq, outer);
        self.ctes.borrow_mut().truncate(frame_base);
        result
    }

    fn run_body(
        &self,
        bq: &BoundQuery,
        outer: Option<&Env<'_>>,
    ) -> EngineResult<Vec<Vec<Value>>> {
        let core_schema = bq.core.schema();
        let ctx = EvalCtx::new(self, MODE);

        // (output row, sort keys) pairs.
        let mut produced: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();

        if bq.aggregated {
            self.run_aggregated(bq, &core_schema, outer, &ctx, &mut produced)?;
        } else {
            self.execute_core(&bq.core, outer, &mut |row| {
                let env = match outer {
                    Some(o) => Env::with_outer(&core_schema, row, o),
                    None => Env::new(&core_schema, row),
                };
                let mut out = Vec::with_capacity(bq.items.len());
                for item in &bq.items {
                    out.push(eval(&item.expr, &env, &ctx)?);
                }
                let keys = sort_keys(bq, &out, &env, &ctx, None)?;
                produced.push((out, keys));
                Ok(())
            })?;
        }

        finish_rows(bq, produced)
    }

    fn run_aggregated(
        &self,
        bq: &BoundQuery,
        core_schema: &Schema,
        outer: Option<&Env<'_>>,
        ctx: &EvalCtx<'_>,
        produced: &mut Vec<(Vec<Value>, Vec<Value>)>,
    ) -> EngineResult<()> {
        // Aggregates can appear in the select list, HAVING and ORDER BY.
        let mut agg_exprs: Vec<&Expr> = bq.items.iter().map(|i| &i.expr).collect();
        if let Some(h) = &bq.having {
            agg_exprs.push(h);
        }
        for (k, _) in &bq.order_by {
            agg_exprs.push(k);
        }
        let specs = collect_aggregates(&agg_exprs);
        let keys: Vec<String> = specs.iter().map(|s| s.key.clone()).collect();

        // Group state in first-seen order for deterministic output. Keys
        // are tagged byte encodings ([`value::encode_key`]) built in one
        // reused buffer — an owned copy exists only per distinct group.
        let mut group_index: HashMap<Vec<u8>, usize, FxBuild> = HashMap::default();
        let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
        let mut key_buf: Vec<u8> = Vec::new();

        self.execute_core(&bq.core, outer, &mut |row| {
            let env = match outer {
                Some(o) => Env::with_outer(core_schema, row, o),
                None => Env::new(core_schema, row),
            };
            key_buf.clear();
            for g in &bq.group_by {
                value::encode_key(&eval(g, &env, ctx)?, &mut key_buf)?;
            }
            let idx = match group_index.get(key_buf.as_slice()) {
                Some(&i) => i,
                None => {
                    let i = groups.len();
                    group_index.insert(key_buf.clone(), i);
                    groups.push((
                        row.to_vec(),
                        specs.iter().map(|s| Accumulator::new(s, MODE)).collect(),
                    ));
                    i
                }
            };
            let (_, accs) = &mut groups[idx];
            for (spec, acc) in specs.iter().zip(accs.iter_mut()) {
                match &spec.arg {
                    None => acc.update(None)?,
                    Some(arg) => {
                        let v = eval(arg, &env, ctx)?;
                        acc.update(Some(&v))?;
                    }
                }
            }
            Ok(())
        })?;

        // A global aggregate over zero rows still yields one group.
        if groups.is_empty() && bq.group_by.is_empty() {
            groups.push((
                vec![Value::Null; core_schema.len()],
                specs.iter().map(|s| Accumulator::new(s, MODE)).collect(),
            ));
        }

        for (rep_row, accs) in &groups {
            let values: Vec<Value> = accs.iter().map(|a| a.finish()).collect();
            let aggs = AggValues {
                keys: &keys,
                values: &values,
            };
            let env = match outer {
                Some(o) => Env::with_outer(core_schema, rep_row, o),
                None => Env::new(core_schema, rep_row),
            };
            let gctx = ctx.with_aggs(&aggs);
            if let Some(h) = &bq.having {
                if !eval_filter(h, &env, &gctx)? {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(bq.items.len());
            for item in &bq.items {
                out.push(eval(&item.expr, &env, &gctx)?);
            }
            let skeys = sort_keys(bq, &out, &env, &gctx, Some(&aggs))?;
            produced.push((out, skeys));
        }
        Ok(())
    }

    /// Morsel-parallel scan+filter front end: workers materialize and
    /// filter base-table rows per morsel; survivors feed the downstream
    /// single-threaded pipeline in morsel order — exactly the row order
    /// the sequential scan emits. Per-row predicate evaluation is order
    /// independent, so the float pipeline's fold order is untouched.
    /// Returns `false` when the shape or configuration keeps this on the
    /// sequential path.
    fn par_filter_scan(
        &self,
        input: &Plan,
        predicate: &Expr,
        outer: Option<&Env<'_>>,
        sink: &mut dyn FnMut(&[Value]) -> EngineResult<()>,
    ) -> EngineResult<bool> {
        let Plan::Scan { table, live, .. } = input else {
            return Ok(false);
        };
        let Some(counter) = self.used.handle() else {
            return Ok(false);
        };
        if morsel::effective_workers(self.threads) < 2
            || outer.is_some()
            || table.row_count() < morsel::MIN_PARALLEL_ROWS
            || !predicate.parallel_safe()
        {
            return Ok(false);
        }
        let schema = input.schema();
        // Slots the predicate actually reads. `parallel_safe` already
        // rejected subqueries, so `predicate.slots()` is the complete
        // read set; every other live column is materialized lazily, only
        // for rows that survive the filter.
        let needed: Vec<bool> = {
            let slots = predicate.slots();
            (0..schema.len()).map(|i| slots.contains(&i)).collect()
        };
        let ncols = live.len();
        let db = self.db;
        let budget = self.budget;
        let hash_joins = self.hash_joins;
        // This kernel bypasses `execute_core` for the scan child, so when
        // profiling each worker records the scan's share of the work in a
        // private shard (a `Profiler` is not `Sync`); the coordinator
        // merges the shards after the parallel region, in morsel order.
        let profiling = self.profiler.is_some();
        let scan_key = profile::node_key(input);
        let kept: Vec<(Vec<Vec<Value>>, Option<ProfileShard>)> =
            morsel::run_on_morsels(table.row_count(), self.threads, |range| {
                let w = RowExec::worker(db, budget, hash_joins, Arc::clone(&counter));
                let ctx = EvalCtx::new(&w, MODE);
                let mut rows = Vec::new();
                let mut row: Vec<Value> = Vec::with_capacity(ncols);
                // One charge per morsel, not per row: totals (and therefore
                // whether the budget trips) are identical to the sequential
                // per-row charges, without a contended atomic in the loop.
                w.charge(range.len() as u64)?;
                let scanned = range.len() as u64;
                let start = profiling.then(Instant::now);
                for i in range {
                    row.clear();
                    row.extend(live.iter().zip(&needed).map(
                        |(&ci, &n)| {
                            if n {
                                table.columns[ci].data.get(i)
                            } else {
                                Value::Null
                            }
                        },
                    ));
                    let env = Env::new(&schema, &row);
                    if eval_filter(predicate, &env, &ctx)? {
                        // Survivor: fill in the columns skipped above.
                        for (cell, (&ci, &n)) in
                            row.iter_mut().zip(live.iter().zip(&needed))
                        {
                            if !n {
                                *cell = table.columns[ci].data.get(i);
                            }
                        }
                        rows.push(std::mem::replace(&mut row, Vec::with_capacity(ncols)));
                    }
                }
                let shard = start.map(|t| {
                    let mut s = ProfileShard::new();
                    s.record(
                        scan_key,
                        NodeMetrics {
                            rows_in: scanned,
                            rows_out: scanned,
                            batches: 1,
                            nanos: t.elapsed().as_nanos() as u64,
                            ..NodeMetrics::default()
                        },
                    );
                    s
                });
                Ok((rows, shard))
            })?;
        for (rows, shard) in &kept {
            if let (Some(prof), Some(s)) = (&self.profiler, shard) {
                prof.absorb(s);
            }
            for row in rows {
                sink(row)?;
            }
        }
        Ok(true)
    }

    /// Push rows of the relational core through `sink`, recording
    /// per-node metrics when profiling is on. The off path is one branch
    /// and a tail call into [`Self::exec_node`].
    fn execute_core(
        &self,
        plan: &Plan,
        outer: Option<&Env<'_>>,
        sink: &mut dyn FnMut(&[Value]) -> EngineResult<()>,
    ) -> EngineResult<()> {
        let Some(prof) = &self.profiler else {
            return self.exec_node(plan, outer, sink);
        };
        let before = child_rows_out(prof, plan);
        let mut rows_out = 0u64;
        let start = Instant::now();
        self.exec_node(plan, outer, &mut |row| {
            rows_out += 1;
            sink(row)
        })?;
        let nanos = start.elapsed().as_nanos() as u64;
        let rows_in = match plan {
            Plan::Scan { table, .. } => table.row_count() as u64,
            Plan::Derived { .. } | Plan::Cte { .. } => rows_out,
            Plan::Filter { .. } | Plan::Join { .. } => child_rows_out(prof, plan) - before,
        };
        prof.record(
            profile::node_key(plan),
            NodeMetrics {
                rows_in,
                rows_out,
                batches: 1,
                nanos,
                ..NodeMetrics::default()
            },
        );
        Ok(())
    }

    /// The unprofiled node dispatch.
    fn exec_node(
        &self,
        plan: &Plan,
        outer: Option<&Env<'_>>,
        sink: &mut dyn FnMut(&[Value]) -> EngineResult<()>,
    ) -> EngineResult<()> {
        match plan {
            Plan::Scan { table, live, .. } => {
                // Every sink copies what it keeps, so one row buffer is
                // reused across the whole scan instead of a fresh
                // allocation per row. Only live (pruned) columns are
                // materialized.
                let mut row: Vec<Value> = Vec::with_capacity(live.len());
                for i in 0..table.row_count() {
                    self.charge(1)?;
                    row.clear();
                    row.extend(live.iter().map(|&ci| table.columns[ci].data.get(i)));
                    sink(&row)?;
                }
                Ok(())
            }
            Plan::Derived { query, .. } => {
                let rows = self.run_query(query, outer)?;
                for row in &rows {
                    self.charge(1)?;
                    sink(row)?;
                }
                Ok(())
            }
            Plan::Cte { name, .. } => {
                let rows = {
                    let frames = self.ctes.borrow();
                    frames
                        .iter()
                        .rev()
                        .find(|f| f.name == *name)
                        .map(|f| Rc::clone(&f.rows))
                        .ok_or_else(|| EngineError::UnknownTable(name.clone()))?
                };
                for row in rows.iter() {
                    self.charge(1)?;
                    sink(row)?;
                }
                Ok(())
            }
            Plan::Filter { input, predicate } => {
                if self.par_filter_scan(input, predicate, outer, sink)? {
                    return Ok(());
                }
                let schema = input.schema();
                let ctx = EvalCtx::new(self, MODE);
                self.execute_core(input, outer, &mut |row| {
                    let env = match outer {
                        Some(o) => Env::with_outer(&schema, row, o),
                        None => Env::new(&schema, row),
                    };
                    if eval_filter(predicate, &env, &ctx)? {
                        sink(row)?;
                    }
                    Ok(())
                })
            }
            Plan::Join {
                left,
                right,
                kind,
                equi,
                residual,
            } => self.execute_join(left, right, *kind, equi, residual.as_ref(), outer, sink),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_join(
        &self,
        left: &Plan,
        right: &Plan,
        kind: JoinKind,
        equi: &[(Expr, Expr)],
        residual: Option<&Expr>,
        outer: Option<&Env<'_>>,
        sink: &mut dyn FnMut(&[Value]) -> EngineResult<()>,
    ) -> EngineResult<()> {
        let left_schema = left.schema();
        let right_schema = right.schema();
        let mut combined = left_schema.clone();
        combined.extend(right_schema.iter().cloned());
        let ctx = EvalCtx::new(self, MODE);

        // Build side: materialize the right input.
        let mut right_rows: Vec<Vec<Value>> = Vec::new();
        self.execute_core(right, outer, &mut |row| {
            right_rows.push(row.to_vec());
            Ok(())
        })?;

        // Legacy mode: fold the equality keys back into the residual and
        // run the nested loop. Right-side key slots were bound against the
        // right schema; shift them into combined-row positions.
        let folded;
        let (equi, residual) = if self.hash_joins || equi.is_empty() {
            (equi, residual)
        } else {
            let eq_preds: Vec<Expr> = equi
                .iter()
                .map(|(l, r)| Expr::eq_pair(l.clone(), r.shifted(left_schema.len())))
                .chain(residual.cloned())
                .collect();
            folded = Expr::conjoin(eq_preds);
            (&[][..], folded.as_ref())
        };

        if equi.is_empty() {
            // Nested-loop (cross) join with optional residual.
            return self.execute_core(left, outer, &mut |lrow| {
                let mut matched = false;
                for rrow in &right_rows {
                    self.charge(1)?;
                    let mut row = lrow.to_vec();
                    row.extend(rrow.iter().cloned());
                    let keep = match residual {
                        Some(r) => {
                            let env = match outer {
                                Some(o) => Env::with_outer(&combined, &row, o),
                                None => Env::new(&combined, &row),
                            };
                            eval_filter(r, &env, &ctx)?
                        }
                        None => true,
                    };
                    if keep {
                        matched = true;
                        sink(&row)?;
                    }
                }
                if !matched && kind == JoinKind::LeftOuter {
                    let mut row = lrow.to_vec();
                    row.extend(std::iter::repeat_n(Value::Null, right_schema.len()));
                    sink(&row)?;
                }
                Ok(())
            });
        }

        // Hash join: build on right keys. Keys are tagged byte encodings
        // ([`value::encode_key`]) built in one reused scratch buffer — an
        // owned copy exists only per distinct key, not per row.
        let mut table: HashMap<Vec<u8>, Vec<usize>, FxBuild> = HashMap::default();
        let mut key_buf: Vec<u8> = Vec::new();
        for (i, rrow) in right_rows.iter().enumerate() {
            self.charge(1)?;
            let env = match outer {
                Some(o) => Env::with_outer(&right_schema, rrow, o),
                None => Env::new(&right_schema, rrow),
            };
            key_buf.clear();
            for (_, rexpr) in equi {
                value::encode_key(&eval(rexpr, &env, &ctx)?, &mut key_buf)?;
            }
            match table.get_mut(key_buf.as_slice()) {
                Some(list) => list.push(i),
                None => {
                    table.insert(key_buf.clone(), vec![i]);
                }
            }
        }

        self.execute_core(left, outer, &mut |lrow| {
            self.charge(1)?;
            let lenv = match outer {
                Some(o) => Env::with_outer(&left_schema, lrow, o),
                None => Env::new(&left_schema, lrow),
            };
            key_buf.clear();
            for (lexpr, _) in equi {
                value::encode_key(&eval(lexpr, &lenv, &ctx)?, &mut key_buf)?;
            }
            let mut matched = false;
            if let Some(candidates) = table.get(key_buf.as_slice()) {
                for &ri in candidates {
                    self.charge(1)?;
                    let mut row = lrow.to_vec();
                    row.extend(right_rows[ri].iter().cloned());
                    let keep = match residual {
                        Some(r) => {
                            let env = match outer {
                                Some(o) => Env::with_outer(&combined, &row, o),
                                None => Env::new(&combined, &row),
                            };
                            eval_filter(r, &env, &ctx)?
                        }
                        None => true,
                    };
                    if keep {
                        matched = true;
                        sink(&row)?;
                    }
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                let mut row = lrow.to_vec();
                row.extend(std::iter::repeat_n(Value::Null, right_schema.len()));
                sink(&row)?;
            }
            Ok(())
        })
    }
}

/// Cumulative profiled rows_out of a node's direct children — read before
/// and after an execution, the difference is the rows the node consumed
/// *this* time (stable under repeated executions of one bound tree).
fn child_rows_out(prof: &Profiler, plan: &Plan) -> u64 {
    match plan {
        Plan::Scan { .. } | Plan::Derived { .. } | Plan::Cte { .. } => 0,
        Plan::Filter { input, .. } => prof.rows_out_of(profile::node_key(&**input)),
        Plan::Join { left, right, .. } => {
            prof.rows_out_of(profile::node_key(&**left))
                + prof.rows_out_of(profile::node_key(&**right))
        }
    }
}

impl SubqueryRunner for RowExec<'_> {
    fn run_subquery(&self, q: &Query, outer: &Env<'_>) -> EngineResult<Vec<Vec<Value>>> {
        let id = q as *const Query as usize;
        // Fast path: known state.
        {
            let subs = self.subqueries.borrow();
            match subs.get(&id) {
                Some(SubState::Cached(rows)) => return Ok(rows.as_ref().clone()),
                Some(SubState::Correlated(bound)) => {
                    let bound = Rc::clone(bound);
                    drop(subs);
                    return self.run_query(&bound, Some(outer));
                }
                None => {}
            }
        }
        // First execution: decide correlated vs cached.
        let cte_scope: Vec<(String, Vec<(String, Ty)>)> = self
            .ctes
            .borrow()
            .iter()
            .map(|f| (f.name.clone(), f.cols.clone()))
            .collect();
        let bound = Rc::new(
            Planner::with_ctes(self.db, cte_scope)
                .with_rewrite(self.rewrite)
                .bind(q)?,
        );
        match self.run_query(&bound, None) {
            Ok(rows) => {
                let rows = Rc::new(rows);
                self.subqueries
                    .borrow_mut()
                    .insert(id, SubState::Cached(Rc::clone(&rows)));
                Ok(rows.as_ref().clone())
            }
            Err(EngineError::UnknownColumn(_)) => {
                // Columns resolve only through the outer row: correlated.
                self.subqueries
                    .borrow_mut()
                    .insert(id, SubState::Correlated(Rc::clone(&bound)));
                self.run_query(&bound, Some(outer))
            }
            Err(other) => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::tpch(0.001, 42)
    }

    fn run(db: &Database, sql: &str) -> (Vec<String>, Vec<Vec<Value>>) {
        RowExec::new(db, 50_000_000)
            .run_sql(sql)
            .unwrap_or_else(|e| panic!("{sql} failed: {e}"))
    }

    #[test]
    fn count_star() {
        let d = db();
        let (_, rows) = run(&d, "select count(*) from nation");
        assert!(matches!(rows[0][0], Value::Int(25)));
    }

    #[test]
    fn filter_and_projection() {
        let d = db();
        let (names, rows) = run(&d, "select n_name, n_regionkey from nation where n_name = 'BRAZIL'");
        assert_eq!(names, vec!["n_name", "n_regionkey"]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].to_string(), "BRAZIL");
        assert!(matches!(rows[0][1], Value::Int(1)));
    }

    #[test]
    fn equi_join() {
        let d = db();
        let (_, rows) = run(
            &d,
            "select n_name, r_name from nation, region \
             where n_regionkey = r_regionkey and r_name = 'EUROPE' order by n_name",
        );
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0].to_string(), "FRANCE");
        assert!(rows.iter().all(|r| r[1].to_string() == "EUROPE"));
    }

    #[test]
    fn group_by_with_aggregates() {
        let d = db();
        let (_, rows) = run(
            &d,
            "select n_regionkey, count(*) as n from nation group by n_regionkey order by n_regionkey",
        );
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| matches!(r[1], Value::Int(5))));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let d = db();
        let (_, rows) = run(
            &d,
            "select count(*), sum(n_nationkey) from nation where n_name = 'NOWHERE'",
        );
        assert_eq!(rows.len(), 1);
        assert!(matches!(rows[0][0], Value::Int(0)));
        assert!(rows[0][1].is_null());
    }

    #[test]
    fn order_by_alias_desc_and_limit() {
        let d = db();
        let (_, rows) = run(
            &d,
            "select n_name, n_nationkey as k from nation order by k desc limit 3",
        );
        assert_eq!(rows.len(), 3);
        assert!(matches!(rows[0][1], Value::Int(24)));
        assert!(matches!(rows[2][1], Value::Int(22)));
    }

    #[test]
    fn distinct_dedups() {
        let d = db();
        let (_, rows) = run(&d, "select distinct n_regionkey from nation");
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn having_filters_groups() {
        let d = db();
        let (_, rows) = run(
            &d,
            "select l_returnflag, count(*) from lineitem group by l_returnflag \
             having count(*) > 100 order by l_returnflag",
        );
        assert!(!rows.is_empty());
        for r in &rows {
            if let Value::Int(n) = r[1] {
                assert!(n > 100);
            } else {
                panic!("expected int count");
            }
        }
    }

    #[test]
    fn uncorrelated_scalar_subquery() {
        let d = db();
        let (_, rows) = run(
            &d,
            "select count(*) from supplier \
             where s_acctbal > (select avg(s_acctbal) from supplier)",
        );
        let Value::Int(n) = rows[0][0] else { panic!() };
        assert!(n > 0 && n < 10);
    }

    #[test]
    fn correlated_exists() {
        let d = db();
        let (_, rows) = run(
            &d,
            "select count(*) from orders where exists (
               select * from lineitem where l_orderkey = o_orderkey and l_quantity > 49)",
        );
        let Value::Int(n) = rows[0][0] else { panic!() };
        // ~2% of lineitems have quantity 50; some orders qualify.
        assert!(n > 0 && n < 1500, "{n}");
    }

    #[test]
    fn in_subquery() {
        let d = db();
        let (_, rows) = run(
            &d,
            "select count(*) from nation where n_regionkey in (
               select r_regionkey from region where r_name = 'ASIA' or r_name = 'AFRICA')",
        );
        assert!(matches!(rows[0][0], Value::Int(10)));
    }

    #[test]
    fn left_outer_join_pads_nulls() {
        let d = db();
        // Customers divisible by 3 have no orders; they must appear with
        // NULL order columns and count(o_orderkey) = 0.
        let (_, rows) = run(
            &d,
            "select c_custkey, count(o_orderkey) as n from customer \
             left outer join orders on c_custkey = o_custkey \
             group by c_custkey order by n, c_custkey limit 5",
        );
        assert!(matches!(rows[0][1], Value::Int(0)));
    }

    #[test]
    fn cte_materializes_and_joins() {
        let d = db();
        let (_, rows) = run(
            &d,
            "with big as (select l_orderkey, sum(l_quantity) as q from lineitem \
              group by l_orderkey having sum(l_quantity) > 150) \
             select count(*) from big",
        );
        let Value::Int(n) = rows[0][0] else { panic!() };
        assert!(n > 0, "some orders exceed 150 total quantity");
    }

    #[test]
    fn derived_table() {
        let d = db();
        let (_, rows) = run(
            &d,
            "select avg(n) from (select n_regionkey, count(*) as n from nation \
             group by n_regionkey) t",
        );
        assert!(matches!(rows[0][0], Value::Float(f) if (f - 5.0).abs() < 1e-9));
    }

    #[test]
    fn budget_aborts_runaway_cross_join() {
        let d = db();
        let exec = RowExec::new(&d, 10_000);
        let err = exec
            .run_sql("select count(*) from lineitem, lineitem l2")
            .unwrap_err();
        assert!(matches!(err, EngineError::Budget(_)));
    }

    #[test]
    fn unknown_column_reported() {
        let d = db();
        let err = RowExec::new(&d, 1_000_000)
            .run_sql("select bogus from nation")
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownColumn(_)));
    }

    #[test]
    fn q1_shape() {
        let d = db();
        let (names, rows) = run(&d, sqalpel_sql::tpch::Q1);
        assert_eq!(names.len(), 10);
        // Four (returnflag, linestatus) groups at any reasonable SF.
        assert!(rows.len() >= 3 && rows.len() <= 4, "{} groups", rows.len());
        // sum_qty positive everywhere.
        assert!(rows.iter().all(|r| r[2].as_f64().unwrap() > 0.0));
    }

    #[test]
    fn q6_revenue() {
        let d = db();
        let (_, rows) = run(&d, sqalpel_sql::tpch::Q6);
        assert_eq!(rows.len(), 1);
        assert!(rows[0][0].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn q3_top_orders() {
        let d = db();
        let (_, rows) = run(&d, sqalpel_sql::tpch::Q3);
        assert!(rows.len() <= 10);
        // Revenue is sorted descending.
        let revs: Vec<f64> = rows.iter().map(|r| r[1].as_f64().unwrap()).collect();
        assert!(revs.windows(2).all(|w| w[0] >= w[1]));
    }
}
