//! Columnar storage shared by both engines.
//!
//! A [`Database`] is a set of [`Table`]s; each table stores its columns as
//! typed vectors ([`ColumnData`]). The row engine reads values cell by
//! cell; the column engine borrows whole columns. Loaders build databases
//! from the `sqalpel-datagen` generators.

use crate::error::{EngineError, EngineResult};
use crate::value::{Day, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Rows per storage chunk. Zone maps are computed at this granularity and
/// the morsel scheduler slices scans at the same boundary
/// ([`crate::morsel::MORSEL_ROWS`] is defined as this constant), so a
/// zone-map decision always covers exactly one morsel.
pub const CHUNK_ROWS: usize = 4096;

/// Column types understood by the storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Int,
    /// Fixed-point decimal with the given scale.
    Decimal(u8),
    Str,
    Date,
    Float,
}

/// A frame-of-reference bit-packed integer vector. Each [`CHUNK_ROWS`]
/// chunk stores its minimum as the frame and packs `value - min` into
/// `bits`-wide little-endian lanes, so a cell read is a shift and a mask
/// and the per-chunk bounds double as the zone map.
#[derive(Debug, Clone)]
pub struct ForVec {
    len: usize,
    chunks: Vec<ForChunk>,
}

#[derive(Debug, Clone)]
struct ForChunk {
    min: i64,
    max: i64,
    bits: u32,
    words: Vec<u64>,
}

impl ForChunk {
    fn encode(values: &[i64]) -> ForChunk {
        let min = values.iter().copied().min().unwrap_or(0);
        let max = values.iter().copied().max().unwrap_or(0);
        let span = (max as i128 - min as i128) as u64;
        let bits = 64 - span.leading_zeros();
        let mut words = vec![0u64; (values.len() * bits as usize).div_ceil(64)];
        if bits > 0 {
            for (i, &v) in values.iter().enumerate() {
                let delta = (v as i128 - min as i128) as u64;
                let bit = i * bits as usize;
                let (word, off) = (bit / 64, (bit % 64) as u32);
                words[word] |= delta << off;
                if off + bits > 64 {
                    words[word + 1] |= delta >> (64 - off);
                }
            }
        }
        ForChunk {
            min,
            max,
            bits,
            words,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> i64 {
        if self.bits == 0 {
            return self.min;
        }
        let bit = i * self.bits as usize;
        let (word, off) = (bit / 64, (bit % 64) as u32);
        let mut delta = self.words[word] >> off;
        if off + self.bits > 64 {
            delta |= self.words[word + 1] << (64 - off);
        }
        let mask = if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        };
        (self.min as i128 + (delta & mask) as i128) as i64
    }
}

impl ForVec {
    pub fn encode(values: &[i64]) -> ForVec {
        ForVec {
            len: values.len(),
            chunks: values.chunks(CHUNK_ROWS).map(ForChunk::encode).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Packed payload size in bytes (frames excluded) — the compression
    /// decision in [`int_col`]/[`date_col`] compares this to raw storage.
    pub fn packed_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.words.len() * 8).sum()
    }

    #[inline]
    pub fn get(&self, idx: usize) -> i64 {
        self.chunks[idx / CHUNK_ROWS].get(idx % CHUNK_ROWS)
    }

    /// Decode `range` (must lie within one chunk or span whole chunks)
    /// by appending onto `out`.
    pub fn decode_range(&self, range: std::ops::Range<usize>, out: &mut Vec<i64>) {
        out.reserve(range.len());
        for idx in range {
            out.push(self.get(idx));
        }
    }

    pub fn decode(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.len);
        self.decode_range(0..self.len, &mut out);
        out
    }

    /// Per-chunk `(min, max)` bounds — free zone-map material.
    pub fn chunk_bounds(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        self.chunks.iter().map(|c| (c.min, c.max))
    }
}

/// A typed column vector.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Int(Vec<i64>),
    /// `raw / 10^scale`.
    Decimal { raw: Vec<i64>, scale: u8 },
    Str(Vec<String>),
    Date(Vec<Day>),
    Float(Vec<f64>),
    /// Dictionary-encoded strings: `dict` is sorted and deduplicated, so
    /// code order equals lexicographic string order and range predicates
    /// can compare codes directly.
    Dict {
        codes: Vec<u32>,
        dict: Arc<Vec<String>>,
    },
    /// Frame-of-reference bit-packed integers.
    ForInt(ForVec),
    /// Frame-of-reference bit-packed dates (days since epoch).
    ForDate(ForVec),
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Decimal { raw, .. } => raw.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Dict { codes, .. } => codes.len(),
            ColumnData::ForInt(v) | ColumnData::ForDate(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn column_type(&self) -> ColumnType {
        match self {
            ColumnData::Int(_) | ColumnData::ForInt(_) => ColumnType::Int,
            ColumnData::Decimal { scale, .. } => ColumnType::Decimal(*scale),
            ColumnData::Str(_) | ColumnData::Dict { .. } => ColumnType::Str,
            ColumnData::Date(_) | ColumnData::ForDate(_) => ColumnType::Date,
            ColumnData::Float(_) => ColumnType::Float,
        }
    }

    /// Read one cell as a [`Value`] (allocates for strings).
    pub fn get(&self, idx: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[idx]),
            ColumnData::Decimal { raw, scale } => Value::Decimal {
                raw: raw[idx] as i128,
                scale: *scale,
            },
            ColumnData::Str(v) => Value::Str(v[idx].clone()),
            ColumnData::Date(v) => Value::Date(v[idx]),
            ColumnData::Float(v) => Value::Float(v[idx]),
            ColumnData::Dict { codes, dict } => Value::Str(dict[codes[idx] as usize].clone()),
            ColumnData::ForInt(v) => Value::Int(v.get(idx)),
            ColumnData::ForDate(v) => Value::Date(v.get(idx) as Day),
        }
    }

    /// Per-chunk `(min, max)` zone bounds in the column's raw i64 domain
    /// (value for ints, day for dates, raw for decimals, code for dicts).
    /// `None` for types zone maps cannot order (floats, raw strings).
    fn zone_map(&self) -> Option<ZoneMap> {
        fn bounds<T: Copy, F: Fn(T) -> i64>(vals: &[T], f: F) -> ZoneMap {
            let mut zm = ZoneMap::default();
            for chunk in vals.chunks(CHUNK_ROWS) {
                let mut min = i64::MAX;
                let mut max = i64::MIN;
                for &v in chunk {
                    let x = f(v);
                    min = min.min(x);
                    max = max.max(x);
                }
                zm.mins.push(min);
                zm.maxs.push(max);
            }
            zm
        }
        match self {
            ColumnData::Int(v) => Some(bounds(v, |x| x)),
            ColumnData::Decimal { raw, .. } => Some(bounds(raw, |x| x)),
            ColumnData::Date(v) => Some(bounds(v, |x| x as i64)),
            ColumnData::Dict { codes, .. } => Some(bounds(codes, |x| x as i64)),
            ColumnData::ForInt(v) | ColumnData::ForDate(v) => {
                let mut zm = ZoneMap::default();
                for (min, max) in v.chunk_bounds() {
                    zm.mins.push(min);
                    zm.maxs.push(max);
                }
                Some(zm)
            }
            ColumnData::Str(_) | ColumnData::Float(_) => None,
        }
    }
}

/// Per-chunk min/max bounds for one column, in the column's raw i64
/// domain. Empty chunks never occur: chunk `i` covers rows
/// `[i * CHUNK_ROWS, min((i + 1) * CHUNK_ROWS, rows))`.
#[derive(Debug, Clone, Default)]
pub struct ZoneMap {
    pub mins: Vec<i64>,
    pub maxs: Vec<i64>,
}

impl ZoneMap {
    /// Could any row of chunk `chunk` satisfy `value ∈ [lo, hi]`?
    #[inline]
    pub fn overlaps(&self, chunk: usize, lo: Option<i64>, hi: Option<i64>) -> bool {
        lo.is_none_or(|lo| self.maxs[chunk] >= lo) && hi.is_none_or(|hi| self.mins[chunk] <= hi)
    }
}

/// A named column.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub data: ColumnData,
}

/// A stored table.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    rows: usize,
    /// Per-column zone maps, parallel to `columns` (`None` where the
    /// column type has no zone-map order).
    zones: Vec<Option<ZoneMap>>,
    /// Per-column optimizer statistics, parallel to `columns`.
    stats: Vec<crate::ir::stats::ColStats>,
}

impl Table {
    /// Build a table, checking that all columns have equal length.
    /// Zone maps and optimizer statistics (min/max + NDV sketches) are
    /// computed here, once, for every column.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> EngineResult<Table> {
        let name = name.into();
        let rows = columns.first().map_or(0, |c| c.data.len());
        for c in &columns {
            if c.data.len() != rows {
                return Err(EngineError::Type(format!(
                    "column {} has {} rows, expected {rows}",
                    c.name,
                    c.data.len()
                )));
            }
        }
        let zones = columns.iter().map(|c| c.data.zone_map()).collect();
        let stats = columns
            .iter()
            .map(|c| crate::ir::stats::collect(&c.data))
            .collect();
        Ok(Table {
            name,
            columns,
            rows,
            zones,
            stats,
        })
    }

    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of [`CHUNK_ROWS`] storage chunks.
    pub fn chunk_count(&self) -> usize {
        self.rows.div_ceil(CHUNK_ROWS)
    }

    /// The zone map for column `ci`, if its type supports one.
    pub fn zone_map(&self, ci: usize) -> Option<&ZoneMap> {
        self.zones.get(ci).and_then(|z| z.as_ref())
    }

    /// The optimizer statistics for column `ci`.
    pub fn col_stats(&self, ci: usize) -> Option<&crate::ir::stats::ColStats> {
        self.stats.get(ci)
    }

    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }
}

/// An in-memory database: the catalog both engines execute against.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, Arc<Table>>,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), Arc::new(table));
    }

    pub fn table(&self, name: &str) -> EngineResult<&Arc<Table>> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.row_count()).sum()
    }

    /// Load a TPC-H database at the given scale factor and seed.
    pub fn tpch(sf: f64, seed: u64) -> Database {
        let data = sqalpel_datagen::TpchGen::new(sf, seed).generate();
        Database::from_tpch_data(&data)
    }

    /// Load from already-generated TPC-H data.
    pub fn from_tpch_data(d: &sqalpel_datagen::TpchData) -> Database {
        let mut db = Database::new();

        db.add_table(
            Table::new(
                "region",
                vec![
                    int_col("r_regionkey", d.region.iter().map(|r| r.r_regionkey)),
                    str_col("r_name", d.region.iter().map(|r| r.r_name.clone())),
                    str_col("r_comment", d.region.iter().map(|r| r.r_comment.clone())),
                ],
            )
            .expect("region columns"),
        );

        db.add_table(
            Table::new(
                "nation",
                vec![
                    int_col("n_nationkey", d.nation.iter().map(|n| n.n_nationkey)),
                    str_col("n_name", d.nation.iter().map(|n| n.n_name.clone())),
                    int_col("n_regionkey", d.nation.iter().map(|n| n.n_regionkey)),
                    str_col("n_comment", d.nation.iter().map(|n| n.n_comment.clone())),
                ],
            )
            .expect("nation columns"),
        );

        db.add_table(
            Table::new(
                "supplier",
                vec![
                    int_col("s_suppkey", d.supplier.iter().map(|s| s.s_suppkey)),
                    str_col("s_name", d.supplier.iter().map(|s| s.s_name.clone())),
                    str_col("s_address", d.supplier.iter().map(|s| s.s_address.clone())),
                    int_col("s_nationkey", d.supplier.iter().map(|s| s.s_nationkey)),
                    str_col("s_phone", d.supplier.iter().map(|s| s.s_phone.clone())),
                    dec_col("s_acctbal", d.supplier.iter().map(|s| s.s_acctbal), 2),
                    str_col("s_comment", d.supplier.iter().map(|s| s.s_comment.clone())),
                ],
            )
            .expect("supplier columns"),
        );

        db.add_table(
            Table::new(
                "part",
                vec![
                    int_col("p_partkey", d.part.iter().map(|p| p.p_partkey)),
                    str_col("p_name", d.part.iter().map(|p| p.p_name.clone())),
                    str_col("p_mfgr", d.part.iter().map(|p| p.p_mfgr.clone())),
                    str_col("p_brand", d.part.iter().map(|p| p.p_brand.clone())),
                    str_col("p_type", d.part.iter().map(|p| p.p_type.clone())),
                    int_col("p_size", d.part.iter().map(|p| p.p_size)),
                    str_col("p_container", d.part.iter().map(|p| p.p_container.clone())),
                    dec_col("p_retailprice", d.part.iter().map(|p| p.p_retailprice), 2),
                    str_col("p_comment", d.part.iter().map(|p| p.p_comment.clone())),
                ],
            )
            .expect("part columns"),
        );

        db.add_table(
            Table::new(
                "partsupp",
                vec![
                    int_col("ps_partkey", d.partsupp.iter().map(|p| p.ps_partkey)),
                    int_col("ps_suppkey", d.partsupp.iter().map(|p| p.ps_suppkey)),
                    int_col("ps_availqty", d.partsupp.iter().map(|p| p.ps_availqty)),
                    dec_col("ps_supplycost", d.partsupp.iter().map(|p| p.ps_supplycost), 2),
                    str_col("ps_comment", d.partsupp.iter().map(|p| p.ps_comment.clone())),
                ],
            )
            .expect("partsupp columns"),
        );

        db.add_table(
            Table::new(
                "customer",
                vec![
                    int_col("c_custkey", d.customer.iter().map(|c| c.c_custkey)),
                    str_col("c_name", d.customer.iter().map(|c| c.c_name.clone())),
                    str_col("c_address", d.customer.iter().map(|c| c.c_address.clone())),
                    int_col("c_nationkey", d.customer.iter().map(|c| c.c_nationkey)),
                    str_col("c_phone", d.customer.iter().map(|c| c.c_phone.clone())),
                    dec_col("c_acctbal", d.customer.iter().map(|c| c.c_acctbal), 2),
                    str_col("c_mktsegment", d.customer.iter().map(|c| c.c_mktsegment.clone())),
                    str_col("c_comment", d.customer.iter().map(|c| c.c_comment.clone())),
                ],
            )
            .expect("customer columns"),
        );

        db.add_table(
            Table::new(
                "orders",
                vec![
                    int_col("o_orderkey", d.orders.iter().map(|o| o.o_orderkey)),
                    int_col("o_custkey", d.orders.iter().map(|o| o.o_custkey)),
                    str_col("o_orderstatus", d.orders.iter().map(|o| o.o_orderstatus.clone())),
                    dec_col("o_totalprice", d.orders.iter().map(|o| o.o_totalprice), 2),
                    date_col("o_orderdate", d.orders.iter().map(|o| o.o_orderdate)),
                    str_col(
                        "o_orderpriority",
                        d.orders.iter().map(|o| o.o_orderpriority.clone()),
                    ),
                    str_col("o_clerk", d.orders.iter().map(|o| o.o_clerk.clone())),
                    int_col("o_shippriority", d.orders.iter().map(|o| o.o_shippriority)),
                    str_col("o_comment", d.orders.iter().map(|o| o.o_comment.clone())),
                ],
            )
            .expect("orders columns"),
        );

        // Cluster the fact table on its dominant range-filter column
        // before chunking. Same multiset of rows, but each chunk now
        // covers a narrow shipdate band, so zone maps can prune
        // date-range scans (TPC-H Q6) instead of touching every chunk.
        // Ties break on (orderkey, linenumber) to keep the layout
        // deterministic for a given generator seed.
        let mut lineitem: Vec<&sqalpel_datagen::tpch::LineItem> = d.lineitem.iter().collect();
        lineitem.sort_by_key(|l| (l.l_shipdate, l.l_orderkey, l.l_linenumber));

        db.add_table(
            Table::new(
                "lineitem",
                vec![
                    int_col("l_orderkey", lineitem.iter().map(|l| l.l_orderkey)),
                    int_col("l_partkey", lineitem.iter().map(|l| l.l_partkey)),
                    int_col("l_suppkey", lineitem.iter().map(|l| l.l_suppkey)),
                    int_col("l_linenumber", lineitem.iter().map(|l| l.l_linenumber)),
                    int_col("l_quantity", lineitem.iter().map(|l| l.l_quantity)),
                    dec_col(
                        "l_extendedprice",
                        lineitem.iter().map(|l| l.l_extendedprice),
                        2,
                    ),
                    dec_col("l_discount", lineitem.iter().map(|l| l.l_discount), 2),
                    dec_col("l_tax", lineitem.iter().map(|l| l.l_tax), 2),
                    str_col("l_returnflag", lineitem.iter().map(|l| l.l_returnflag.clone())),
                    str_col("l_linestatus", lineitem.iter().map(|l| l.l_linestatus.clone())),
                    date_col("l_shipdate", lineitem.iter().map(|l| l.l_shipdate)),
                    date_col("l_commitdate", lineitem.iter().map(|l| l.l_commitdate)),
                    date_col("l_receiptdate", lineitem.iter().map(|l| l.l_receiptdate)),
                    str_col(
                        "l_shipinstruct",
                        lineitem.iter().map(|l| l.l_shipinstruct.clone()),
                    ),
                    str_col("l_shipmode", lineitem.iter().map(|l| l.l_shipmode.clone())),
                    str_col("l_comment", lineitem.iter().map(|l| l.l_comment.clone())),
                ],
            )
            .expect("lineitem columns"),
        );

        db
    }

    /// Load a TPC-H + SSB database (adds `date_dim` and `lineorder`).
    pub fn ssb(sf: f64, seed: u64) -> Database {
        let data = sqalpel_datagen::TpchGen::new(sf, seed).generate();
        let ssb = sqalpel_datagen::ssb::from_tpch(&data);
        let mut db = Database::from_tpch_data(&data);
        db.add_table(
            Table::new(
                "date_dim",
                vec![
                    date_col("d_datekey", ssb.date_dim.iter().map(|d| d.d_datekey)),
                    str_col("d_date", ssb.date_dim.iter().map(|d| d.d_date.clone())),
                    int_col("d_year", ssb.date_dim.iter().map(|d| d.d_year)),
                    int_col("d_month", ssb.date_dim.iter().map(|d| d.d_month)),
                    int_col("d_yearmonthnum", ssb.date_dim.iter().map(|d| d.d_yearmonthnum)),
                    int_col("d_weeknuminyear", ssb.date_dim.iter().map(|d| d.d_weeknuminyear)),
                    str_col(
                        "d_sellingseason",
                        ssb.date_dim.iter().map(|d| d.d_sellingseason.clone()),
                    ),
                ],
            )
            .expect("date_dim columns"),
        );
        // Same load-time clustering as lineitem: order the fact table by
        // its date column so zone maps can prune year/range scans.
        let mut lineorder: Vec<&sqalpel_datagen::ssb::LineOrder> = ssb.lineorder.iter().collect();
        lineorder.sort_by_key(|l| (l.lo_orderdate, l.lo_orderkey, l.lo_linenumber));
        db.add_table(
            Table::new(
                "lineorder",
                vec![
                    int_col("lo_orderkey", lineorder.iter().map(|l| l.lo_orderkey)),
                    int_col("lo_linenumber", lineorder.iter().map(|l| l.lo_linenumber)),
                    int_col("lo_custkey", lineorder.iter().map(|l| l.lo_custkey)),
                    int_col("lo_partkey", lineorder.iter().map(|l| l.lo_partkey)),
                    int_col("lo_suppkey", lineorder.iter().map(|l| l.lo_suppkey)),
                    date_col("lo_orderdate", lineorder.iter().map(|l| l.lo_orderdate)),
                    str_col(
                        "lo_orderpriority",
                        lineorder.iter().map(|l| l.lo_orderpriority.clone()),
                    ),
                    int_col("lo_quantity", lineorder.iter().map(|l| l.lo_quantity)),
                    dec_col(
                        "lo_extendedprice",
                        lineorder.iter().map(|l| l.lo_extendedprice),
                        2,
                    ),
                    dec_col("lo_discount", lineorder.iter().map(|l| l.lo_discount), 2),
                    dec_col("lo_revenue", lineorder.iter().map(|l| l.lo_revenue), 2),
                    dec_col("lo_supplycost", lineorder.iter().map(|l| l.lo_supplycost), 2),
                ],
            )
            .expect("lineorder columns"),
        );
        db
    }

    /// Load the synthetic airtraffic database (`ontime` table).
    pub fn airtraffic(flights_per_day: usize, year: i32, seed: u64) -> Database {
        let flights = sqalpel_datagen::airtraffic::AirTrafficGen::new(flights_per_day, year, seed)
            .generate();
        let mut db = Database::new();
        db.add_table(
            Table::new(
                "ontime",
                vec![
                    date_col("flightdate", flights.iter().map(|f| f.flightdate)),
                    str_col("carrier", flights.iter().map(|f| f.carrier.clone())),
                    int_col("flightnum", flights.iter().map(|f| f.flightnum)),
                    str_col("origin", flights.iter().map(|f| f.origin.clone())),
                    str_col("dest", flights.iter().map(|f| f.dest.clone())),
                    int_col("depdelay", flights.iter().map(|f| f.depdelay)),
                    int_col("arrdelay", flights.iter().map(|f| f.arrdelay)),
                    int_col("distance", flights.iter().map(|f| f.distance)),
                    int_col("cancelled", flights.iter().map(|f| f.cancelled as i64)),
                ],
            )
            .expect("ontime columns"),
        );
        db
    }
}

/// Dictionary-encode when the column is low-NDV enough for codes to pay
/// off: at most this many distinct values.
const DICT_MAX_NDV: usize = 1024;

/// Keep a frame-of-reference encoding only when it actually compresses:
/// packed payload under 3/4 of the raw width.
fn for_profitable(packed: &ForVec, raw_bytes: usize) -> bool {
    packed.packed_bytes() * 4 < raw_bytes * 3
}

/// Dictionary-encode `values` if the distinct count is small; the
/// dictionary is sorted so code order is string order.
pub fn dict_encode(values: &[String]) -> Option<(Vec<u32>, Arc<Vec<String>>)> {
    let mut dict: Vec<String> = values.to_vec();
    dict.sort_unstable();
    dict.dedup();
    if dict.is_empty() || dict.len() > DICT_MAX_NDV {
        return None;
    }
    let codes = values
        .iter()
        .map(|v| dict.binary_search(v).expect("dict covers values") as u32)
        .collect();
    Some((codes, Arc::new(dict)))
}

/// Helper: integer column from an iterator. Frame-of-reference packs the
/// values when the packed form is materially smaller than raw `i64`s.
pub fn int_col(name: &str, values: impl Iterator<Item = i64>) -> Column {
    let values: Vec<i64> = values.collect();
    let packed = ForVec::encode(&values);
    let data = if for_profitable(&packed, values.len() * 8) {
        ColumnData::ForInt(packed)
    } else {
        ColumnData::Int(values)
    };
    Column {
        name: name.to_string(),
        data,
    }
}

/// Helper: decimal column from raw fixed-point values.
pub fn dec_col(name: &str, values: impl Iterator<Item = i64>, scale: u8) -> Column {
    Column {
        name: name.to_string(),
        data: ColumnData::Decimal {
            raw: values.collect(),
            scale,
        },
    }
}

/// Helper: string column. Low-NDV columns (`l_returnflag`, `l_shipmode`,
/// nation/region names, …) come out dictionary-encoded; high-NDV columns
/// stay as raw strings.
pub fn str_col(name: &str, values: impl Iterator<Item = String>) -> Column {
    let values: Vec<String> = values.collect();
    let data = match dict_encode(&values) {
        Some((codes, dict)) => ColumnData::Dict { codes, dict },
        None => ColumnData::Str(values),
    };
    Column {
        name: name.to_string(),
        data,
    }
}

/// Helper: string column that is never dictionary-encoded (benchmarks
/// compare dict and raw predicate paths on identical data).
pub fn raw_str_col(name: &str, values: impl Iterator<Item = String>) -> Column {
    Column {
        name: name.to_string(),
        data: ColumnData::Str(values.collect()),
    }
}

/// Helper: date column, frame-of-reference packed when profitable (dates
/// cluster in a few thousand distinct days, so they almost always are).
pub fn date_col(name: &str, values: impl Iterator<Item = Day>) -> Column {
    let values: Vec<i64> = values.map(|d| d as i64).collect();
    let packed = ForVec::encode(&values);
    let data = if for_profitable(&packed, values.len() * 4) {
        ColumnData::ForDate(packed)
    } else {
        ColumnData::Date(values.into_iter().map(|v| v as Day).collect())
    };
    Column {
        name: name.to_string(),
        data,
    }
}

/// Helper: float column.
pub fn float_col(name: &str, values: impl Iterator<Item = f64>) -> Column {
    Column {
        name: name.to_string(),
        data: ColumnData::Float(values.collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatched_column_lengths_rejected() {
        let t = Table::new(
            "t",
            vec![
                int_col("a", [1, 2, 3].into_iter()),
                int_col("b", [1, 2].into_iter()),
            ],
        );
        assert!(t.is_err());
    }

    #[test]
    fn tpch_database_has_all_tables() {
        let db = Database::tpch(0.001, 42);
        assert_eq!(
            db.table_names(),
            vec![
                "customer", "lineitem", "nation", "orders", "part", "partsupp", "region",
                "supplier"
            ]
        );
        assert_eq!(db.table("nation").unwrap().row_count(), 25);
        assert_eq!(db.table("lineitem").unwrap().columns.len(), 16);
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::tpch(0.001, 42);
        assert!(matches!(
            db.table("nonexistent"),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn cell_access_types() {
        let db = Database::tpch(0.001, 42);
        let li = db.table("lineitem").unwrap();
        let price = li.column("l_extendedprice").unwrap();
        assert!(matches!(price.data.get(0), Value::Decimal { scale: 2, .. }));
        let ship = li.column("l_shipdate").unwrap();
        assert!(matches!(ship.data.get(0), Value::Date(_)));
        let flag = li.column("l_returnflag").unwrap();
        assert!(matches!(flag.data.get(0), Value::Str(_)));
    }

    #[test]
    fn ssb_database_adds_star_tables() {
        let db = Database::ssb(0.001, 42);
        assert!(db.table("lineorder").is_ok());
        assert!(db.table("date_dim").is_ok());
        assert_eq!(db.table("date_dim").unwrap().row_count(), 2557);
    }

    #[test]
    fn airtraffic_database() {
        let db = Database::airtraffic(5, 2015, 9);
        let t = db.table("ontime").unwrap();
        assert_eq!(t.row_count(), 5 * 365);
        assert!(t.column("carrier").is_some());
    }

    #[test]
    fn column_lookup() {
        let db = Database::tpch(0.001, 42);
        let n = db.table("nation").unwrap();
        assert_eq!(n.column_index("n_name"), Some(1));
        assert_eq!(n.column_index("bogus"), None);
        assert_eq!(n.column_names().count(), 4);
    }
}
