//! # sqalpel-engine
//!
//! Two in-memory SQL engines over shared columnar storage — the *target
//! systems* that the sqalpel platform benchmarks discriminatively.
//!
//! | system | execution model | arithmetic | joins |
//! |---|---|---|---|
//! | [`RowStore`] 2.0 | tuple-at-a-time, pipelined | `f64`, unguarded | hash |
//! | [`RowStore`] 1.4 | tuple-at-a-time, pipelined | `f64`, unguarded | nested loop |
//! | [`ColStore`] 5.1 | column-at-a-time, fully materialized | `i128` fixed-point, overflow-guarded | hash |
//!
//! The engines share a SQL front-end ([`sqalpel_sql`]), storage
//! ([`storage`]), a deterministic planner ([`plan`]) and row-level
//! semantics ([`eval`]), so answers agree to floating-point tolerance —
//! but their *cost models* differ exactly where real row stores and
//! column stores (the paper's MonetDB) differ, which is what makes
//! discriminative queries exist.
//!
//! ```
//! use sqalpel_engine::{ColStore, Database, Dbms, RowStore};
//! use std::sync::Arc;
//!
//! let db = Arc::new(Database::tpch(0.001, 42));
//! let row = RowStore::new(db.clone());
//! let col = ColStore::new(db);
//! let sql = "select count(*) from lineitem where l_quantity < 24";
//! let a = row.execute(sql).unwrap();
//! let b = col.execute(sql).unwrap();
//! assert!(a.approx_eq(&b, 1e-9));
//! ```

pub mod codec;
pub mod dbms;
pub mod error;
pub mod eval;
pub mod exec_col;
pub mod exec_row;
pub mod ir;
pub mod morsel;
pub mod output;
pub mod plan;
pub mod plan_cache;
pub mod profile;
pub mod result;
pub mod storage;
pub mod value;

pub use dbms::{AnalyzedPlan, ColStore, Dbms, OpProfile, RowStore, DEFAULT_BUDGET};
pub use error::{EngineError, EngineResult};
pub use ir::Explain;
pub use plan_cache::{CacheOutcome, FpExecution, PlanCache, PlanCacheStats};
pub use profile::{NodeMetrics, ProfileShard, Profiler};
pub use result::ResultSet;
pub use storage::{Database, Table};
pub use value::Value;
