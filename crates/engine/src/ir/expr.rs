//! The typed expression IR: slot-resolved column references, inferred
//! types, and a canonical rendering used for aggregate keys, duplicate
//! elimination and plan fingerprints.

use sqalpel_sql::ast::{self, BinOp, ColumnRef, IntervalUnit, Literal, UnaryOp};
use std::fmt;

/// Inferred expression / column type. `Unknown` is a honest "cannot tell
/// statically" (scalar subqueries, NULL literals, mixed CASE arms); the
/// engines remain dynamically typed at evaluation time, so `Unknown` only
/// costs rewrite opportunities, never correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    Int,
    Float,
    Decimal,
    Str,
    Date,
    Bool,
    Interval,
    Unknown,
}

impl Ty {
    pub fn name(self) -> &'static str {
        match self {
            Ty::Int => "int",
            Ty::Float => "float",
            Ty::Decimal => "decimal",
            Ty::Str => "varchar",
            Ty::Date => "date",
            Ty::Bool => "bool",
            Ty::Interval => "interval",
            Ty::Unknown => "?",
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A bound expression. Mirrors the AST shape (so lowering is structural),
/// but every name has been resolved at bind time:
///
/// * [`Expr::Col`] — a slot in the schema of the plan node this expression
///   is evaluated against;
/// * [`Expr::Outer`] — a reference that did not resolve locally and climbs
///   the runtime environment chain (correlation);
/// * [`Expr::OutputCol`] — an `ORDER BY` alias referencing a projected
///   output column by position;
/// * subqueries stay opaque AST ([`ast::Query`]) and are bound lazily at
///   runtime against the environment that first evaluates them, preserving
///   the engines' correlation detection.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Col { slot: usize, ty: Ty },
    Outer(ColumnRef),
    OutputCol(usize),
    Literal(Literal),
    /// A folded boolean constant (produced by the rewriter only).
    Bool(bool),
    Unary { op: UnaryOp, expr: Box<Expr> },
    Binary { left: Box<Expr>, op: BinOp, right: Box<Expr> },
    Between { expr: Box<Expr>, negated: bool, low: Box<Expr>, high: Box<Expr> },
    InList { expr: Box<Expr>, negated: bool, list: Vec<Expr> },
    InSubquery { expr: Box<Expr>, negated: bool, query: Box<ast::Query> },
    Exists { negated: bool, query: Box<ast::Query> },
    Like { expr: Box<Expr>, negated: bool, pattern: Box<Expr> },
    IsNull { expr: Box<Expr>, negated: bool },
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_branch: Option<Box<Expr>>,
    },
    Function { name: String, distinct: bool, args: Vec<Expr> },
    Extract { field: IntervalUnit, expr: Box<Expr> },
    Substring { expr: Box<Expr>, start: Box<Expr>, length: Option<Box<Expr>> },
    Subquery(Box<ast::Query>),
    Wildcard,
}

impl Expr {
    pub fn eq_pair(left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op: BinOp::Eq,
            right: Box::new(right),
        }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op: BinOp::And,
            right: Box::new(right),
        }
    }

    /// Left-fold a conjunction, mirroring `ast::Expr::conjoin`.
    pub fn conjoin(preds: Vec<Expr>) -> Option<Expr> {
        let mut it = preds.into_iter();
        let first = it.next()?;
        Some(it.fold(first, Expr::and))
    }

    /// Split nested `AND`s into a flat conjunct list.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary { left, op: BinOp::And, right } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Pre-order traversal. Like the AST's `visit`, subquery *bodies* are
    /// not descended into (they live in a different scope).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Col { .. }
            | Expr::Outer(_)
            | Expr::OutputCol(_)
            | Expr::Literal(_)
            | Expr::Bool(_)
            | Expr::Subquery(_)
            | Expr::Exists { .. }
            | Expr::Wildcard => {}
            Expr::Unary { expr, .. }
            | Expr::Extract { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::InSubquery { expr, .. } => expr.visit(f),
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::Case { operand, branches, else_branch } => {
                if let Some(o) = operand {
                    o.visit(f);
                }
                for (w, t) in branches {
                    w.visit(f);
                    t.visit(f);
                }
                if let Some(e) = else_branch {
                    e.visit(f);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Substring { expr, start, length } => {
                expr.visit(f);
                start.visit(f);
                if let Some(l) = length {
                    l.visit(f);
                }
            }
        }
    }

    /// In-place slot renumbering (used when predicates move across plan
    /// nodes and when pruning compacts scan schemas).
    pub fn map_slots(&mut self, f: &impl Fn(usize) -> usize) {
        match self {
            Expr::Col { slot, .. } => *slot = f(*slot),
            Expr::Outer(_)
            | Expr::OutputCol(_)
            | Expr::Literal(_)
            | Expr::Bool(_)
            | Expr::Subquery(_)
            | Expr::Exists { .. }
            | Expr::Wildcard => {}
            Expr::Unary { expr, .. }
            | Expr::Extract { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::InSubquery { expr, .. } => expr.map_slots(f),
            Expr::Binary { left, right, .. } => {
                left.map_slots(f);
                right.map_slots(f);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.map_slots(f);
                low.map_slots(f);
                high.map_slots(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.map_slots(f);
                for e in list {
                    e.map_slots(f);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                expr.map_slots(f);
                pattern.map_slots(f);
            }
            Expr::Case { operand, branches, else_branch } => {
                if let Some(o) = operand {
                    o.map_slots(f);
                }
                for (w, t) in branches {
                    w.map_slots(f);
                    t.map_slots(f);
                }
                if let Some(e) = else_branch {
                    e.map_slots(f);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.map_slots(f);
                }
            }
            Expr::Substring { expr, start, length } => {
                expr.map_slots(f);
                start.map_slots(f);
                if let Some(l) = length {
                    l.map_slots(f);
                }
            }
        }
    }

    /// A copy with every slot shifted by `delta`.
    pub fn shifted(&self, delta: usize) -> Expr {
        let mut e = self.clone();
        e.map_slots(&|s| s + delta);
        e
    }

    /// Every slot referenced by this expression (subquery bodies excluded —
    /// their references are tracked by name through the protected set).
    pub fn slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Col { slot, .. } = e {
                out.push(*slot);
            }
        });
        out
    }

    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if ast::is_aggregate(name) {
                    found = true;
                }
            }
        });
        found
    }

    pub fn contains_subquery(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(
                e,
                Expr::Subquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. }
            ) {
                found = true;
            }
        });
        found
    }

    pub fn contains_outer(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Outer(_)) {
                found = true;
            }
        });
        found
    }

    /// Whether a predicate may run on parallel morsels: anything touching a
    /// subquery runner must stay sequential (the runner caches through a
    /// `RefCell`). Replaces the old AST-level `morsel::parallel_safe`.
    pub fn parallel_safe(&self) -> bool {
        !self.contains_subquery()
    }

    /// Static type of the expression. Conservative: `Unknown` whenever the
    /// dynamic engines could produce more than one type.
    pub fn ty(&self) -> Ty {
        match self {
            Expr::Col { ty, .. } => *ty,
            Expr::Outer(_) | Expr::OutputCol(_) | Expr::Subquery(_) | Expr::Wildcard => Ty::Unknown,
            Expr::Literal(l) => match l {
                Literal::Integer(_) => Ty::Int,
                // Decimal literals become fixed-point or float depending on
                // representability (see `eval::literal`).
                Literal::Decimal(_) => Ty::Unknown,
                Literal::String(_) => Ty::Str,
                Literal::Date(_) => Ty::Date,
                Literal::Interval { .. } => Ty::Interval,
                Literal::Null => Ty::Unknown,
            },
            Expr::Bool(_) => Ty::Bool,
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => expr.ty(),
                UnaryOp::Not => Ty::Bool,
            },
            Expr::Binary { left, op, right } => match op {
                BinOp::And | BinOp::Or => Ty::Bool,
                op if op.is_comparison() => Ty::Bool,
                BinOp::Concat => Ty::Str,
                _ => match (left.ty(), right.ty()) {
                    (Ty::Int, Ty::Int) => Ty::Int,
                    (Ty::Date, Ty::Interval) | (Ty::Interval, Ty::Date) => Ty::Date,
                    (Ty::Float, t) | (t, Ty::Float) if t != Ty::Unknown => Ty::Float,
                    (Ty::Decimal, Ty::Decimal)
                    | (Ty::Decimal, Ty::Int)
                    | (Ty::Int, Ty::Decimal) => Ty::Decimal,
                    _ => Ty::Unknown,
                },
            },
            Expr::Between { .. }
            | Expr::InList { .. }
            | Expr::InSubquery { .. }
            | Expr::Exists { .. }
            | Expr::Like { .. }
            | Expr::IsNull { .. } => Ty::Bool,
            Expr::Case { branches, else_branch, .. } => {
                let mut ty = match branches.first() {
                    Some((_, t)) => t.ty(),
                    None => Ty::Unknown,
                };
                for (_, t) in branches.iter().skip(1) {
                    if t.ty() != ty {
                        ty = Ty::Unknown;
                    }
                }
                if let Some(e) = else_branch {
                    if e.ty() != ty {
                        ty = Ty::Unknown;
                    }
                }
                ty
            }
            Expr::Function { name, args, .. } => match name.as_str() {
                "count" => Ty::Int,
                "avg" => Ty::Float,
                "sum" | "min" | "max" => args.first().map(Expr::ty).unwrap_or(Ty::Unknown),
                _ => Ty::Unknown,
            },
            Expr::Extract { .. } => Ty::Int,
            Expr::Substring { .. } => Ty::Str,
        }
    }
}

/// Canonical rendering: fully parenthesized, slot-based (`#3`), stable
/// across equivalent name spellings. Used for aggregate keys, duplicate
/// conjunct elimination and (normalized further) plan fingerprints.
impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col { slot, .. } => write!(f, "#{slot}"),
            Expr::Outer(c) => write!(f, "outer({c})"),
            Expr::OutputCol(i) => write!(f, "out#{i}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "(-{expr})"),
                UnaryOp::Not => write!(f, "(NOT {expr})"),
            },
            Expr::Binary { left, op, right } => write!(f, "({left} {} {right})", op.sql()),
            Expr::Between { expr, negated, low, high } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList { expr, negated, list } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("))")
            }
            Expr::InSubquery { expr, negated, query } => write!(
                f,
                "({expr} {}IN ({query}))",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Exists { negated, query } => write!(
                f,
                "({}EXISTS ({query}))",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like { expr, negated, pattern } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::IsNull { expr, negated } => write!(
                f,
                "({expr} IS {}NULL)",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Case { operand, branches, else_branch } => {
                f.write_str("(CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_branch {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END)")
            }
            Expr::Function { name, distinct, args } => {
                write!(f, "{name}(")?;
                if *distinct {
                    f.write_str("DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Extract { field, expr } => {
                write!(f, "EXTRACT({} FROM {expr})", field.sql().to_uppercase())
            }
            Expr::Substring { expr, start, length } => {
                write!(f, "SUBSTRING({expr} FROM {start}")?;
                if let Some(l) = length {
                    write!(f, " FOR {l}")?;
                }
                f.write_str(")")
            }
            Expr::Subquery(q) => write!(f, "({q})"),
            Expr::Wildcard => f.write_str("*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(slot: usize) -> Expr {
        Expr::Col { slot, ty: Ty::Int }
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::and(Expr::and(col(0), col(1)), col(2));
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(format!("{}", parts[2]), "#2");
    }

    #[test]
    fn shifted_renumbers_all_slots() {
        let e = Expr::eq_pair(col(0), Expr::and(col(1), col(2)));
        assert_eq!(format!("{}", e.shifted(10)), "(#10 = (#11 and #12))");
    }

    #[test]
    fn slots_skip_subquery_bodies() {
        let q = Box::new(ast::Query::simple(ast::Select::default()));
        let e = Expr::and(col(3), Expr::Exists { negated: false, query: q });
        assert_eq!(e.slots(), vec![3]);
        assert!(!e.parallel_safe());
        assert!(e.contains_subquery());
    }

    #[test]
    fn type_inference_basics() {
        let bool_e = Expr::eq_pair(col(0), Expr::Literal(Literal::Integer(3)));
        assert_eq!(bool_e.ty(), Ty::Bool);
        let arith = Expr::Binary {
            left: Box::new(col(0)),
            op: BinOp::Plus,
            right: Box::new(Expr::Literal(Literal::Integer(1))),
        };
        assert_eq!(arith.ty(), Ty::Int);
        assert_eq!(Expr::Outer(ColumnRef::bare("x")).ty(), Ty::Unknown);
    }

    #[test]
    fn canonical_display_is_slot_based() {
        let e = Expr::Function {
            name: "sum".into(),
            distinct: true,
            args: vec![col(4)],
        };
        assert_eq!(e.to_string(), "sum(DISTINCT #4)");
    }
}
