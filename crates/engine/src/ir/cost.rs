//! Cardinality estimation and the cost model for the join-order search.
//!
//! Selectivities are estimated from the load-time [`super::stats`] —
//! NDV for equality predicates, min/max interpolation for ranges —
//! with textbook fallback constants where no statistic applies. The
//! estimator is deliberately simple (independence assumed everywhere:
//! conjunctions multiply, disjunctions use inclusion–exclusion); the
//! adaptive feedback loop corrects its worst mistakes with observed
//! row counts keyed by relation subset ([`CardHints`]).

use super::expr::Expr;
use super::stats::ColStats;
use sqalpel_sql::ast::{BinOp, IntervalUnit, Literal, UnaryOp};
use std::collections::BTreeMap;

/// Default selectivity for predicates the estimator cannot analyze.
pub const DEFAULT_SEL: f64 = 1.0 / 3.0;
/// Equality against a literal when the column has no NDV statistic.
pub const EQ_DEFAULT_SEL: f64 = 0.1;
/// `LIKE '%..%'` (contains) and `LIKE 'x%'` (prefix) guesses.
pub const LIKE_CONTAINS_SEL: f64 = 0.1;
pub const LIKE_PREFIX_SEL: f64 = 0.05;
/// `IS NULL` — the generated data is essentially null-free.
pub const IS_NULL_SEL: f64 = 0.05;
/// Any predicate involving a subquery (IN/EXISTS/scalar).
pub const SUBQUERY_SEL: f64 = 0.3;

/// Cost weights for a hash join: the build side is hashed (insert per
/// row), the probe side streams (lookup per row), and every output row
/// is materialized. Both executors build on the RIGHT input and probe
/// from the LEFT, so the optimizer puts the smaller input right.
pub const BUILD_W: f64 = 2.0;
pub const PROBE_W: f64 = 1.0;
pub const OUT_W: f64 = 1.0;

/// Cost of one hash join given input/output cardinalities (inputs'
/// own subtree costs are added by the search).
pub fn hash_join_cost(probe_left: f64, build_right: f64, out: f64) -> f64 {
    BUILD_W * build_right + PROBE_W * probe_left + OUT_W * out
}

/// Per-slot statistics for one plan frame (a schema the estimator's
/// expressions are bound against). `None` where nothing is known —
/// derived-table outputs, computed columns.
#[derive(Debug, Clone, Default)]
pub struct FrameStats {
    pub slots: Vec<Option<SlotStat>>,
}

/// Statistics for one slot, in the column's raw i64 domain. `scale` is
/// the decimal scale when that domain is `value * 10^scale` (literals
/// must be scaled to compare against `min`/`max`).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotStat {
    pub min: Option<i64>,
    pub max: Option<i64>,
    pub ndv: f64,
    pub scale: Option<u8>,
}

impl SlotStat {
    pub fn from_col(stats: &ColStats, scale: Option<u8>) -> SlotStat {
        SlotStat {
            min: stats.min,
            max: stats.max,
            ndv: stats.ndv,
            scale,
        }
    }

    fn ndv_floor(&self) -> f64 {
        self.ndv.max(1.0)
    }
}

impl FrameStats {
    pub fn slot(&self, i: usize) -> Option<&SlotStat> {
        self.slots.get(i).and_then(|s| s.as_ref())
    }
}

fn clamp(s: f64) -> f64 {
    if s.is_nan() {
        return DEFAULT_SEL;
    }
    s.clamp(0.0, 1.0)
}

/// Estimated fraction of input rows satisfying predicate `e`, always in
/// `[0, 1]`. Conjunctions multiply their parts' selectivities, so adding
/// a conjunct never increases the estimate (pinned by proptest).
pub fn selectivity(e: &Expr, frame: &FrameStats) -> f64 {
    clamp(sel(e, frame))
}

fn sel(e: &Expr, frame: &FrameStats) -> f64 {
    if e.contains_subquery() {
        return SUBQUERY_SEL;
    }
    match e {
        Expr::Bool(b) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => 1.0 - clamp(sel(expr, frame)),
        Expr::Binary { left, op, right } => match op {
            BinOp::And => clamp(sel(left, frame)) * clamp(sel(right, frame)),
            BinOp::Or => {
                let a = clamp(sel(left, frame));
                let b = clamp(sel(right, frame));
                a + b - a * b
            }
            op if op.is_comparison() => comparison_sel(left, *op, right, frame),
            _ => DEFAULT_SEL,
        },
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            let s = range_sel(expr, low, high, frame);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            let per = match col_stat(expr, frame) {
                Some(st) => 1.0 / st.ndv_floor(),
                None => EQ_DEFAULT_SEL,
            };
            let s = clamp(per * list.len() as f64);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::Like { negated, pattern, .. } => {
            let s = match pattern.as_ref() {
                Expr::Literal(Literal::String(p)) if !p.starts_with('%') => LIKE_PREFIX_SEL,
                _ => LIKE_CONTAINS_SEL,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::IsNull { negated, .. } => {
            if *negated {
                1.0 - IS_NULL_SEL
            } else {
                IS_NULL_SEL
            }
        }
        _ => DEFAULT_SEL,
    }
}

/// `a op b` where one side is a plain column and the other folds to a
/// constant in the column's raw domain.
fn comparison_sel(a: &Expr, op: BinOp, b: &Expr, frame: &FrameStats) -> f64 {
    let (st, lit, op) = match (col_stat(a, frame), col_stat(b, frame)) {
        (Some(st), _) => match literal_raw(b, st.scale) {
            Some(v) => (st, v, op),
            None => return DEFAULT_SEL,
        },
        (None, Some(st)) => match literal_raw(a, st.scale) {
            // Flip `lit op col` to `col op' lit`.
            Some(v) => (st, v, mirror(op)),
            None => return DEFAULT_SEL,
        },
        (None, None) => {
            // Column-to-column or uninstrumented comparison.
            return if op == BinOp::Eq {
                EQ_DEFAULT_SEL
            } else {
                DEFAULT_SEL
            };
        }
    };
    match op {
        BinOp::Eq => 1.0 / st.ndv_floor(),
        BinOp::NotEq => 1.0 - 1.0 / st.ndv_floor(),
        BinOp::Lt | BinOp::LtEq => fraction_below(st, lit),
        BinOp::Gt | BinOp::GtEq => 1.0 - fraction_below(st, lit),
        _ => DEFAULT_SEL,
    }
}

fn mirror(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

/// Linear-interpolated fraction of values strictly below `v`, assuming
/// a uniform distribution over `[min, max]`.
fn fraction_below(st: &SlotStat, v: f64) -> f64 {
    let (Some(min), Some(max)) = (st.min, st.max) else {
        return DEFAULT_SEL;
    };
    let (min, max) = (min as f64, max as f64);
    if max <= min {
        // Single-valued column: a range predicate either takes all or none;
        // split the difference without more information.
        return 0.5;
    }
    clamp((v - min) / (max - min))
}

fn range_sel(expr: &Expr, low: &Expr, high: &Expr, frame: &FrameStats) -> f64 {
    let Some(st) = col_stat(expr, frame) else {
        return DEFAULT_SEL * DEFAULT_SEL;
    };
    match (literal_raw(low, st.scale), literal_raw(high, st.scale)) {
        (Some(lo), Some(hi)) => clamp(fraction_below(st, hi) - fraction_below(st, lo)),
        _ => DEFAULT_SEL * DEFAULT_SEL,
    }
}

/// The statistic behind `e` when it is a plain column reference.
fn col_stat<'a>(e: &Expr, frame: &'a FrameStats) -> Option<&'a SlotStat> {
    match e {
        Expr::Col { slot, .. } => frame.slot(*slot),
        _ => None,
    }
}

/// Fold `e` to a constant in a column's raw i64 domain: integer and
/// decimal literals (scaled by `10^scale` for decimal columns), date
/// literals (days), and `date ± interval` arithmetic.
fn literal_raw(e: &Expr, scale: Option<u8>) -> Option<f64> {
    let factor = 10f64.powi(i32::from(scale.unwrap_or(0)));
    match e {
        Expr::Literal(Literal::Integer(i)) => Some(*i as f64 * factor),
        Expr::Literal(Literal::Decimal(d)) => Some(d * factor),
        Expr::Literal(Literal::Date(text)) => {
            sqalpel_datagen::calendar::parse_days(text).map(f64::from)
        }
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => literal_raw(expr, scale).map(|v| -v),
        Expr::Binary { left, op, right } if matches!(op, BinOp::Plus | BinOp::Minus) => {
            date_shift(left, *op, right).map(f64::from)
        }
        _ => None,
    }
}

/// Fold `date 'x' ± interval 'n' unit` to days.
fn date_shift(left: &Expr, op: BinOp, right: &Expr) -> Option<i32> {
    let Expr::Literal(Literal::Date(text)) = left else {
        return None;
    };
    let Expr::Literal(Literal::Interval { value, unit }) = right else {
        return None;
    };
    let days = sqalpel_datagen::calendar::parse_days(text)?;
    let sign: i64 = if op == BinOp::Minus { -1 } else { 1 };
    let n = sign * value;
    Some(match unit {
        IntervalUnit::Day => days + n as i32,
        IntervalUnit::Month => sqalpel_datagen::calendar::add_months(days, n as i32),
        IntervalUnit::Year => sqalpel_datagen::calendar::add_years(days, n as i32),
    })
}

/// Selectivity of one equi-join edge `left_slot = right_slot`: the
/// classic `1 / max(ndv_l, ndv_r)`, with each side's distinct count
/// defaulting to its input cardinality when no statistic exists.
pub fn equi_edge_selectivity(
    left: Option<&SlotStat>,
    right: Option<&SlotStat>,
    left_rows: f64,
    right_rows: f64,
) -> f64 {
    let ndv_l = left.map_or(left_rows.max(1.0), SlotStat::ndv_floor);
    let ndv_r = right.map_or(right_rows.max(1.0), SlotStat::ndv_floor);
    1.0 / ndv_l.max(ndv_r).max(1.0)
}

/// Observed cardinalities from a prior profiled run, keyed by the
/// *sorted* set of relation bindings a subplan covers — stable across
/// join orders, which is what lets a re-search consume them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CardHints {
    map: BTreeMap<Vec<String>, f64>,
}

impl CardHints {
    pub fn insert(&mut self, mut bindings: Vec<String>, rows: f64) {
        bindings.sort();
        self.map.insert(bindings, rows);
    }

    /// Look up the observed row count for a binding set (any order).
    pub fn get(&self, bindings: &[String]) -> Option<f64> {
        if bindings.windows(2).all(|w| w[0] <= w[1]) {
            return self.map.get(bindings).copied();
        }
        let mut sorted = bindings.to_vec();
        sorted.sort();
        self.map.get(&sorted).copied()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Vec<String>, f64)> {
        self.map.iter().map(|(k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::expr::Ty;

    fn frame(st: SlotStat) -> FrameStats {
        FrameStats {
            slots: vec![Some(st)],
        }
    }

    fn col() -> Expr {
        Expr::Col { slot: 0, ty: Ty::Int }
    }

    fn lit(i: i64) -> Expr {
        Expr::Literal(Literal::Integer(i))
    }

    fn stat(min: i64, max: i64, ndv: f64) -> SlotStat {
        SlotStat {
            min: Some(min),
            max: Some(max),
            ndv,
            scale: None,
        }
    }

    #[test]
    fn equality_uses_ndv() {
        let f = frame(stat(0, 99, 100.0));
        let s = selectivity(&Expr::eq_pair(col(), lit(7)), &f);
        assert!((s - 0.01).abs() < 1e-12);
    }

    #[test]
    fn range_interpolates_between_min_and_max() {
        let f = frame(stat(0, 100, 100.0));
        let e = Expr::Binary {
            left: Box::new(col()),
            op: BinOp::Lt,
            right: Box::new(lit(25)),
        };
        assert!((selectivity(&e, &f) - 0.25).abs() < 1e-12);
        // Flipped literal-left form mirrors the operator.
        let e = Expr::Binary {
            left: Box::new(lit(25)),
            op: BinOp::Gt,
            right: Box::new(col()),
        };
        assert!((selectivity(&e, &f) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_literals_clamp() {
        let f = frame(stat(10, 20, 10.0));
        let below = Expr::Binary {
            left: Box::new(col()),
            op: BinOp::Lt,
            right: Box::new(lit(-5)),
        };
        assert_eq!(selectivity(&below, &f), 0.0);
        let above = Expr::Binary {
            left: Box::new(col()),
            op: BinOp::Lt,
            right: Box::new(lit(50)),
        };
        assert_eq!(selectivity(&above, &f), 1.0);
    }

    #[test]
    fn conjunction_multiplies() {
        let f = frame(stat(0, 100, 100.0));
        let a = Expr::eq_pair(col(), lit(7));
        let b = Expr::Binary {
            left: Box::new(col()),
            op: BinOp::Lt,
            right: Box::new(lit(50)),
        };
        let sa = selectivity(&a, &f);
        let both = selectivity(&Expr::and(a, b), &f);
        assert!(both <= sa);
        assert!((both - sa * 0.5).abs() < 1e-12);
    }

    #[test]
    fn decimal_scale_converts_literals() {
        // Column stores 0.00 .. 100.00 at scale 2 (raw 0..10000).
        let st = SlotStat {
            min: Some(0),
            max: Some(10_000),
            ndv: 10_000.0,
            scale: Some(2),
        };
        let e = Expr::Binary {
            left: Box::new(col()),
            op: BinOp::Lt,
            right: Box::new(Expr::Literal(Literal::Decimal(25.0))),
        };
        assert!((selectivity(&e, &frame(st)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn date_interval_arithmetic_folds() {
        let jan1 = sqalpel_datagen::calendar::parse_days("1994-01-01").unwrap();
        let next = sqalpel_datagen::calendar::parse_days("1995-01-01").unwrap();
        let shifted = Expr::Binary {
            left: Box::new(Expr::Literal(Literal::Date("1994-01-01".into()))),
            op: BinOp::Plus,
            right: Box::new(Expr::Literal(Literal::Interval {
                value: 1,
                unit: IntervalUnit::Year,
            })),
        };
        assert_eq!(literal_raw(&shifted, None), Some(f64::from(next)));
        assert_eq!(
            literal_raw(&Expr::Literal(Literal::Date("1994-01-01".into())), None),
            Some(f64::from(jan1))
        );
    }

    #[test]
    fn join_edge_selectivity_uses_larger_ndv() {
        let l = stat(0, 0, 1_000.0);
        let r = stat(0, 0, 50.0);
        let s = equi_edge_selectivity(Some(&l), Some(&r), 1e6, 1e6);
        assert!((s - 0.001).abs() < 1e-12);
        // Missing stats fall back to input cardinality.
        let s = equi_edge_selectivity(None, Some(&r), 200.0, 1e6);
        assert!((s - 1.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn hints_ignore_binding_order() {
        let mut h = CardHints::default();
        h.insert(vec!["b".into(), "a".into()], 42.0);
        assert_eq!(h.get(&["a".into(), "b".into()]), Some(42.0));
        assert_eq!(h.get(&["b".into(), "a".into()]), Some(42.0));
        assert_eq!(h.get(&["a".into()]), None);
    }

    #[test]
    fn everything_stays_in_unit_interval() {
        let f = frame(stat(0, 10, 5.0));
        for e in [
            Expr::Bool(true),
            Expr::Bool(false),
            Expr::IsNull { expr: Box::new(col()), negated: true },
            Expr::Like {
                expr: Box::new(col()),
                negated: false,
                pattern: Box::new(Expr::Literal(Literal::String("%x%".into()))),
            },
            Expr::InList {
                expr: Box::new(col()),
                negated: false,
                list: vec![lit(1), lit(2), lit(3)],
            },
        ] {
            let s = selectivity(&e, &f);
            assert!((0.0..=1.0).contains(&s), "{e} -> {s}");
        }
    }
}
