//! Memo-style join-order search over the bound plan.
//!
//! The optimizer works on *regions*: maximal trees of inner joins (plus
//! the filter directly above them). Each region is flattened into its
//! leaf relations and a pool of predicates lifted into the region's
//! "global frame" (the concatenation of the leaf schemas in original
//! left-to-right order). A dynamic program then searches join orders —
//! exhaustive bushy plans for small regions, left-deep beyond
//! [`MAX_BUSHY`] leaves — costing each candidate with the estimator in
//! [`super::cost`] and the load-time statistics from [`super::stats`],
//! preferring connected (equi-keyed) joins over cross products. The
//! winning tree is rebuilt with every pooled predicate placed at its
//! lowest covering join (as a hash key when it splits into two plain
//! sides, as a residual otherwise).
//!
//! Predicates that must not move (subqueries, constants — the same
//! `immovable` rule the rewriter uses) stay in a filter above the
//! region. `LEFT OUTER` joins are reorder barriers: they become region
//! leaves, and their own inputs are optimized as independent regions.
//!
//! Like `rewrite::prune`, every entry point returns an old→new slot
//! mapping for its node's schema so callers can remap expressions bound
//! against it; the optimizer only permutes columns, so entries are
//! always `Some`.

use super::cost::{self, CardHints, FrameStats, SlotStat};
use super::expr::Expr;
use crate::plan::{BoundQuery, Plan};
use crate::storage::{ColumnData, Table};
use sqalpel_sql::ast::{BinOp, JoinKind};
use std::collections::BTreeMap;
use std::mem;

/// Regions up to this many leaves get the exhaustive bushy DP.
pub const MAX_BUSHY: usize = 6;
/// Regions up to this many leaves get a left-deep search; beyond it the
/// syntactic order is kept (no workload here comes close).
pub const MAX_DP: usize = 16;

/// Optimize a bound query in place: reorder every inner-join region in
/// its core, its CTEs and its derived tables by estimated cost,
/// consulting `hints` (observed cardinalities from a prior profiled run
/// of the same fingerprint) wherever a binding subset matches.
pub fn optimize(bq: &mut BoundQuery, hints: &CardHints) {
    let mut ctx = Ctx {
        hints,
        cte_rows: BTreeMap::new(),
    };
    optimize_query(bq, &mut ctx);
}

/// Crude output-cardinality estimate for a plan subtree, hint-aware.
/// Used for derived/CTE leaf estimates and EXPLAIN annotations.
pub fn estimated_rows(p: &Plan, hints: &CardHints) -> f64 {
    let ctx = Ctx {
        hints,
        cte_rows: BTreeMap::new(),
    };
    estimate_plan_rows(p, &ctx)
}

struct Ctx<'a> {
    hints: &'a CardHints,
    /// Estimated output rows per CTE name, filled as CTEs are optimized.
    cte_rows: BTreeMap<String, f64>,
}

fn optimize_query(bq: &mut BoundQuery, ctx: &mut Ctx) {
    for (name, cte) in &mut bq.ctes {
        optimize_query(cte, ctx);
        let rows = estimate_query_rows(cte, ctx);
        ctx.cte_rows.insert(name.clone(), rows);
    }
    let mapping = optimize_plan(&mut bq.core, ctx);
    for it in &mut bq.items {
        remap(&mut it.expr, &mapping);
    }
    for g in &mut bq.group_by {
        remap(g, &mapping);
    }
    if let Some(h) = &mut bq.having {
        remap(h, &mapping);
    }
    for (k, _) in &mut bq.order_by {
        remap(k, &mapping);
    }
}

fn remap(e: &mut Expr, m: &[Option<usize>]) {
    e.map_slots(&|s| m[s].expect("optimizer dropped a live slot"));
}

fn identity(width: usize) -> Vec<Option<usize>> {
    (0..width).map(Some).collect()
}

fn dummy() -> Plan {
    Plan::Cte {
        name: String::new(),
        binding: String::new(),
        schema: Vec::new(),
    }
}

fn is_inner_join(p: &Plan) -> bool {
    matches!(
        p,
        Plan::Join {
            kind: JoinKind::Inner,
            ..
        }
    )
}

/// Optimize one plan node, returning the old→new slot mapping of its
/// schema (mirroring `rewrite::prune_plan`'s contract).
fn optimize_plan(p: &mut Plan, ctx: &mut Ctx) -> Vec<Option<usize>> {
    let region_root = is_inner_join(p)
        || matches!(p, Plan::Filter { input, .. } if is_inner_join(input));
    if region_root {
        return optimize_region(p, ctx);
    }
    match p {
        Plan::Scan { live, .. } => identity(live.len()),
        Plan::Cte { schema, .. } => identity(schema.len()),
        Plan::Derived { query, .. } => {
            optimize_query(query, ctx);
            identity(query.items.len())
        }
        Plan::Filter { input, predicate } => {
            let m = optimize_plan(input, ctx);
            remap(predicate, &m);
            m
        }
        Plan::Join {
            left,
            right,
            equi,
            residual,
            ..
        } => {
            // Left-outer joins: optimize each side as its own region.
            let ml = optimize_plan(left, ctx);
            let mr = optimize_plan(right, ctx);
            for (l, r) in equi.iter_mut() {
                remap(l, &ml);
                remap(r, &mr);
            }
            let left_w = ml.len();
            let mut combined = ml;
            combined.extend(mr.into_iter().map(|o| o.map(|v| v + left_w)));
            if let Some(res) = residual {
                remap(res, &combined);
            }
            combined
        }
    }
}

/// One flattened region leaf.
struct Leaf {
    plan: Plan,
    /// Internal old→new mapping from optimizing the leaf's own subtree
    /// (identity except for nested regions inside left-outer leaves).
    map: Vec<Option<usize>>,
    old_offset: usize,
    width: usize,
    /// Sorted relation bindings this leaf covers.
    bindings: Vec<String>,
    /// Estimated output rows (post-pushed-filters, hint-overridden).
    rows: f64,
    /// Per old-local-slot statistics (populated for scan leaves).
    stats: Vec<Option<SlotStat>>,
}

/// A movable region predicate in the global frame.
struct PoolPred {
    expr: Expr,
    /// Bitset of leaves it references.
    mask: u32,
    sel: f64,
    /// True when it splits into two single-leaf equality sides — usable
    /// as a hash-join key, and what "connected" means for the search.
    is_edge: bool,
}

#[derive(Clone)]
enum Tree {
    Leaf(usize),
    Join(Box<Tree>, Box<Tree>),
}

#[derive(Clone)]
struct Cand {
    cost: f64,
    tree: Tree,
}

fn optimize_region(p: &mut Plan, ctx: &mut Ctx) -> Vec<Option<usize>> {
    let snapshot = p.clone();
    let owned = mem::replace(p, dummy());
    let mut leaves: Vec<Leaf> = Vec::new();
    let mut hoisted: Vec<Expr> = Vec::new();
    let mut pinned: Vec<Expr> = Vec::new();
    let mut offset = 0usize;
    flatten(owned, ctx, &mut leaves, &mut hoisted, &mut pinned, &mut offset);
    let total = offset;
    let n = leaves.len();
    if !(2..=MAX_DP).contains(&n) {
        *p = snapshot;
        return identity(total);
    }

    // Global frame statistics: leaf stats concatenated in original order.
    let global_stats = FrameStats {
        slots: leaves.iter().flat_map(|lf| lf.stats.clone()).collect(),
    };
    let spans: Vec<(usize, usize)> = leaves.iter().map(|lf| (lf.old_offset, lf.width)).collect();
    let leaf_of_slot = move |s: usize| -> usize {
        spans
            .iter()
            .position(|&(off, w)| s >= off && s < off + w)
            .expect("slot outside region frame")
    };

    // Partition the hoisted predicates: single-leaf conjuncts sink onto
    // their leaf (scaling its row estimate), the rest form the pool.
    let mut pool_raw: Vec<(Expr, u32)> = Vec::new();
    for e in hoisted {
        let mut mask = 0u32;
        for s in e.slots() {
            mask |= 1 << leaf_of_slot(s);
        }
        if mask.count_ones() == 1 {
            let k = mask.trailing_zeros() as usize;
            let sel = cost::selectivity(&e, &global_stats);
            let lf = &mut leaves[k];
            lf.rows *= sel;
            let off = lf.old_offset;
            let mut local = e;
            let map = lf.map.clone();
            local.map_slots(&|s| map[s - off].expect("live slot"));
            lf.plan = Plan::Filter {
                input: Box::new(mem::replace(&mut lf.plan, dummy())),
                predicate: local,
            };
        } else {
            pool_raw.push((e, mask));
        }
    }
    // Observed cardinalities beat estimates, applied after local filters.
    for lf in &mut leaves {
        if let Some(h) = ctx.hints.get(&lf.bindings) {
            lf.rows = h;
        }
    }

    let single_leaf_side = |e: &Expr| -> Option<u32> {
        let slots = e.slots();
        if slots.is_empty() {
            return None;
        }
        let mut mask = 0u32;
        for s in slots {
            mask |= 1 << leaf_of_slot(s);
        }
        (mask.count_ones() == 1).then_some(mask)
    };
    let pool: Vec<PoolPred> = pool_raw
        .into_iter()
        .map(|(expr, mask)| {
            let (sel, is_edge) = match &expr {
                Expr::Binary {
                    left,
                    op: BinOp::Eq,
                    right,
                } => match (single_leaf_side(left), single_leaf_side(right)) {
                    (Some(lm), Some(rm)) if lm != rm => {
                        let stat_of = |e: &Expr| match e {
                            Expr::Col { slot, .. } => global_stats.slot(*slot),
                            _ => None,
                        };
                        let li = lm.trailing_zeros() as usize;
                        let ri = rm.trailing_zeros() as usize;
                        let sel = cost::equi_edge_selectivity(
                            stat_of(left),
                            stat_of(right),
                            leaves[li].rows,
                            leaves[ri].rows,
                        );
                        (sel, true)
                    }
                    _ => (cost::selectivity(&expr, &global_stats), false),
                },
                _ => (cost::selectivity(&expr, &global_stats), false),
            };
            PoolPred { expr, mask, sel, is_edge }
        })
        .collect();

    // Cardinality per leaf subset: independence across predicates, each
    // counted once, with hint overrides by binding set.
    let full: u32 = (1u32 << n) - 1;
    let mut card = vec![0f64; (1usize << n).max(2)];
    for mask in 1..=full {
        let mut rows = 1.0;
        for (i, lf) in leaves.iter().enumerate() {
            if mask & (1 << i) != 0 {
                rows *= lf.rows;
            }
        }
        for pp in &pool {
            if pp.mask & !mask == 0 {
                rows *= pp.sel;
            }
        }
        if !ctx.hints.is_empty() && mask.count_ones() >= 2 {
            let mut bs: Vec<String> = Vec::new();
            for (i, lf) in leaves.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    bs.extend(lf.bindings.iter().cloned());
                }
            }
            bs.sort();
            if let Some(h) = ctx.hints.get(&bs) {
                rows = h;
            }
        }
        card[mask as usize] = rows.max(0.0);
    }

    // The DP proper. Connected splits (sharing an equi edge) first; a
    // second pass admits cross joins only when no keyed split exists.
    let connected = |a: u32, b: u32| {
        pool.iter().any(|pp| {
            pp.is_edge && pp.mask & a != 0 && pp.mask & b != 0 && pp.mask & !(a | b) == 0
        })
    };
    let bushy = n <= MAX_BUSHY;
    let mut dp: Vec<Option<Cand>> = vec![None; 1usize << n];
    for (i, lf) in leaves.iter().enumerate() {
        dp[1usize << i] = Some(Cand {
            cost: lf.rows,
            tree: Tree::Leaf(i),
        });
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let rows = card[mask as usize];
        let mut best: Option<Cand> = None;
        for pass in 0..2 {
            let consider = |lm: u32, rm: u32, best: &mut Option<Cand>| {
                if pass == 0 && !connected(lm, rm) {
                    return;
                }
                let (Some(a), Some(b)) = (&dp[lm as usize], &dp[rm as usize]) else {
                    return;
                };
                let c = a.cost
                    + b.cost
                    + cost::hash_join_cost(card[lm as usize], card[rm as usize], rows);
                if best.as_ref().is_none_or(|cur| c < cur.cost) {
                    *best = Some(Cand {
                        cost: c,
                        tree: Tree::Join(Box::new(a.tree.clone()), Box::new(b.tree.clone())),
                    });
                }
            };
            if bushy {
                let mut sub = (mask - 1) & mask;
                while sub != 0 {
                    consider(sub, mask ^ sub, &mut best);
                    sub = (sub - 1) & mask;
                }
            } else {
                // Left-deep: extend with one leaf on the build (right) side.
                for i in 0..n {
                    let bit = 1u32 << i;
                    if mask & bit != 0 && mask != bit {
                        consider(mask ^ bit, bit, &mut best);
                    }
                }
            }
            if best.is_some() {
                break;
            }
        }
        dp[mask as usize] = best;
    }
    let root = dp[full as usize]
        .take()
        .expect("DP always finds a plan for the full set")
        .tree;

    // Rebuild: new frame = leaf schemas in the chosen in-order sequence.
    let mut order = Vec::with_capacity(n);
    inorder(&root, &mut order);
    let mut new_off = vec![0usize; n];
    let mut acc = 0usize;
    for &k in &order {
        new_off[k] = acc;
        acc += leaves[k].width;
    }
    let mut mapping: Vec<Option<usize>> = vec![None; total];
    for (k, lf) in leaves.iter().enumerate() {
        for j in 0..lf.width {
            mapping[lf.old_offset + j] = Some(new_off[k] + lf.map[j].expect("live slot"));
        }
    }
    let mut preds: Vec<(Expr, u32, bool)> = pool
        .into_iter()
        .map(|pp| {
            let mut e = pp.expr;
            remap(&mut e, &mapping);
            (e, pp.mask, false)
        })
        .collect();
    let widths: Vec<usize> = leaves.iter().map(|lf| lf.width).collect();
    let mut plans: Vec<Option<Plan>> = leaves
        .iter_mut()
        .map(|lf| Some(mem::replace(&mut lf.plan, dummy())))
        .collect();
    let (mut plan, _, _, _) = build_tree(&root, &mut plans, &mut preds, &new_off, &widths);

    // Safety net for preds that found no covering join (cannot happen
    // for the full mask, but cheap to keep sound) plus the pinned set.
    let mut top: Vec<Expr> = preds
        .into_iter()
        .filter(|(_, _, placed)| !placed)
        .map(|(e, _, _)| e)
        .collect();
    for mut e in pinned {
        remap(&mut e, &mapping);
        top.push(e);
    }
    if let Some(pred) = Expr::conjoin(top) {
        plan = Plan::Filter {
            input: Box::new(plan),
            predicate: pred,
        };
    }
    *p = plan;
    mapping
}

/// Flatten a region subtree: leaves out, predicates lifted into the
/// global frame (`offset` tracks each subtree's base slot).
fn flatten(
    p: Plan,
    ctx: &mut Ctx,
    leaves: &mut Vec<Leaf>,
    hoisted: &mut Vec<Expr>,
    pinned: &mut Vec<Expr>,
    offset: &mut usize,
) {
    let immovable = |c: &Expr| c.contains_subquery() || c.slots().is_empty();
    match p {
        Plan::Join {
            left,
            right,
            kind: JoinKind::Inner,
            equi,
            residual,
        } => {
            let left_start = *offset;
            flatten(*left, ctx, leaves, hoisted, pinned, offset);
            let right_start = *offset;
            flatten(*right, ctx, leaves, hoisted, pinned, offset);
            for (l, r) in equi {
                hoisted.push(Expr::eq_pair(l.shifted(left_start), r.shifted(right_start)));
            }
            if let Some(res) = residual {
                for c in res.conjuncts() {
                    let e = c.shifted(left_start);
                    if immovable(&e) {
                        pinned.push(e);
                    } else {
                        hoisted.push(e);
                    }
                }
            }
        }
        Plan::Filter { input, predicate } if is_inner_join(&input) => {
            let start = *offset;
            flatten(*input, ctx, leaves, hoisted, pinned, offset);
            for c in predicate.conjuncts() {
                let e = c.shifted(start);
                if immovable(&e) {
                    pinned.push(e);
                } else {
                    hoisted.push(e);
                }
            }
        }
        other => {
            let mut plan = other;
            let map = optimize_plan(&mut plan, ctx);
            let width = map.len();
            let (rows, stats) = leaf_estimates(&plan, width, ctx);
            let bindings: Vec<String> = plan.bindings().into_iter().collect();
            leaves.push(Leaf {
                plan,
                map,
                old_offset: *offset,
                width,
                bindings,
                rows,
                stats,
            });
            *offset += width;
        }
    }
}

/// Row estimate and per-slot stats for a region leaf.
fn leaf_estimates(plan: &Plan, width: usize, ctx: &Ctx) -> (f64, Vec<Option<SlotStat>>) {
    match plan {
        Plan::Scan { table, live, .. } => {
            (table.row_count() as f64, scan_stats(table, live))
        }
        Plan::Filter { input, predicate } => {
            if let Plan::Scan { table, live, .. } = input.as_ref() {
                let stats = scan_stats(table, live);
                let frame = FrameStats { slots: stats.clone() };
                let rows = table.row_count() as f64 * cost::selectivity(predicate, &frame);
                (rows, stats)
            } else {
                (estimate_plan_rows(plan, ctx), vec![None; width])
            }
        }
        _ => (estimate_plan_rows(plan, ctx), vec![None; width]),
    }
}

fn scan_stats(table: &Table, live: &[usize]) -> Vec<Option<SlotStat>> {
    live.iter()
        .map(|&ci| {
            table.col_stats(ci).map(|cs| {
                let scale = match &table.columns[ci].data {
                    ColumnData::Decimal { scale, .. } => Some(*scale),
                    _ => None,
                };
                SlotStat::from_col(cs, scale)
            })
        })
        .collect()
}

fn inorder(t: &Tree, out: &mut Vec<usize>) {
    match t {
        Tree::Leaf(i) => out.push(*i),
        Tree::Join(l, r) => {
            inorder(l, out);
            inorder(r, out);
        }
    }
}

/// Build the chosen tree bottom-up, placing each pooled predicate at its
/// lowest covering join. Returns `(plan, leaf mask, frame start, width)`.
fn build_tree(
    t: &Tree,
    plans: &mut [Option<Plan>],
    preds: &mut Vec<(Expr, u32, bool)>,
    new_off: &[usize],
    widths: &[usize],
) -> (Plan, u32, usize, usize) {
    match t {
        Tree::Leaf(i) => (
            plans[*i].take().expect("leaf built twice"),
            1u32 << *i,
            new_off[*i],
            widths[*i],
        ),
        Tree::Join(l, r) => {
            let (pl, ml, sl, wl) = build_tree(l, plans, preds, new_off, widths);
            let (pr, mr, sr, wr) = build_tree(r, plans, preds, new_off, widths);
            debug_assert_eq!(sr, sl + wl, "in-order frame must be contiguous");
            let covered = ml | mr;
            let mut equi = Vec::new();
            let mut residual = Vec::new();
            for (e, mask, placed) in preds.iter_mut() {
                if *placed || *mask & !covered != 0 {
                    continue;
                }
                *placed = true;
                match split_sides(e, sl, wl, sr, wr) {
                    Some(pair) => equi.push(pair),
                    None => {
                        let mut c = e.clone();
                        c.map_slots(&|s| s - sl);
                        residual.push(c);
                    }
                }
            }
            let plan = Plan::Join {
                left: Box::new(pl),
                right: Box::new(pr),
                kind: JoinKind::Inner,
                equi,
                residual: Expr::conjoin(residual),
            };
            (plan, covered, sl, wl + wr)
        }
    }
}

/// If `e` (in the new frame) is `a = b` with `a` entirely in the left
/// child's slot range and `b` in the right's (or mirrored), return the
/// localized `(left_key, right_key)` pair.
fn split_sides(
    e: &Expr,
    sl: usize,
    wl: usize,
    sr: usize,
    wr: usize,
) -> Option<(Expr, Expr)> {
    let Expr::Binary {
        left,
        op: BinOp::Eq,
        right,
    } = e
    else {
        return None;
    };
    let in_range = |x: &Expr, start: usize, w: usize| {
        let slots = x.slots();
        !slots.is_empty() && slots.iter().all(|&s| s >= start && s < start + w)
    };
    let localize = |x: &Expr, start: usize| {
        let mut c = x.clone();
        c.map_slots(&|s| s - start);
        c
    };
    if in_range(left, sl, wl) && in_range(right, sr, wr) {
        Some((localize(left, sl), localize(right, sr)))
    } else if in_range(left, sr, wr) && in_range(right, sl, wl) {
        Some((localize(right, sl), localize(left, sr)))
    } else {
        None
    }
}

/// Hint-aware cardinality estimate for an arbitrary subtree. Crude on
/// purpose: region internals get the real DP treatment; this covers
/// derived/CTE leaves and EXPLAIN annotations.
fn estimate_plan_rows(p: &Plan, ctx: &Ctx) -> f64 {
    if !ctx.hints.is_empty() {
        let bindings: Vec<String> = p.bindings().into_iter().collect();
        if let Some(h) = ctx.hints.get(&bindings) {
            return h;
        }
    }
    match p {
        Plan::Scan { table, .. } => table.row_count() as f64,
        Plan::Cte { name, .. } => ctx.cte_rows.get(name).copied().unwrap_or(1000.0),
        Plan::Derived { query, .. } => estimate_query_rows(query, ctx),
        Plan::Filter { input, predicate } => {
            let base = estimate_plan_rows(input, ctx);
            if let Plan::Scan { table, live, .. } = input.as_ref() {
                let frame = FrameStats {
                    slots: scan_stats(table, live),
                };
                base * cost::selectivity(predicate, &frame)
            } else {
                base * cost::DEFAULT_SEL
            }
        }
        Plan::Join {
            left,
            right,
            kind,
            equi,
            ..
        } => {
            let l = estimate_plan_rows(left, ctx);
            let r = estimate_plan_rows(right, ctx);
            let out = if equi.is_empty() { l * r } else { l.max(r) };
            if *kind == JoinKind::LeftOuter {
                out.max(l)
            } else {
                out
            }
        }
    }
}

fn estimate_query_rows(bq: &BoundQuery, ctx: &Ctx) -> f64 {
    let mut rows = estimate_plan_rows(&bq.core, ctx);
    if bq.aggregated {
        rows = if bq.group_by.is_empty() {
            1.0
        } else {
            rows.powf(0.7)
        };
    }
    if bq.distinct {
        rows = rows.powf(0.9);
    }
    if let Some(l) = bq.limit {
        rows = rows.min(l as f64);
    }
    rows.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use crate::storage::Database;
    use sqalpel_sql::parse_query;

    fn optimized(sql: &str) -> BoundQuery {
        let db = Database::tpch(0.001, 42);
        let q = parse_query(sql).unwrap();
        let mut bq = Planner::new(&db).with_optimize(false).bind(&q).unwrap();
        optimize(&mut bq, &CardHints::default());
        bq
    }

    fn count_cross_joins(p: &Plan) -> usize {
        match p {
            Plan::Join {
                left, right, equi, ..
            } => {
                let here = usize::from(equi.is_empty());
                here + count_cross_joins(left) + count_cross_joins(right)
            }
            Plan::Filter { input, .. } => count_cross_joins(input),
            Plan::Derived { query, .. } => count_cross_joins(&query.core),
            _ => 0,
        }
    }

    fn schema_names(p: &Plan) -> Vec<String> {
        p.schema()
            .into_iter()
            .map(|c| format!("{}.{}", c.binding, c.name))
            .collect()
    }

    #[test]
    fn reorder_keeps_schema_as_a_permutation() {
        let db = Database::tpch(0.001, 42);
        let sql = "select n_name from customer, orders, lineitem, nation \
                   where c_custkey = o_custkey and l_orderkey = o_orderkey \
                   and c_nationkey = n_nationkey and n_name = 'KENYA'";
        let q = parse_query(sql).unwrap();
        let mut bq = Planner::new(&db)
            .with_rewrite(false)
            .with_optimize(false)
            .bind(&q)
            .unwrap();
        let before = {
            let mut v = schema_names(&bq.core);
            v.sort();
            v
        };
        optimize(&mut bq, &CardHints::default());
        let mut after = schema_names(&bq.core);
        after.sort();
        assert_eq!(before, after);
        // Items must still resolve against the permuted frame.
        assert_eq!(bq.items.len(), 1);
    }

    #[test]
    fn unconnected_from_order_avoids_cross_joins() {
        // Syntactically part joins supplier with no shared key: a cross
        // join in FROM order. The search must route through partsupp.
        let bq = optimized(
            "select count(*) from part, supplier, partsupp \
             where p_partkey = ps_partkey and s_suppkey = ps_suppkey",
        );
        assert_eq!(count_cross_joins(&bq.core), 0, "{:?}", bq.core);
    }

    #[test]
    fn optimization_is_deterministic() {
        let sql = "select n_name, count(*) from customer, orders, lineitem, supplier, nation \
                   where c_custkey = o_custkey and l_orderkey = o_orderkey \
                   and l_suppkey = s_suppkey and c_nationkey = s_nationkey \
                   and s_nationkey = n_nationkey group by n_name";
        let a = crate::ir::explain(&optimized(sql));
        let b = crate::ir::explain(&optimized(sql));
        assert_eq!(a.text, b.text);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn hints_steer_the_join_order() {
        let db = Database::tpch(0.001, 42);
        let sql = "select count(*) from nation, region \
                   where n_regionkey = r_regionkey";
        let q = parse_query(sql).unwrap();
        // Claim nation is tiny and region is huge: the build side must
        // flip relative to the opposite claim.
        let mut small_nation = CardHints::default();
        small_nation.insert(vec!["nation".into()], 1.0);
        small_nation.insert(vec!["region".into()], 1e6);
        let mut small_region = CardHints::default();
        small_region.insert(vec!["nation".into()], 1e6);
        small_region.insert(vec!["region".into()], 1.0);
        let plan_with = |hints: &CardHints| {
            let mut bq = Planner::new(&db).with_optimize(false).bind(&q).unwrap();
            optimize(&mut bq, hints);
            crate::ir::explain(&bq).text
        };
        assert_ne!(plan_with(&small_nation), plan_with(&small_region));
    }

    #[test]
    fn all_tpch_queries_survive_optimization() {
        let db = Database::tpch(0.001, 42);
        for (name, sql) in sqalpel_sql::tpch::all_queries() {
            let q = parse_query(sql).unwrap();
            let mut bq = Planner::new(&db)
                .bind(&q)
                .unwrap_or_else(|e| panic!("{name}: bind failed: {e}"));
            optimize(&mut bq, &CardHints::default());
        }
    }
}
