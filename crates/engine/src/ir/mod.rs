//! The typed logical IR shared by both engines.
//!
//! Binding (`crates/engine/src/plan.rs`) lowers the parser's name-based
//! [`sqalpel_sql::ast::Expr`] into [`Expr`]: column references are resolved
//! to *slots* (positions in the schema of the plan node the expression is
//! evaluated against) with an inferred [`Ty`], names that do not resolve
//! locally become explicit [`Expr::Outer`] references (resolved by climbing
//! the runtime environment chain, which is how correlated subqueries work),
//! and `ORDER BY` aliases become [`Expr::OutputCol`] references into the
//! projected output row.
//!
//! On top of the IR sit the [`rewrite`] rules (fixed point, deterministic
//! order), the cost-based join-order optimizer ([`stats`] load-time
//! column statistics, the [`cost`] cardinality/cost estimator, the
//! [`memo`] DP plan enumerator), and the [`explain`] renderer with its
//! canonical, join-order-invariant plan fingerprint.

pub mod bind;
pub mod cost;
pub mod explain;
pub mod expr;
pub mod memo;
pub mod rewrite;
pub mod stats;

pub use explain::{explain, explain_analyze, explain_estimates, profile_ops, Explain};
pub use expr::{Expr, Ty};
