//! EXPLAIN rendering and canonical plan fingerprints.
//!
//! The rendered text is a deterministic, engine-independent tree of the
//! bound (and rewritten) query — both engines share the binder and
//! rewriter, so `RowStore` and `ColStore` produce identical EXPLAIN output
//! for the same SQL. That makes the golden files engine-agnostic.
//!
//! The fingerprint is an FNV-1a 64-bit hash of a *normalized* rendering:
//! filter conjuncts and join equi pairs are sorted lexicographically, and
//! comparisons with a literal on the left are flipped (with the operator
//! mirrored), so syntactic permutations of the same plan — the kind the
//! grammar explorer's mutations produce — collide on purpose. Everything
//! that can affect the result set (output names, expression structure,
//! join kinds and order, DISTINCT/LIMIT, grouping, ordering) feeds the
//! hash; everything that cannot (live-column lists, rendering whitespace)
//! does not. Both renderings are pure functions of the plan tree, which is
//! itself a deterministic product of parse → bind → rewrite, so a
//! fingerprint is stable across runs, platforms and engines.

use crate::ir::expr::Expr;
use crate::plan::{BoundQuery, Plan};
use crate::profile::{self, NodeMetrics, ProfileShard};
use sqalpel_sql::ast::JoinKind;
use std::fmt::Write;

/// A rendered plan with its canonical fingerprint.
#[derive(Debug, Clone)]
pub struct Explain {
    pub text: String,
    pub fingerprint: u64,
}

impl Explain {
    /// The fingerprint as the 16-digit hex string used on the wire and in
    /// the results table.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }
}

/// Annotation sources threaded through the renderer: an executed
/// profile (ANALYZE actuals) and/or cardinality hints driving the
/// estimator (plan-golden `est_rows`). Neither touches the canonical
/// form, so neither moves the fingerprint.
#[derive(Clone, Copy, Default)]
struct Ann<'a> {
    prof: Option<&'a ProfileShard>,
    est: Option<&'a crate::ir::cost::CardHints>,
}

/// Render a bound query and compute its fingerprint.
pub fn explain(bq: &BoundQuery) -> Explain {
    render(bq, Ann::default())
}

/// Render the same tree annotated with an executed profile. The
/// fingerprint is computed from the canonical form only, so it is
/// identical to the plain [`explain`] fingerprint — ANALYZE never
/// changes plan identity.
pub fn explain_analyze(bq: &BoundQuery, prof: &ProfileShard) -> Explain {
    render(
        bq,
        Ann {
            prof: Some(prof),
            est: None,
        },
    )
}

/// Render the tree with *both* the optimizer's estimated cardinalities
/// (under `hints` — pass empty hints for the cold, stats-only numbers)
/// and the executed actuals side by side. This is the shape the plan
/// goldens pin: estimate-vs-actual drift is visible per operator.
pub fn explain_estimates(
    bq: &BoundQuery,
    prof: &ProfileShard,
    hints: &crate::ir::cost::CardHints,
) -> Explain {
    render(
        bq,
        Ann {
            prof: Some(prof),
            est: Some(hints),
        },
    )
}

fn render(bq: &BoundQuery, ann: Ann) -> Explain {
    let mut text = String::new();
    render_query(bq, 0, &mut text, ann);
    let mut canon = String::new();
    canon_query(bq, &mut canon);
    Explain {
        fingerprint: fnv1a(&canon),
        text,
    }
}

/// Flat list of `(operator label, metrics)` in render order — the shape
/// the platform ships over the wire (labels like `select`,
/// `scan lineitem`, `filter`, `join inner`, `derived d`, `cte scan c`).
pub fn profile_ops(bq: &BoundQuery, prof: &ProfileShard) -> Vec<(String, NodeMetrics)> {
    let mut out = Vec::new();
    ops_query(bq, prof, &mut out);
    out
}

fn ops_query(bq: &BoundQuery, prof: &ProfileShard, out: &mut Vec<(String, NodeMetrics)>) {
    let m = prof.get(profile::node_key(bq)).copied().unwrap_or_default();
    out.push(("select".to_string(), m));
    for (_, body) in &bq.ctes {
        ops_query(body, prof, out);
    }
    ops_plan(&bq.core, prof, out);
}

fn ops_plan(p: &Plan, prof: &ProfileShard, out: &mut Vec<(String, NodeMetrics)>) {
    let m = prof.get(profile::node_key(p)).copied().unwrap_or_default();
    match p {
        Plan::Scan { table, .. } => out.push((format!("scan {}", table.name), m)),
        Plan::Derived { query, binding } => {
            out.push((format!("derived {binding}"), m));
            ops_query(query, prof, out);
        }
        Plan::Cte { name, .. } => out.push((format!("cte scan {name}"), m)),
        Plan::Filter { input, .. } => {
            out.push(("filter".to_string(), m));
            ops_plan(input, prof, out);
        }
        Plan::Join {
            left, right, kind, ..
        } => {
            let kname = match kind {
                JoinKind::Inner => "inner",
                JoinKind::LeftOuter => "left outer",
            };
            out.push((format!("join {kname}"), m));
            ops_plan(left, prof, out);
            ops_plan(right, prof, out);
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------------ EXPLAIN text

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Append the ANALYZE annotation for `node` when rendering a profile.
/// Nodes the execution never reached (short-circuited subtrees) are
/// marked rather than silently skipped.
fn annotate<T>(out: &mut String, prof: Option<&ProfileShard>, node: &T) {
    let Some(prof) = prof else { return };
    match prof.get(profile::node_key(node)) {
        Some(m) => {
            let _ = write!(
                out,
                " (rows_in={} rows_out={} batches={} time={}ns",
                m.rows_in, m.rows_out, m.batches, m.nanos
            );
            // Zone-map effectiveness, present only where chunked storage
            // was actually consulted (column-engine scans).
            if m.chunks_scanned + m.chunks_skipped > 0 {
                let _ = write!(
                    out,
                    " chunks_scanned={} chunks_skipped={}",
                    m.chunks_scanned, m.chunks_skipped
                );
            }
            out.push(')');
        }
        None => out.push_str(" (not executed)"),
    }
}

/// Plan-node annotation: the estimator's prediction first (when hints
/// are being rendered), then the executed actuals. Estimates are
/// rounded to whole rows — the goldens pin drift direction, not float
/// noise.
fn annotate_plan(out: &mut String, ann: Ann, p: &Plan) {
    if let Some(h) = ann.est {
        let _ = write!(out, " (est_rows={:.0})", crate::ir::memo::estimated_rows(p, h));
    }
    annotate(out, ann.prof, p);
}

fn render_query(bq: &BoundQuery, level: usize, out: &mut String, ann: Ann) {
    indent(out, level);
    out.push_str("select");
    if bq.distinct {
        out.push_str(" distinct");
    }
    if bq.aggregated {
        out.push_str(" aggregate");
    }
    if let Some(n) = bq.limit {
        let _ = write!(out, " limit {n}");
    }
    annotate(out, ann.prof, bq);
    out.push('\n');
    indent(out, level + 1);
    out.push_str("output:");
    for it in &bq.items {
        let _ = write!(out, " {}={} ({})", it.name, it.expr, it.ty);
    }
    out.push('\n');
    if !bq.group_by.is_empty() {
        indent(out, level + 1);
        out.push_str("group by:");
        for g in &bq.group_by {
            let _ = write!(out, " {g}");
        }
        out.push('\n');
    }
    if let Some(h) = &bq.having {
        indent(out, level + 1);
        let _ = writeln!(out, "having: {h}");
    }
    if !bq.order_by.is_empty() {
        indent(out, level + 1);
        out.push_str("order by:");
        for (k, desc) in &bq.order_by {
            let _ = write!(out, " {k}{}", if *desc { " desc" } else { "" });
        }
        out.push('\n');
    }
    for (name, body) in &bq.ctes {
        indent(out, level + 1);
        let _ = writeln!(out, "cte {name}:");
        render_query(body, level + 2, out, ann);
    }
    render_plan(&bq.core, level + 1, out, ann);
}

fn render_plan(p: &Plan, level: usize, out: &mut String, ann: Ann) {
    match p {
        Plan::Scan {
            table,
            binding,
            live,
        } => {
            indent(out, level);
            let _ = write!(out, "scan {}", table.name);
            if binding != &table.name {
                let _ = write!(out, " as {binding}");
            }
            out.push_str(" [");
            for (i, &ci) in live.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&table.columns[ci].name);
            }
            out.push(']');
            annotate_plan(out, ann, p);
            out.push('\n');
        }
        Plan::Derived { query, binding } => {
            indent(out, level);
            let _ = write!(out, "derived {binding}");
            annotate_plan(out, ann, p);
            out.push('\n');
            render_query(query, level + 1, out, ann);
        }
        Plan::Cte { name, binding, .. } => {
            indent(out, level);
            let _ = write!(out, "cte scan {name}");
            if binding != name {
                let _ = write!(out, " as {binding}");
            }
            annotate_plan(out, ann, p);
            out.push('\n');
        }
        Plan::Filter { input, predicate } => {
            indent(out, level);
            let _ = write!(out, "filter {predicate}");
            annotate_plan(out, ann, p);
            out.push('\n');
            render_plan(input, level + 1, out, ann);
        }
        Plan::Join {
            left,
            right,
            kind,
            equi,
            residual,
        } => {
            indent(out, level);
            let kname = match kind {
                JoinKind::Inner => "inner",
                JoinKind::LeftOuter => "left outer",
            };
            let _ = write!(out, "join {kname}");
            if !equi.is_empty() {
                out.push_str(" on");
                for (i, (l, r)) in equi.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" and");
                    }
                    let _ = write!(out, " {l} = {r}");
                }
            }
            if let Some(r) = residual {
                let _ = write!(out, " residual {r}");
            }
            annotate_plan(out, ann, p);
            out.push('\n');
            render_plan(left, level + 1, out, ann);
            render_plan(right, level + 1, out, ann);
        }
    }
}

// ------------------------------------------------- canonical (fingerprint)
//
// The canonical form must be *join-order-invariant*: the cost-based
// optimizer permutes inner-join trees (and with them every slot number),
// and a fingerprint that moved with the join order would split the plan
// cache and the feedback store by physical order. Two devices achieve
// invariance:
//
// 1. Slots are never hashed raw. Every expression is rendered after
//    remapping each slot to the *rank* of its qualified `binding.column`
//    name in the sorted name list of the schema it is evaluated against.
//    Schemas on both sides of an optimizer run are permutations of the
//    same qualified-name set, so ranks are identical.
// 2. Maximal inner-join regions (plus filters directly above them) are
//    flattened: sorted leaf canons + sorted predicate canons, with
//    single-leaf predicates sunk into their leaf and equality predicates
//    rendered with their sides in sorted order. The join *tree* never
//    reaches the hash — only the region's contents do.

/// Slot → rank of the slot's qualified name in the sorted schema.
fn ranks(schema: &[crate::plan::ColMeta]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..schema.len()).collect();
    idx.sort_by(|&a, &b| {
        (&schema[a].binding, &schema[a].name).cmp(&(&schema[b].binding, &schema[b].name))
    });
    let mut rank = vec![0usize; schema.len()];
    for (r, &i) in idx.iter().enumerate() {
        rank[i] = r;
    }
    rank
}

/// Normalize an expression for fingerprinting: slots become name ranks,
/// and comparisons with a literal on the left flip to literal-on-right
/// with the operator mirrored.
fn canon_expr_at(e: &Expr, rank: &[usize]) -> String {
    let mut n = normalized(e);
    n.map_slots(&|s| rank.get(s).copied().unwrap_or(s));
    n.to_string()
}

/// Predicate rendering: like [`canon_expr_at`], but a top-level equality
/// additionally sorts its two sides — the optimizer may emit `a = b` or
/// `b = a` for the same join edge depending on which side builds.
fn canon_pred_at(e: &Expr, rank: &[usize]) -> String {
    use sqalpel_sql::ast::BinOp;
    let mut n = normalized(e);
    n.map_slots(&|s| rank.get(s).copied().unwrap_or(s));
    if let Expr::Binary {
        left,
        op: BinOp::Eq,
        right,
    } = &n
    {
        let a = left.to_string();
        let b = right.to_string();
        return if a <= b {
            format!("({a} = {b})")
        } else {
            format!("({b} = {a})")
        };
    }
    n.to_string()
}

fn normalized(e: &Expr) -> Expr {
    let mut e = e.clone();
    normalize_in_place(&mut e);
    e
}

fn normalize_in_place(e: &mut Expr) {
    use sqalpel_sql::ast::BinOp;
    // Children first (normalization is structural, subqueries stay as-is).
    match e {
        Expr::Unary { expr, .. }
        | Expr::Extract { expr, .. }
        | Expr::IsNull { expr, .. }
        | Expr::InSubquery { expr, .. } => normalize_in_place(expr),
        Expr::Binary { left, right, .. } => {
            normalize_in_place(left);
            normalize_in_place(right);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            normalize_in_place(expr);
            normalize_in_place(low);
            normalize_in_place(high);
        }
        Expr::InList { expr, list, .. } => {
            normalize_in_place(expr);
            for x in list {
                normalize_in_place(x);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            normalize_in_place(expr);
            normalize_in_place(pattern);
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(o) = operand {
                normalize_in_place(o);
            }
            for (w, t) in branches {
                normalize_in_place(w);
                normalize_in_place(t);
            }
            if let Some(x) = else_branch {
                normalize_in_place(x);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                normalize_in_place(a);
            }
        }
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            normalize_in_place(expr);
            normalize_in_place(start);
            if let Some(l) = length {
                normalize_in_place(l);
            }
        }
        _ => {}
    }
    if let Expr::Binary { left, op, right } = e {
        let mirrored = match op {
            BinOp::Eq => Some(BinOp::Eq),
            BinOp::NotEq => Some(BinOp::NotEq),
            BinOp::Lt => Some(BinOp::Gt),
            BinOp::LtEq => Some(BinOp::GtEq),
            BinOp::Gt => Some(BinOp::Lt),
            BinOp::GtEq => Some(BinOp::LtEq),
            _ => None,
        };
        if let Some(m) = mirrored {
            if matches!(left.as_ref(), Expr::Literal(_) | Expr::Bool(_))
                && !matches!(right.as_ref(), Expr::Literal(_) | Expr::Bool(_))
            {
                std::mem::swap(left, right);
                *op = m;
            }
        }
    }
}

fn canon_query(bq: &BoundQuery, out: &mut String) {
    let rank = ranks(&bq.core.schema());
    let _ = write!(
        out,
        "q distinct={} agg={} limit={:?};",
        bq.distinct, bq.aggregated, bq.limit
    );
    for it in &bq.items {
        let _ = write!(out, "item {}={};", it.name, canon_expr_at(&it.expr, &rank));
    }
    for g in &bq.group_by {
        let _ = write!(out, "group {};", canon_expr_at(g, &rank));
    }
    if let Some(h) = &bq.having {
        let _ = write!(out, "having {};", canon_expr_at(h, &rank));
    }
    for (k, desc) in &bq.order_by {
        let _ = write!(out, "order {} {};", canon_expr_at(k, &rank), desc);
    }
    for (name, body) in &bq.ctes {
        let _ = write!(out, "cte {name}[");
        canon_query(body, out);
        out.push_str("];");
    }
    canon_plan(&bq.core, out);
}

/// Is `p` an inner-join region (an inner join, possibly under filters)?
fn is_region_root(p: &Plan) -> bool {
    match p {
        Plan::Join {
            kind: JoinKind::Inner,
            ..
        } => true,
        Plan::Filter { input, .. } => is_region_root(input),
        _ => false,
    }
}

fn canon_plan(p: &Plan, out: &mut String) {
    if is_region_root(p) {
        canon_region(p, out);
        return;
    }
    match p {
        Plan::Scan { table, binding, .. } => {
            // Live-column lists are a physical detail: two fingerprints
            // must collide whenever the result sets must agree.
            let _ = write!(out, "scan {} {};", table.name, binding);
        }
        Plan::Derived { query, binding } => {
            let _ = write!(out, "derived {binding}[");
            canon_query(query, out);
            out.push_str("];");
        }
        Plan::Cte { name, binding, .. } => {
            let _ = write!(out, "ctescan {name} {binding};");
        }
        Plan::Filter { .. } => {
            // Merge the whole filter chain: `filter a (filter b X)` and
            // `filter a AND b X` are the same plan.
            let mut conjs: Vec<&Expr> = Vec::new();
            let mut base = p;
            while let Plan::Filter { input, predicate } = base {
                conjs.extend(predicate.conjuncts());
                base = input;
            }
            let rank = ranks(&base.schema());
            let mut cs: Vec<String> = conjs.iter().map(|c| canon_pred_at(c, &rank)).collect();
            cs.sort();
            let _ = write!(out, "filter {};", cs.join(" AND "));
            canon_plan(base, out);
        }
        Plan::Join {
            left,
            right,
            kind,
            equi,
            residual,
        } => {
            // Only outer joins reach here (inner joins are regions); the
            // sides of an outer join never swap, but the subtrees may
            // have been permuted internally, so slots still rank-remap.
            let lrank = ranks(&left.schema());
            let rrank = ranks(&right.schema());
            let mut pairs: Vec<String> = equi
                .iter()
                .map(|(l, r)| {
                    format!(
                        "{}={}",
                        canon_expr_at(l, &lrank),
                        canon_expr_at(r, &rrank)
                    )
                })
                .collect();
            pairs.sort();
            let _ = write!(out, "join {kind:?} [{}]", pairs.join(","));
            if let Some(r) = residual {
                let rank = ranks(&p.schema());
                let mut cs: Vec<String> = r
                    .conjuncts()
                    .iter()
                    .map(|c| canon_pred_at(c, &rank))
                    .collect();
                cs.sort();
                let _ = write!(out, " residual [{}]", cs.join(" AND "));
            }
            out.push(';');
            out.push('(');
            canon_plan(left, out);
            out.push_str(")(");
            canon_plan(right, out);
            out.push(')');
        }
    }
}

/// A leaf of a flattened inner-join region: the subtree, its span in the
/// region frame, and any single-leaf region predicates sunk onto it.
struct CanonLeaf<'a> {
    plan: &'a Plan,
    off: usize,
    width: usize,
    extra: Vec<Expr>,
}

/// Render a maximal inner-join region in join-order-invariant form:
/// sorted leaf canons plus sorted region predicates over the region
/// frame's name ranks. Mirrors the optimizer's own flatten
/// ([`crate::ir::memo`]) so optimized and syntactic-order plans collide.
fn canon_region(p: &Plan, out: &mut String) {
    let rank = ranks(&p.schema());
    let mut leaves: Vec<CanonLeaf> = Vec::new();
    let mut preds: Vec<Expr> = Vec::new();
    collect_region(p, 0, &mut leaves, &mut preds);
    // Sink movable single-leaf predicates into their leaf — the
    // optimizer evaluates them there, the syntactic plan may hold them
    // on a join; both must hash alike.
    let mut pool: Vec<Expr> = Vec::new();
    'next: for e in preds {
        let slots = e.slots();
        if !e.contains_subquery() && !slots.is_empty() {
            for lf in leaves.iter_mut() {
                if slots.iter().all(|&s| s >= lf.off && s < lf.off + lf.width) {
                    let off = lf.off;
                    let mut local = e.clone();
                    local.map_slots(&|s| s - off);
                    lf.extra.push(local);
                    continue 'next;
                }
            }
        }
        pool.push(e);
    }
    let mut leaf_strs: Vec<String> = leaves.iter().map(canon_leaf).collect();
    leaf_strs.sort();
    let mut pred_strs: Vec<String> = pool.iter().map(|e| canon_pred_at(e, &rank)).collect();
    pred_strs.sort();
    let _ = write!(
        out,
        "region [{}] where [{}];",
        leaf_strs.join("|"),
        pred_strs.join(" AND ")
    );
}

/// Flatten the region in-order: leaves keep their subtree, predicates
/// (equi pairs, residuals, filters above inner joins) shift into the
/// region frame. Returns the subtree's width in the frame.
fn collect_region<'a>(
    p: &'a Plan,
    off: usize,
    leaves: &mut Vec<CanonLeaf<'a>>,
    preds: &mut Vec<Expr>,
) -> usize {
    match p {
        Plan::Join {
            kind: JoinKind::Inner,
            left,
            right,
            equi,
            residual,
        } => {
            let lw = collect_region(left, off, leaves, preds);
            let rw = collect_region(right, off + lw, leaves, preds);
            for (l, r) in equi {
                preds.push(Expr::eq_pair(l.shifted(off), r.shifted(off + lw)));
            }
            if let Some(res) = residual {
                for c in res.conjuncts() {
                    preds.push(c.shifted(off));
                }
            }
            lw + rw
        }
        Plan::Filter { input, predicate } if is_region_root(input) => {
            let w = collect_region(input, off, leaves, preds);
            for c in predicate.conjuncts() {
                preds.push(c.shifted(off));
            }
            w
        }
        _ => {
            let width = p.schema().len();
            leaves.push(CanonLeaf {
                plan: p,
                off,
                width,
                extra: Vec::new(),
            });
            width
        }
    }
}

/// One region leaf's canon: its filter chain (plus sunk region
/// predicates) merged and sorted over the leaf base's name ranks,
/// rendered exactly like a standalone filtered plan.
fn canon_leaf(lf: &CanonLeaf) -> String {
    let mut all: Vec<Expr> = lf.extra.clone();
    let mut base = lf.plan;
    while let Plan::Filter { input, predicate } = base {
        all.extend(predicate.conjuncts().into_iter().cloned());
        base = input;
    }
    let mut s = String::new();
    if !all.is_empty() {
        let rank = ranks(&base.schema());
        let mut cs: Vec<String> = all.iter().map(|c| canon_pred_at(c, &rank)).collect();
        cs.sort();
        let _ = write!(s, "filter {};", cs.join(" AND "));
    }
    canon_plan(base, &mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use crate::storage::Database;
    use sqalpel_sql::parse_query;

    fn explain_sql(sql: &str) -> Explain {
        let db = Database::tpch(0.001, 42);
        let q = parse_query(sql).unwrap();
        explain(&Planner::new(&db).bind(&q).unwrap())
    }

    #[test]
    fn fingerprints_are_stable_and_text_is_deterministic() {
        let a = explain_sql("select n_name from nation where n_regionkey = 1");
        let b = explain_sql("select n_name from nation where n_regionkey = 1");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.text, b.text);
        assert_eq!(a.fingerprint_hex().len(), 16);
    }

    #[test]
    fn flipped_comparisons_collide() {
        let a = explain_sql("select n_name from nation where n_regionkey < 2");
        let b = explain_sql("select n_name from nation where 2 > n_regionkey");
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn reordered_conjuncts_collide() {
        let a = explain_sql(
            "select n_name from nation where n_regionkey = 1 and n_nationkey > 3",
        );
        let b = explain_sql(
            "select n_name from nation where n_nationkey > 3 and n_regionkey = 1",
        );
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn different_predicates_do_not_collide() {
        let a = explain_sql("select n_name from nation where n_regionkey = 1");
        let b = explain_sql("select n_name from nation where n_regionkey = 2");
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn output_names_feed_the_fingerprint() {
        let a = explain_sql("select n_name as a from nation");
        let b = explain_sql("select n_name as b from nation");
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn fingerprints_are_join_order_invariant() {
        // The optimizer reorders this FROM list (part × supplier is a
        // cross join as written); the fingerprint must not move, while
        // the rendered plan visibly does.
        let db = Database::tpch(0.001, 42);
        let sql = "select n_name, count(*) from part, supplier, partsupp, nation \
                   where ps_partkey = p_partkey and ps_suppkey = s_suppkey \
                   and s_nationkey = n_nationkey and p_size < 15 \
                   group by n_name order by n_name";
        let q = parse_query(sql).unwrap();
        let opt = explain(&Planner::new(&db).bind(&q).unwrap());
        let raw = explain(
            &Planner::new(&db)
                .with_optimize(false)
                .bind(&q)
                .unwrap(),
        );
        assert_ne!(opt.text, raw.text, "optimizer should reorder this join");
        assert_eq!(opt.fingerprint, raw.fingerprint);
    }

    #[test]
    fn syntactic_join_permutations_collide() {
        // Same query, FROM list permuted by hand: different syntactic
        // trees, same region — with the optimizer off on both sides.
        let db = Database::tpch(0.001, 42);
        let mk = |from: &str| {
            let sql = format!(
                "select s_name from {from} \
                 where s_suppkey = ps_suppkey and ps_partkey = p_partkey \
                 and p_size = 15 order by s_name"
            );
            let q = parse_query(&sql).unwrap();
            explain(&Planner::new(&db).with_optimize(false).bind(&q).unwrap())
        };
        let a = mk("supplier, partsupp, part");
        let b = mk("part, partsupp, supplier");
        assert_eq!(a.fingerprint, b.fingerprint);
    }
}
