//! EXPLAIN rendering and canonical plan fingerprints.
//!
//! The rendered text is a deterministic, engine-independent tree of the
//! bound (and rewritten) query — both engines share the binder and
//! rewriter, so `RowStore` and `ColStore` produce identical EXPLAIN output
//! for the same SQL. That makes the golden files engine-agnostic.
//!
//! The fingerprint is an FNV-1a 64-bit hash of a *normalized* rendering:
//! filter conjuncts and join equi pairs are sorted lexicographically, and
//! comparisons with a literal on the left are flipped (with the operator
//! mirrored), so syntactic permutations of the same plan — the kind the
//! grammar explorer's mutations produce — collide on purpose. Everything
//! that can affect the result set (output names, expression structure,
//! join kinds and order, DISTINCT/LIMIT, grouping, ordering) feeds the
//! hash; everything that cannot (live-column lists, rendering whitespace)
//! does not. Both renderings are pure functions of the plan tree, which is
//! itself a deterministic product of parse → bind → rewrite, so a
//! fingerprint is stable across runs, platforms and engines.

use crate::ir::expr::Expr;
use crate::plan::{BoundQuery, Plan};
use crate::profile::{self, NodeMetrics, ProfileShard};
use sqalpel_sql::ast::JoinKind;
use std::fmt::Write;

/// A rendered plan with its canonical fingerprint.
#[derive(Debug, Clone)]
pub struct Explain {
    pub text: String,
    pub fingerprint: u64,
}

impl Explain {
    /// The fingerprint as the 16-digit hex string used on the wire and in
    /// the results table.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }
}

/// Render a bound query and compute its fingerprint.
pub fn explain(bq: &BoundQuery) -> Explain {
    render(bq, None)
}

/// Render the same tree annotated with an executed profile. The
/// fingerprint is computed from the canonical form only, so it is
/// identical to the plain [`explain`] fingerprint — ANALYZE never
/// changes plan identity.
pub fn explain_analyze(bq: &BoundQuery, prof: &ProfileShard) -> Explain {
    render(bq, Some(prof))
}

fn render(bq: &BoundQuery, prof: Option<&ProfileShard>) -> Explain {
    let mut text = String::new();
    render_query(bq, 0, &mut text, prof);
    let mut canon = String::new();
    canon_query(bq, &mut canon);
    Explain {
        fingerprint: fnv1a(&canon),
        text,
    }
}

/// Flat list of `(operator label, metrics)` in render order — the shape
/// the platform ships over the wire (labels like `select`,
/// `scan lineitem`, `filter`, `join inner`, `derived d`, `cte scan c`).
pub fn profile_ops(bq: &BoundQuery, prof: &ProfileShard) -> Vec<(String, NodeMetrics)> {
    let mut out = Vec::new();
    ops_query(bq, prof, &mut out);
    out
}

fn ops_query(bq: &BoundQuery, prof: &ProfileShard, out: &mut Vec<(String, NodeMetrics)>) {
    let m = prof.get(profile::node_key(bq)).copied().unwrap_or_default();
    out.push(("select".to_string(), m));
    for (_, body) in &bq.ctes {
        ops_query(body, prof, out);
    }
    ops_plan(&bq.core, prof, out);
}

fn ops_plan(p: &Plan, prof: &ProfileShard, out: &mut Vec<(String, NodeMetrics)>) {
    let m = prof.get(profile::node_key(p)).copied().unwrap_or_default();
    match p {
        Plan::Scan { table, .. } => out.push((format!("scan {}", table.name), m)),
        Plan::Derived { query, binding } => {
            out.push((format!("derived {binding}"), m));
            ops_query(query, prof, out);
        }
        Plan::Cte { name, .. } => out.push((format!("cte scan {name}"), m)),
        Plan::Filter { input, .. } => {
            out.push(("filter".to_string(), m));
            ops_plan(input, prof, out);
        }
        Plan::Join {
            left, right, kind, ..
        } => {
            let kname = match kind {
                JoinKind::Inner => "inner",
                JoinKind::LeftOuter => "left outer",
            };
            out.push((format!("join {kname}"), m));
            ops_plan(left, prof, out);
            ops_plan(right, prof, out);
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------------ EXPLAIN text

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Append the ANALYZE annotation for `node` when rendering a profile.
/// Nodes the execution never reached (short-circuited subtrees) are
/// marked rather than silently skipped.
fn annotate<T>(out: &mut String, prof: Option<&ProfileShard>, node: &T) {
    let Some(prof) = prof else { return };
    match prof.get(profile::node_key(node)) {
        Some(m) => {
            let _ = write!(
                out,
                " (rows_in={} rows_out={} batches={} time={}ns",
                m.rows_in, m.rows_out, m.batches, m.nanos
            );
            // Zone-map effectiveness, present only where chunked storage
            // was actually consulted (column-engine scans).
            if m.chunks_scanned + m.chunks_skipped > 0 {
                let _ = write!(
                    out,
                    " chunks_scanned={} chunks_skipped={}",
                    m.chunks_scanned, m.chunks_skipped
                );
            }
            out.push(')');
        }
        None => out.push_str(" (not executed)"),
    }
}

fn render_query(bq: &BoundQuery, level: usize, out: &mut String, prof: Option<&ProfileShard>) {
    indent(out, level);
    out.push_str("select");
    if bq.distinct {
        out.push_str(" distinct");
    }
    if bq.aggregated {
        out.push_str(" aggregate");
    }
    if let Some(n) = bq.limit {
        let _ = write!(out, " limit {n}");
    }
    annotate(out, prof, bq);
    out.push('\n');
    indent(out, level + 1);
    out.push_str("output:");
    for it in &bq.items {
        let _ = write!(out, " {}={} ({})", it.name, it.expr, it.ty);
    }
    out.push('\n');
    if !bq.group_by.is_empty() {
        indent(out, level + 1);
        out.push_str("group by:");
        for g in &bq.group_by {
            let _ = write!(out, " {g}");
        }
        out.push('\n');
    }
    if let Some(h) = &bq.having {
        indent(out, level + 1);
        let _ = writeln!(out, "having: {h}");
    }
    if !bq.order_by.is_empty() {
        indent(out, level + 1);
        out.push_str("order by:");
        for (k, desc) in &bq.order_by {
            let _ = write!(out, " {k}{}", if *desc { " desc" } else { "" });
        }
        out.push('\n');
    }
    for (name, body) in &bq.ctes {
        indent(out, level + 1);
        let _ = writeln!(out, "cte {name}:");
        render_query(body, level + 2, out, prof);
    }
    render_plan(&bq.core, level + 1, out, prof);
}

fn render_plan(p: &Plan, level: usize, out: &mut String, prof: Option<&ProfileShard>) {
    match p {
        Plan::Scan {
            table,
            binding,
            live,
        } => {
            indent(out, level);
            let _ = write!(out, "scan {}", table.name);
            if binding != &table.name {
                let _ = write!(out, " as {binding}");
            }
            out.push_str(" [");
            for (i, &ci) in live.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&table.columns[ci].name);
            }
            out.push(']');
            annotate(out, prof, p);
            out.push('\n');
        }
        Plan::Derived { query, binding } => {
            indent(out, level);
            let _ = write!(out, "derived {binding}");
            annotate(out, prof, p);
            out.push('\n');
            render_query(query, level + 1, out, prof);
        }
        Plan::Cte { name, binding, .. } => {
            indent(out, level);
            let _ = write!(out, "cte scan {name}");
            if binding != name {
                let _ = write!(out, " as {binding}");
            }
            annotate(out, prof, p);
            out.push('\n');
        }
        Plan::Filter { input, predicate } => {
            indent(out, level);
            let _ = write!(out, "filter {predicate}");
            annotate(out, prof, p);
            out.push('\n');
            render_plan(input, level + 1, out, prof);
        }
        Plan::Join {
            left,
            right,
            kind,
            equi,
            residual,
        } => {
            indent(out, level);
            let kname = match kind {
                JoinKind::Inner => "inner",
                JoinKind::LeftOuter => "left outer",
            };
            let _ = write!(out, "join {kname}");
            if !equi.is_empty() {
                out.push_str(" on");
                for (i, (l, r)) in equi.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" and");
                    }
                    let _ = write!(out, " {l} = {r}");
                }
            }
            if let Some(r) = residual {
                let _ = write!(out, " residual {r}");
            }
            annotate(out, prof, p);
            out.push('\n');
            render_plan(left, level + 1, out, prof);
            render_plan(right, level + 1, out, prof);
        }
    }
}

// ------------------------------------------------- canonical (fingerprint)

/// Normalize an expression for fingerprinting: comparisons with a literal
/// on the left flip to literal-on-right with the operator mirrored.
fn canon_expr(e: &Expr) -> String {
    normalized(e).to_string()
}

fn normalized(e: &Expr) -> Expr {
    let mut e = e.clone();
    normalize_in_place(&mut e);
    e
}

fn normalize_in_place(e: &mut Expr) {
    use sqalpel_sql::ast::BinOp;
    // Children first (normalization is structural, subqueries stay as-is).
    match e {
        Expr::Unary { expr, .. }
        | Expr::Extract { expr, .. }
        | Expr::IsNull { expr, .. }
        | Expr::InSubquery { expr, .. } => normalize_in_place(expr),
        Expr::Binary { left, right, .. } => {
            normalize_in_place(left);
            normalize_in_place(right);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            normalize_in_place(expr);
            normalize_in_place(low);
            normalize_in_place(high);
        }
        Expr::InList { expr, list, .. } => {
            normalize_in_place(expr);
            for x in list {
                normalize_in_place(x);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            normalize_in_place(expr);
            normalize_in_place(pattern);
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(o) = operand {
                normalize_in_place(o);
            }
            for (w, t) in branches {
                normalize_in_place(w);
                normalize_in_place(t);
            }
            if let Some(x) = else_branch {
                normalize_in_place(x);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                normalize_in_place(a);
            }
        }
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            normalize_in_place(expr);
            normalize_in_place(start);
            if let Some(l) = length {
                normalize_in_place(l);
            }
        }
        _ => {}
    }
    if let Expr::Binary { left, op, right } = e {
        let mirrored = match op {
            BinOp::Eq => Some(BinOp::Eq),
            BinOp::NotEq => Some(BinOp::NotEq),
            BinOp::Lt => Some(BinOp::Gt),
            BinOp::LtEq => Some(BinOp::GtEq),
            BinOp::Gt => Some(BinOp::Lt),
            BinOp::GtEq => Some(BinOp::LtEq),
            _ => None,
        };
        if let Some(m) = mirrored {
            if matches!(left.as_ref(), Expr::Literal(_) | Expr::Bool(_))
                && !matches!(right.as_ref(), Expr::Literal(_) | Expr::Bool(_))
            {
                std::mem::swap(left, right);
                *op = m;
            }
        }
    }
}

fn canon_query(bq: &BoundQuery, out: &mut String) {
    let _ = write!(
        out,
        "q distinct={} agg={} limit={:?};",
        bq.distinct, bq.aggregated, bq.limit
    );
    for it in &bq.items {
        let _ = write!(out, "item {}={};", it.name, canon_expr(&it.expr));
    }
    for g in &bq.group_by {
        let _ = write!(out, "group {};", canon_expr(g));
    }
    if let Some(h) = &bq.having {
        let _ = write!(out, "having {};", canon_expr(h));
    }
    for (k, desc) in &bq.order_by {
        let _ = write!(out, "order {} {};", canon_expr(k), desc);
    }
    for (name, body) in &bq.ctes {
        let _ = write!(out, "cte {name}[");
        canon_query(body, out);
        out.push_str("];");
    }
    canon_plan(&bq.core, out);
}

fn canon_plan(p: &Plan, out: &mut String) {
    match p {
        Plan::Scan { table, binding, .. } => {
            // Live-column lists are a physical detail: two fingerprints
            // must collide whenever the result sets must agree.
            let _ = write!(out, "scan {} {};", table.name, binding);
        }
        Plan::Derived { query, binding } => {
            let _ = write!(out, "derived {binding}[");
            canon_query(query, out);
            out.push_str("];");
        }
        Plan::Cte { name, binding, .. } => {
            let _ = write!(out, "ctescan {name} {binding};");
        }
        Plan::Filter { input, predicate } => {
            let mut cs: Vec<String> = predicate.conjuncts().iter().map(|c| canon_expr(c)).collect();
            cs.sort();
            let _ = write!(out, "filter {};", cs.join(" AND "));
            canon_plan(input, out);
        }
        Plan::Join {
            left,
            right,
            kind,
            equi,
            residual,
        } => {
            let mut pairs: Vec<String> = equi
                .iter()
                .map(|(l, r)| format!("{}={}", canon_expr(l), canon_expr(r)))
                .collect();
            pairs.sort();
            let _ = write!(out, "join {kind:?} [{}]", pairs.join(","));
            if let Some(r) = residual {
                let mut cs: Vec<String> =
                    r.conjuncts().iter().map(|c| canon_expr(c)).collect();
                cs.sort();
                let _ = write!(out, " residual [{}]", cs.join(" AND "));
            }
            out.push(';');
            out.push('(');
            canon_plan(left, out);
            out.push_str(")(");
            canon_plan(right, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use crate::storage::Database;
    use sqalpel_sql::parse_query;

    fn explain_sql(sql: &str) -> Explain {
        let db = Database::tpch(0.001, 42);
        let q = parse_query(sql).unwrap();
        explain(&Planner::new(&db).bind(&q).unwrap())
    }

    #[test]
    fn fingerprints_are_stable_and_text_is_deterministic() {
        let a = explain_sql("select n_name from nation where n_regionkey = 1");
        let b = explain_sql("select n_name from nation where n_regionkey = 1");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.text, b.text);
        assert_eq!(a.fingerprint_hex().len(), 16);
    }

    #[test]
    fn flipped_comparisons_collide() {
        let a = explain_sql("select n_name from nation where n_regionkey < 2");
        let b = explain_sql("select n_name from nation where 2 > n_regionkey");
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn reordered_conjuncts_collide() {
        let a = explain_sql(
            "select n_name from nation where n_regionkey = 1 and n_nationkey > 3",
        );
        let b = explain_sql(
            "select n_name from nation where n_nationkey > 3 and n_regionkey = 1",
        );
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn different_predicates_do_not_collide() {
        let a = explain_sql("select n_name from nation where n_regionkey = 1");
        let b = explain_sql("select n_name from nation where n_regionkey = 2");
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn output_names_feed_the_fingerprint() {
        let a = explain_sql("select n_name as a from nation");
        let b = explain_sql("select n_name as b from nation");
        assert_ne!(a.fingerprint, b.fingerprint);
    }
}
