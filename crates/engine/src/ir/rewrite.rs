//! Rule-based plan rewriter: fixed point, deterministic rule order.
//!
//! Rules (applied bottom-up, then repeated until no rule fires, capped at
//! ten passes):
//!
//! 1. **Constant folding** — checked integer arithmetic, boolean logic on
//!    folded constants, `IS NULL` of literals, literal comparisons. Float
//!    and decimal arithmetic is never folded (the engines' arithmetic modes
//!    differ and results must stay byte-identical).
//! 2. **Trivial-filter elimination** — `TRUE` conjuncts are dropped and
//!    empty filters removed. `FALSE` filters are *kept*: an empty result
//!    still has a defined shape.
//! 3. **Duplicate conjunct elimination** — by canonical (slot-based)
//!    rendering, keeping the first occurrence; likewise duplicate equi
//!    pairs on joins. Subquery conjuncts are never deduplicated (their
//!    evaluation is budgeted and cached per expression).
//! 4. **Filter merging** — chained filters collapse into one conjunction,
//!    inner conjuncts first (preserving evaluation order).
//! 5. **Predicate pushdown through joins** — single-side conjuncts move
//!    below the join (left side also through LEFT OUTER joins: null-padded
//!    rows carry real left values, so filtering the left input is
//!    equivalent); inner-join ON-residual conjuncts likewise.
//! 6. **Pushdown into derived tables** — conjuncts over a derived table's
//!    output are substituted through its projection and pushed inside,
//!    unless the derived query aggregates or has a LIMIT.
//! 7. **Pushdown into CTEs** — same, but only when the CTE is scanned
//!    exactly once in the whole tree, is not shadowed, and is not
//!    referenced by any lazily-bound subquery.
//!
//! Predicates containing subqueries never move (correlation binds against
//! the environment they were planned for); predicates containing outer
//! references never move *into* a subtree with a different local schema
//! (outer resolution scans the local schema first).
//!
//! After the fixed point, [`prune`] walks the tree once computing column
//! liveness and shrinks every [`Plan::Scan`] to its live columns.

use crate::ir::bind::{collect_query_names, collect_query_tables};
use crate::ir::expr::{Expr, Ty};
use crate::plan::{BoundQuery, OutputItem, Plan, Schema};
use sqalpel_sql::ast::{BinOp, JoinKind, Literal, UnaryOp};
use std::collections::HashSet;
use std::mem;

/// Run the rewrite rules to a fixed point.
pub fn rewrite(bq: &mut BoundQuery) {
    for _ in 0..10 {
        let mut changed = false;
        pass(bq, &mut changed);
        if !changed {
            break;
        }
    }
}

fn pass(bq: &mut BoundQuery, changed: &mut bool) {
    for (_, body) in &mut bq.ctes {
        pass(body, changed);
    }
    rewrite_plan(&mut bq.core, changed);
    for it in &mut bq.items {
        fold(&mut it.expr, changed);
    }
    for g in &mut bq.group_by {
        fold(g, changed);
    }
    if let Some(h) = &mut bq.having {
        fold(h, changed);
    }
    for (k, _) in &mut bq.order_by {
        fold(k, changed);
    }
    cte_pushdown(bq, changed);
}

fn rewrite_plan(p: &mut Plan, changed: &mut bool) {
    match p {
        Plan::Scan { .. } | Plan::Cte { .. } => {}
        Plan::Derived { query, .. } => pass(query, changed),
        Plan::Filter { input, predicate } => {
            fold(predicate, changed);
            rewrite_plan(input, changed);
        }
        Plan::Join {
            left,
            right,
            equi,
            residual,
            ..
        } => {
            for (l, r) in equi.iter_mut() {
                fold(l, changed);
                fold(r, changed);
            }
            if let Some(r) = residual {
                fold(r, changed);
            }
            rewrite_plan(left, changed);
            rewrite_plan(right, changed);
        }
    }
    simplify_filter(p, changed);
    dedup_equi(p, changed);
    push_residual_down(p, changed);
    push_through_join(p, changed);
    push_into_derived(p, changed);
}

/// Placeholder plan used while a node is being rebuilt in place.
fn dummy() -> Plan {
    Plan::Cte {
        name: String::new(),
        binding: String::new(),
        schema: Vec::new(),
    }
}

// ---------------------------------------------------------------- folding

fn fold(e: &mut Expr, changed: &mut bool) {
    // Children first.
    match e {
        Expr::Col { .. }
        | Expr::Outer(_)
        | Expr::OutputCol(_)
        | Expr::Literal(_)
        | Expr::Bool(_)
        | Expr::Subquery(_)
        | Expr::Exists { .. }
        | Expr::Wildcard => {}
        Expr::Unary { expr, .. }
        | Expr::Extract { expr, .. }
        | Expr::IsNull { expr, .. }
        | Expr::InSubquery { expr, .. } => fold(expr, changed),
        Expr::Binary { left, right, .. } => {
            fold(left, changed);
            fold(right, changed);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            fold(expr, changed);
            fold(low, changed);
            fold(high, changed);
        }
        Expr::InList { expr, list, .. } => {
            fold(expr, changed);
            for x in list {
                fold(x, changed);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            fold(expr, changed);
            fold(pattern, changed);
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(o) = operand {
                fold(o, changed);
            }
            for (w, t) in branches {
                fold(w, changed);
                fold(t, changed);
            }
            if let Some(x) = else_branch {
                fold(x, changed);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                fold(a, changed);
            }
        }
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            fold(expr, changed);
            fold(start, changed);
            if let Some(l) = length {
                fold(l, changed);
            }
        }
    }
    if let Some(next) = fold_step(e) {
        *e = next;
        *changed = true;
    }
}

/// One folding step on an already-folded node, or `None`.
fn fold_step(e: &Expr) -> Option<Expr> {
    match e {
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => match expr.as_ref() {
            Expr::Literal(Literal::Integer(v)) => {
                v.checked_neg().map(|n| Expr::Literal(Literal::Integer(n)))
            }
            _ => None,
        },
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => match expr.as_ref() {
            Expr::Bool(b) => Some(Expr::Bool(!b)),
            _ => None,
        },
        Expr::IsNull { expr, negated } => match expr.as_ref() {
            Expr::Literal(Literal::Null) => Some(Expr::Bool(!negated)),
            Expr::Literal(_) | Expr::Bool(_) => Some(Expr::Bool(*negated)),
            _ => None,
        },
        Expr::Binary { left, op, right } => {
            match (left.as_ref(), op, right.as_ref()) {
                // Checked integer arithmetic only — never float/decimal
                // (their evaluation differs per engine arithmetic mode).
                (Expr::Literal(Literal::Integer(a)), BinOp::Plus, Expr::Literal(Literal::Integer(b))) => {
                    a.checked_add(*b).map(|n| Expr::Literal(Literal::Integer(n)))
                }
                (Expr::Literal(Literal::Integer(a)), BinOp::Minus, Expr::Literal(Literal::Integer(b))) => {
                    a.checked_sub(*b).map(|n| Expr::Literal(Literal::Integer(n)))
                }
                (Expr::Literal(Literal::Integer(a)), BinOp::Mul, Expr::Literal(Literal::Integer(b))) => {
                    a.checked_mul(*b).map(|n| Expr::Literal(Literal::Integer(n)))
                }
                (Expr::Literal(Literal::Integer(a)), op, Expr::Literal(Literal::Integer(b)))
                    if op.is_comparison() =>
                {
                    Some(Expr::Bool(cmp_holds(a.cmp(b), *op)))
                }
                (Expr::Literal(Literal::String(a)), op, Expr::Literal(Literal::String(b)))
                    if op.is_comparison() =>
                {
                    Some(Expr::Bool(cmp_holds(a.cmp(b), *op)))
                }
                // Kleene absorption: FALSE dominates AND, TRUE dominates OR
                // (row engine short-circuits the same way).
                (Expr::Bool(false), BinOp::And, _) => Some(Expr::Bool(false)),
                (Expr::Bool(true), BinOp::Or, _) => Some(Expr::Bool(true)),
                // Identity elements, only when the other side is statically
                // boolean (so TRUE AND x ≡ x even under three-valued logic).
                (Expr::Bool(true), BinOp::And, x) | (x, BinOp::And, Expr::Bool(true))
                    if x.ty() == Ty::Bool =>
                {
                    Some(x.clone())
                }
                (Expr::Bool(false), BinOp::Or, x) | (x, BinOp::Or, Expr::Bool(false))
                    if x.ty() == Ty::Bool =>
                {
                    Some(x.clone())
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn cmp_holds(ord: std::cmp::Ordering, op: BinOp) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::NotEq => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::LtEq => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::GtEq => ord != Less,
        _ => unreachable!("not a comparison"),
    }
}

// ------------------------------------------------------- structural rules

/// Merge chained filters, drop `TRUE` conjuncts, deduplicate conjuncts,
/// and remove the filter entirely when nothing is left.
fn simplify_filter(p: &mut Plan, changed: &mut bool) {
    if !matches!(p, Plan::Filter { .. }) {
        return;
    }
    let Plan::Filter {
        mut input,
        predicate,
    } = mem::replace(p, dummy())
    else {
        unreachable!()
    };
    let mut conjs: Vec<Expr> = predicate.conjuncts().into_iter().cloned().collect();
    while matches!(&*input, Plan::Filter { .. }) {
        let Plan::Filter {
            input: inner,
            predicate: ip,
        } = *mem::replace(&mut input, Box::new(dummy()))
        else {
            unreachable!()
        };
        let mut merged: Vec<Expr> = ip.conjuncts().into_iter().cloned().collect();
        merged.append(&mut conjs);
        conjs = merged;
        input = inner;
        *changed = true;
    }
    let before = conjs.len();
    conjs.retain(|c| !matches!(c, Expr::Bool(true)));
    let mut seen = HashSet::new();
    conjs.retain(|c| c.contains_subquery() || seen.insert(c.to_string()));
    if conjs.len() != before {
        *changed = true;
    }
    match Expr::conjoin(conjs) {
        Some(pred) => {
            *p = Plan::Filter {
                input,
                predicate: pred,
            }
        }
        None => {
            *p = *input;
            *changed = true;
        }
    }
}

fn dedup_equi(p: &mut Plan, changed: &mut bool) {
    let Plan::Join { equi, .. } = p else { return };
    let before = equi.len();
    let mut seen = HashSet::new();
    equi.retain(|(l, r)| seen.insert(format!("{l}={r}")));
    if equi.len() != before {
        *changed = true;
    }
}

/// Can this conjunct move below a join boundary at all?
fn immovable(c: &Expr, slots: &[usize]) -> bool {
    c.contains_subquery() || slots.is_empty()
}

/// Push single-side conjuncts of a `Filter` below its `Join` input.
fn push_through_join(p: &mut Plan, changed: &mut bool) {
    let Plan::Filter { input, predicate } = p else {
        return;
    };
    let Plan::Join {
        left, right, kind, ..
    } = &mut **input
    else {
        return;
    };
    let left_len = left.schema().len();
    let mut to_left = Vec::new();
    let mut to_right = Vec::new();
    let mut stay = Vec::new();
    for c in predicate.conjuncts() {
        let slots = c.slots();
        if immovable(c, &slots) {
            stay.push(c.clone());
        } else if slots.iter().all(|&s| s < left_len) {
            // Valid through LEFT OUTER too: null-padded output rows carry
            // real left values, and every left row appears at least once.
            to_left.push(c.clone());
        } else if slots.iter().all(|&s| s >= left_len) && *kind == JoinKind::Inner {
            let mut e = c.clone();
            e.map_slots(&|s| s - left_len);
            to_right.push(e);
        } else {
            stay.push(c.clone());
        }
    }
    if to_left.is_empty() && to_right.is_empty() {
        return;
    }
    if let Some(pl) = Expr::conjoin(to_left) {
        let l = mem::replace(&mut **left, dummy());
        **left = Plan::Filter {
            input: Box::new(l),
            predicate: pl,
        };
    }
    if let Some(pr) = Expr::conjoin(to_right) {
        let r = mem::replace(&mut **right, dummy());
        **right = Plan::Filter {
            input: Box::new(r),
            predicate: pr,
        };
    }
    match Expr::conjoin(stay) {
        Some(pred) => *predicate = pred,
        None => {
            let inner = mem::replace(&mut **input, dummy());
            *p = inner;
        }
    }
    *changed = true;
}

/// Push single-side conjuncts of an inner join's ON-residual below the
/// join (for an inner join, a candidate pair rejected by a one-side
/// residual conjunct contributes nothing either way).
fn push_residual_down(p: &mut Plan, changed: &mut bool) {
    let Plan::Join {
        left,
        right,
        kind,
        residual,
        ..
    } = p
    else {
        return;
    };
    if *kind != JoinKind::Inner {
        return;
    }
    let Some(r) = residual else { return };
    let left_len = left.schema().len();
    let mut to_left = Vec::new();
    let mut to_right = Vec::new();
    let mut stay = Vec::new();
    for c in r.conjuncts() {
        let slots = c.slots();
        if immovable(c, &slots) {
            stay.push(c.clone());
        } else if slots.iter().all(|&s| s < left_len) {
            to_left.push(c.clone());
        } else if slots.iter().all(|&s| s >= left_len) {
            let mut e = c.clone();
            e.map_slots(&|s| s - left_len);
            to_right.push(e);
        } else {
            stay.push(c.clone());
        }
    }
    if to_left.is_empty() && to_right.is_empty() {
        return;
    }
    if let Some(pl) = Expr::conjoin(to_left) {
        let l = mem::replace(&mut **left, dummy());
        **left = Plan::Filter {
            input: Box::new(l),
            predicate: pl,
        };
    }
    if let Some(pr) = Expr::conjoin(to_right) {
        let rr = mem::replace(&mut **right, dummy());
        **right = Plan::Filter {
            input: Box::new(rr),
            predicate: pr,
        };
    }
    *residual = Expr::conjoin(stay);
    *changed = true;
}

/// Can a conjunct over a derived/CTE output be substituted through the
/// projection and pushed inside? The conjunct must not contain subqueries
/// (their binding environment would change) or outer references (outer
/// resolution scans the local schema first, which differs inside), and the
/// projection expressions it references must not contain subqueries.
fn pushable_through_items(c: &Expr, items: &[OutputItem]) -> bool {
    !c.contains_subquery()
        && !c.contains_outer()
        && !c.slots().is_empty()
        && c.slots()
            .iter()
            .all(|&s| !items[s].expr.contains_subquery())
}

/// `c` with every slot reference replaced by the projection expression it
/// selects (both are evaluated against the inner core schema).
fn substituted(c: &Expr, items: &[OutputItem]) -> Expr {
    let mut e = c.clone();
    replace_cols(&mut e, items);
    e
}

fn replace_cols(e: &mut Expr, items: &[OutputItem]) {
    if let Expr::Col { slot, .. } = e {
        *e = items[*slot].expr.clone();
        return;
    }
    match e {
        Expr::Unary { expr, .. }
        | Expr::Extract { expr, .. }
        | Expr::IsNull { expr, .. }
        | Expr::InSubquery { expr, .. } => replace_cols(expr, items),
        Expr::Binary { left, right, .. } => {
            replace_cols(left, items);
            replace_cols(right, items);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            replace_cols(expr, items);
            replace_cols(low, items);
            replace_cols(high, items);
        }
        Expr::InList { expr, list, .. } => {
            replace_cols(expr, items);
            for x in list {
                replace_cols(x, items);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            replace_cols(expr, items);
            replace_cols(pattern, items);
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(o) = operand {
                replace_cols(o, items);
            }
            for (w, t) in branches {
                replace_cols(w, items);
                replace_cols(t, items);
            }
            if let Some(x) = else_branch {
                replace_cols(x, items);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                replace_cols(a, items);
            }
        }
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            replace_cols(expr, items);
            replace_cols(start, items);
            if let Some(l) = length {
                replace_cols(l, items);
            }
        }
        _ => {}
    }
}

/// Push a filter over a derived table inside it. DISTINCT is fine (the
/// predicate is a function of the output row, so it keeps or drops a whole
/// duplicate class); ORDER BY is fine (filtering preserves relative
/// order); aggregation and LIMIT are not.
fn push_into_derived(p: &mut Plan, changed: &mut bool) {
    let Plan::Filter { input, predicate } = p else {
        return;
    };
    let Plan::Derived { query, .. } = &mut **input else {
        return;
    };
    if query.aggregated || query.limit.is_some() {
        return;
    }
    let mut push = Vec::new();
    let mut stay = Vec::new();
    for c in predicate.conjuncts() {
        if pushable_through_items(c, &query.items) {
            push.push(substituted(c, &query.items));
        } else {
            stay.push(c.clone());
        }
    }
    if push.is_empty() {
        return;
    }
    let core = mem::replace(&mut query.core, dummy());
    query.core = Plan::Filter {
        input: Box::new(core),
        predicate: Expr::conjoin(push).expect("non-empty push list"),
    };
    match Expr::conjoin(stay) {
        Some(pred) => *predicate = pred,
        None => {
            let inner = mem::replace(&mut **input, dummy());
            *p = inner;
        }
    }
    *changed = true;
}

// ------------------------------------------------------------ CTE pushdown

/// Count scans of and declarations of a CTE name across the whole tree.
fn count_cte(bq: &BoundQuery, name: &str, scans: &mut usize, decls: &mut usize) {
    for (n, body) in &bq.ctes {
        if n == name {
            *decls += 1;
        }
        count_cte(body, name, scans, decls);
    }
    count_cte_plan(&bq.core, name, scans, decls);
}

fn count_cte_plan(p: &Plan, name: &str, scans: &mut usize, decls: &mut usize) {
    match p {
        Plan::Cte { name: n, .. } => {
            if n == name {
                *scans += 1;
            }
        }
        Plan::Scan { .. } => {}
        Plan::Derived { query, .. } => count_cte(query, name, scans, decls),
        Plan::Filter { input, .. } => count_cte_plan(input, name, scans, decls),
        Plan::Join { left, right, .. } => {
            count_cte_plan(left, name, scans, decls);
            count_cte_plan(right, name, scans, decls);
        }
    }
}

/// Visit every IR expression in the tree (CTE bodies and derived queries
/// included).
fn for_each_expr(bq: &BoundQuery, f: &mut impl FnMut(&Expr)) {
    for (_, body) in &bq.ctes {
        for_each_expr(body, f);
    }
    for_each_plan_expr(&bq.core, f);
    for it in &bq.items {
        f(&it.expr);
    }
    for g in &bq.group_by {
        f(g);
    }
    if let Some(h) = &bq.having {
        f(h);
    }
    for (k, _) in &bq.order_by {
        f(k);
    }
}

fn for_each_plan_expr(p: &Plan, f: &mut impl FnMut(&Expr)) {
    match p {
        Plan::Scan { .. } | Plan::Cte { .. } => {}
        Plan::Derived { query, .. } => for_each_expr(query, f),
        Plan::Filter { input, predicate } => {
            f(predicate);
            for_each_plan_expr(input, f);
        }
        Plan::Join {
            left,
            right,
            equi,
            residual,
            ..
        } => {
            for (l, r) in equi {
                f(l);
                f(r);
            }
            if let Some(r) = residual {
                f(r);
            }
            for_each_plan_expr(left, f);
            for_each_plan_expr(right, f);
        }
    }
}

/// Table names referenced by any lazily-bound subquery anywhere in the
/// tree. A CTE in this set may be scanned at runtime by a subquery, so its
/// materialization must stay unfiltered.
fn embedded_subquery_tables(bq: &BoundQuery, out: &mut HashSet<String>) {
    for_each_expr(bq, &mut |top| {
        top.visit(&mut |e| match e {
            Expr::Subquery(q) => collect_query_tables(q, out),
            Expr::InSubquery { query, .. } => collect_query_tables(query, out),
            Expr::Exists { query, .. } => collect_query_tables(query, out),
            _ => {}
        });
    });
}

/// Find a `Filter` directly over the (unique) scan of CTE `name` in this
/// query's core, move its pushable conjuncts out, and return them
/// substituted through the CTE's projection.
fn extract_cte_filter(p: &mut Plan, name: &str, items: &[OutputItem]) -> Option<Vec<Expr>> {
    let is_target = matches!(
        p,
        Plan::Filter { input, .. }
            if matches!(&**input, Plan::Cte { name: n, .. } if n == name)
    );
    if is_target {
        let Plan::Filter { input, predicate } = p else {
            unreachable!()
        };
        let mut push = Vec::new();
        let mut stay = Vec::new();
        for c in predicate.conjuncts() {
            if pushable_through_items(c, items) {
                push.push(substituted(c, items));
            } else {
                stay.push(c.clone());
            }
        }
        if push.is_empty() {
            return None;
        }
        match Expr::conjoin(stay) {
            Some(pred) => *predicate = pred,
            None => {
                let inner = mem::replace(&mut **input, dummy());
                *p = inner;
            }
        }
        return Some(push);
    }
    match p {
        Plan::Filter { input, .. } => extract_cte_filter(input, name, items),
        Plan::Join { left, right, .. } => {
            if let Some(v) = extract_cte_filter(left, name, items) {
                return Some(v);
            }
            extract_cte_filter(right, name, items)
        }
        _ => None,
    }
}

fn cte_pushdown(bq: &mut BoundQuery, changed: &mut bool) {
    for idx in 0..bq.ctes.len() {
        let name = bq.ctes[idx].0.clone();
        let (mut scans, mut decls) = (0, 0);
        count_cte(bq, &name, &mut scans, &mut decls);
        if scans != 1 || decls != 1 {
            continue;
        }
        {
            let body = &bq.ctes[idx].1;
            if body.aggregated || body.distinct || body.limit.is_some() {
                continue;
            }
        }
        let mut sub_tables = HashSet::new();
        embedded_subquery_tables(bq, &mut sub_tables);
        if sub_tables.contains(&name) {
            continue;
        }
        let items = bq.ctes[idx].1.items.clone();
        let Some(push) = extract_cte_filter(&mut bq.core, &name, &items) else {
            continue;
        };
        let body = &mut bq.ctes[idx].1;
        let core = mem::replace(&mut body.core, dummy());
        body.core = Plan::Filter {
            input: Box::new(core),
            predicate: Expr::conjoin(push).expect("non-empty push list"),
        };
        *changed = true;
    }
}

// ------------------------------------------------------------------ prune

/// Projection pruning via column liveness: shrink every scan to the
/// columns actually referenced, plus a *protected* set of names that may
/// be reached dynamically — outer references and any column name mentioned
/// inside a lazily-bound subquery (which may turn out to be correlated
/// into an enclosing scan).
pub fn prune(bq: &mut BoundQuery) {
    let mut protected = HashSet::new();
    collect_protected(bq, &mut protected);
    prune_query(bq, &protected);
}

fn collect_protected(bq: &BoundQuery, out: &mut HashSet<String>) {
    for_each_expr(bq, &mut |top| {
        top.visit(&mut |e| match e {
            Expr::Outer(c) => {
                out.insert(c.column.clone());
            }
            Expr::Subquery(q) => collect_query_names(q, out),
            Expr::InSubquery { query, .. } => collect_query_names(query, out),
            Expr::Exists { query, .. } => collect_query_names(query, out),
            _ => {}
        });
    });
}

fn mark_used(e: &Expr, schema: &Schema, used: &mut HashSet<(String, String)>) {
    for s in e.slots() {
        let c = &schema[s];
        used.insert((c.binding.clone(), c.name.clone()));
    }
}

fn collect_used(p: &Plan, used: &mut HashSet<(String, String)>) {
    match p {
        Plan::Scan { .. } | Plan::Cte { .. } | Plan::Derived { .. } => {}
        Plan::Filter { input, predicate } => {
            mark_used(predicate, &input.schema(), used);
            collect_used(input, used);
        }
        Plan::Join {
            left,
            right,
            equi,
            residual,
            ..
        } => {
            let ls = left.schema();
            let rs = right.schema();
            for (l, r) in equi {
                mark_used(l, &ls, used);
                mark_used(r, &rs, used);
            }
            if let Some(rr) = residual {
                let mut combined = ls.clone();
                combined.extend(rs);
                mark_used(rr, &combined, used);
            }
            collect_used(left, used);
            collect_used(right, used);
        }
    }
}

fn remap(e: &mut Expr, mapping: &[Option<usize>]) {
    e.map_slots(&|s| mapping[s].expect("pruned a live slot"));
}

fn prune_query(bq: &mut BoundQuery, protected: &HashSet<String>) {
    let mut used: HashSet<(String, String)> = HashSet::new();
    let core_schema = bq.core.schema();
    for it in &bq.items {
        mark_used(&it.expr, &core_schema, &mut used);
    }
    for g in &bq.group_by {
        mark_used(g, &core_schema, &mut used);
    }
    if let Some(h) = &bq.having {
        mark_used(h, &core_schema, &mut used);
    }
    for (k, _) in &bq.order_by {
        mark_used(k, &core_schema, &mut used);
    }
    collect_used(&bq.core, &mut used);

    let mapping = prune_plan(&mut bq.core, &used, protected);
    for it in &mut bq.items {
        remap(&mut it.expr, &mapping);
    }
    for g in &mut bq.group_by {
        remap(g, &mapping);
    }
    if let Some(h) = &mut bq.having {
        remap(h, &mapping);
    }
    for (k, _) in &mut bq.order_by {
        remap(k, &mapping);
    }
    for (_, body) in &mut bq.ctes {
        prune_query(body, protected);
    }
}

/// Prune the subtree and return the old→new slot mapping for its schema.
fn prune_plan(
    p: &mut Plan,
    used: &HashSet<(String, String)>,
    protected: &HashSet<String>,
) -> Vec<Option<usize>> {
    match p {
        Plan::Scan {
            table,
            binding,
            live,
        } => {
            let mut mapping = vec![None; live.len()];
            let mut new_live = Vec::new();
            for (old_pos, &ci) in live.iter().enumerate() {
                let name = &table.columns[ci].name;
                if used.contains(&(binding.clone(), name.clone())) || protected.contains(name) {
                    mapping[old_pos] = Some(new_live.len());
                    new_live.push(ci);
                }
            }
            // Keep at least one column so row counts survive (`count(*)`
            // over a fully-pruned scan).
            if new_live.is_empty() && !live.is_empty() {
                new_live.push(live[0]);
            }
            *live = new_live;
            mapping
        }
        Plan::Derived { query, .. } => {
            // Derived output columns are never pruned (the parent indexes
            // them positionally); prune inside instead.
            prune_query(query, protected);
            (0..query.items.len()).map(Some).collect()
        }
        Plan::Cte { schema, .. } => (0..schema.len()).map(Some).collect(),
        Plan::Filter { input, predicate } => {
            let m = prune_plan(input, used, protected);
            remap(predicate, &m);
            m
        }
        Plan::Join {
            left,
            right,
            equi,
            residual,
            ..
        } => {
            let ml = prune_plan(left, used, protected);
            let mr = prune_plan(right, used, protected);
            let new_left_len = left.schema().len();
            for (l, r) in equi.iter_mut() {
                remap(l, &ml);
                remap(r, &mr);
            }
            let mut combined: Vec<Option<usize>> = Vec::with_capacity(ml.len() + mr.len());
            combined.extend(ml.iter().copied());
            combined.extend(mr.iter().map(|x| x.map(|n| n + new_left_len)));
            if let Some(rr) = residual {
                remap(rr, &combined);
            }
            combined
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use crate::storage::Database;
    use sqalpel_sql::parse_query;

    fn raw(sql: &str) -> BoundQuery {
        let db = Database::tpch(0.001, 42);
        let q = parse_query(sql).unwrap();
        Planner::new(&db)
            .with_rewrite(false)
            .with_optimize(false)
            .bind(&q)
            .unwrap()
    }

    fn rewritten(sql: &str) -> BoundQuery {
        let mut bq = raw(sql);
        rewrite(&mut bq);
        bq
    }

    fn lit(v: i64) -> Expr {
        Expr::Literal(Literal::Integer(v))
    }

    #[test]
    fn folds_integer_arithmetic_and_comparisons() {
        let mut e = Expr::Binary {
            left: Box::new(Expr::Binary {
                left: Box::new(lit(2)),
                op: BinOp::Plus,
                right: Box::new(lit(3)),
            }),
            op: BinOp::Gt,
            right: Box::new(lit(4)),
        };
        let mut changed = false;
        fold(&mut e, &mut changed);
        assert!(changed);
        assert_eq!(e, Expr::Bool(true));
        // Overflow is left alone for the engine to report.
        let mut e = Expr::Binary {
            left: Box::new(lit(i64::MAX)),
            op: BinOp::Plus,
            right: Box::new(lit(1)),
        };
        changed = false;
        fold(&mut e, &mut changed);
        assert!(!changed);
    }

    #[test]
    fn trivial_and_duplicate_conjuncts_are_removed() {
        let b = rewritten(
            "select n_name from nation \
             where n_regionkey = 1 and n_regionkey = 1 and 1 = 1",
        );
        match &b.core {
            Plan::Filter { predicate, .. } => {
                assert_eq!(predicate.conjuncts().len(), 1, "{predicate}");
            }
            other => panic!("expected single filter, got {other:?}"),
        }
    }

    #[test]
    fn false_filters_are_kept() {
        let b = rewritten("select n_name from nation where 1 = 2");
        match &b.core {
            Plan::Filter { predicate, .. } => {
                assert_eq!(predicate.conjuncts()[0], &Expr::Bool(false))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn on_residual_single_side_conjuncts_sink_below_inner_join() {
        let b = rewritten(
            "select c_custkey from customer join orders \
             on c_custkey = o_custkey and o_totalprice > 100",
        );
        match &b.core {
            Plan::Join {
                right, residual, ..
            } => {
                assert!(residual.is_none());
                assert!(matches!(&**right, Plan::Filter { .. }), "{right:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn filters_push_into_derived_tables() {
        let b = rewritten(
            "select x from (select n_regionkey as x, n_name as y from nation) t \
             where x > 1",
        );
        fn derived_has_filter(p: &Plan) -> bool {
            match p {
                Plan::Derived { query, .. } => matches!(query.core, Plan::Filter { .. }),
                Plan::Filter { input, .. } => derived_has_filter(input),
                _ => false,
            }
        }
        assert!(derived_has_filter(&b.core), "{:?}", b.core);
        // And the outer filter is gone entirely.
        assert!(matches!(b.core, Plan::Derived { .. }), "{:?}", b.core);
    }

    #[test]
    fn filters_push_into_nonaggregated_ctes() {
        let b = rewritten(
            "with t as (select n_regionkey as x, n_name from nation) \
             select x from t where x > 1",
        );
        assert!(
            matches!(b.ctes[0].1.core, Plan::Filter { .. }),
            "{:?}",
            b.ctes[0].1.core
        );
    }

    #[test]
    fn aggregated_ctes_are_not_pushed_into() {
        let b = rewritten(
            "with t as (select n_regionkey as x, count(*) as n from nation group by n_regionkey) \
             select x from t where n > 1",
        );
        assert!(
            !matches!(b.ctes[0].1.core, Plan::Filter { .. }),
            "{:?}",
            b.ctes[0].1.core
        );
    }

    #[test]
    fn subquery_conjuncts_never_move() {
        let b = rewritten(
            "select x from (select n_regionkey as x from nation) t \
             where x in (select r_regionkey from region)",
        );
        match &b.core {
            Plan::Filter { predicate, .. } => assert!(predicate.contains_subquery()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prune_shrinks_scans_to_live_columns() {
        let mut b = raw("select n_name from nation");
        rewrite(&mut b);
        prune(&mut b);
        match &b.core {
            Plan::Scan { live, .. } => assert_eq!(live, &vec![1]),
            other => panic!("{other:?}"),
        }
        assert!(matches!(b.items[0].expr, Expr::Col { slot: 0, .. }));
    }

    #[test]
    fn prune_keeps_one_column_for_bare_counts() {
        let mut b = raw("select count(*) from nation");
        rewrite(&mut b);
        prune(&mut b);
        match &b.core {
            Plan::Scan { live, .. } => assert_eq!(live.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prune_protects_names_reached_by_subqueries() {
        // s_suppkey is referenced inside the subquery and correlates into
        // the outer scan — it must survive pruning everywhere.
        let mut b = raw(
            "select s_name from supplier where s_suppkey in \
             (select ps_suppkey from partsupp where ps_suppkey = s_suppkey)",
        );
        rewrite(&mut b);
        prune(&mut b);
        fn scan_names(p: &Plan, out: &mut Vec<String>) {
            match p {
                Plan::Scan { table, live, .. } => {
                    out.extend(live.iter().map(|&i| table.columns[i].name.clone()))
                }
                Plan::Filter { input, .. } => scan_names(input, out),
                Plan::Join { left, right, .. } => {
                    scan_names(left, out);
                    scan_names(right, out);
                }
                _ => {}
            }
        }
        let mut names = Vec::new();
        scan_names(&b.core, &mut names);
        assert!(names.contains(&"s_suppkey".to_string()), "{names:?}");
        assert!(names.contains(&"s_name".to_string()), "{names:?}");
    }

    #[test]
    fn rewrite_and_prune_handle_all_tpch_queries() {
        let db = Database::tpch(0.001, 42);
        for (name, sql) in sqalpel_sql::tpch::all_queries() {
            let q = parse_query(sql).unwrap();
            Planner::new(&db)
                .bind(&q)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
