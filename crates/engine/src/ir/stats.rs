//! Load-time column statistics for the cost-based optimizer.
//!
//! Every [`crate::storage::Table`] collects one [`ColStats`] per column
//! when it is built: row-independent `min`/`max` bounds in the column's
//! raw i64 domain (the same domain the zone maps use — value for ints,
//! day for dates, raw for decimals) and a distinct-value estimate from a
//! KMV (k-minimum-values) sketch.
//!
//! The sketch hashes every *logical* value, so the estimate is a pure
//! function of the stored value multiset: a dictionary-encoded string
//! column and its raw twin, or a frame-of-reference packed int column
//! and its unencoded twin, produce identical statistics. The storage
//! property tests pin that round-trip.

use crate::storage::{ColumnData, ForVec};
use std::collections::BTreeSet;

/// Sketch size: with `k` minima the estimate `(k-1) * 2^64 / kth_min` has
/// a relative standard error of about `1/sqrt(k-2)` (~6% at 256), and any
/// column with fewer than `k` distinct values is counted exactly.
pub const KMV_K: usize = 256;

/// Statistics for one stored column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColStats {
    /// Minimum value in the column's raw i64 domain (`None` for types
    /// without a zone-map order: floats and strings).
    pub min: Option<i64>,
    /// Maximum value, same domain as `min`.
    pub max: Option<i64>,
    /// Estimated number of distinct values (exact below [`KMV_K`]).
    pub ndv: f64,
}

impl ColStats {
    /// The distinct count clamped to at least one — the denominator the
    /// selectivity estimator divides by.
    pub fn ndv_floor(&self) -> f64 {
        if self.ndv >= 1.0 {
            self.ndv
        } else {
            1.0
        }
    }
}

/// A KMV distinct-count sketch: the `k` smallest 64-bit hashes seen.
#[derive(Debug, Clone)]
pub struct KmvSketch {
    k: usize,
    mins: BTreeSet<u64>,
    /// Current k-th minimum (u64::MAX until the sketch is full) — a cheap
    /// reject test so the common case is one comparison.
    threshold: u64,
}

impl Default for KmvSketch {
    fn default() -> Self {
        KmvSketch::new(KMV_K)
    }
}

impl KmvSketch {
    pub fn new(k: usize) -> KmvSketch {
        KmvSketch {
            k: k.max(2),
            mins: BTreeSet::new(),
            threshold: u64::MAX,
        }
    }

    /// Insert a pre-hashed value. Order-independent and idempotent, so
    /// the estimate depends only on the distinct-value set.
    pub fn insert_hash(&mut self, h: u64) {
        if h > self.threshold {
            return;
        }
        if self.mins.insert(h) && self.mins.len() > self.k {
            self.mins.pop_last();
        }
        if self.mins.len() == self.k {
            self.threshold = *self.mins.iter().next_back().expect("non-empty sketch");
        }
    }

    /// The distinct-count estimate: exact while the sketch is not full,
    /// `(k-1) / kth_min` scaled to the hash space once it is.
    pub fn estimate(&self) -> f64 {
        if self.mins.len() < self.k {
            return self.mins.len() as f64;
        }
        let kth = *self.mins.iter().next_back().expect("full sketch") as f64;
        // kth_min / 2^64 estimates the fraction of hash space covered by
        // the k smallest values.
        ((self.k - 1) as f64) * (2f64.powi(64) / kth.max(1.0))
    }
}

/// FNV-1a over raw bytes — the same hash family the plan fingerprints
/// use; deterministic across runs and platforms.
#[inline]
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[inline]
fn hash_i64(v: i64) -> u64 {
    fnv1a_bytes(&v.to_le_bytes())
}

/// Collect statistics for one column in a single pass.
pub fn collect(data: &ColumnData) -> ColStats {
    match data {
        ColumnData::Int(v) => numeric(v.iter().copied()),
        ColumnData::Decimal { raw, .. } => numeric(raw.iter().copied()),
        ColumnData::Date(v) => numeric(v.iter().map(|&d| d as i64)),
        ColumnData::ForInt(v) | ColumnData::ForDate(v) => for_stats(v),
        ColumnData::Float(v) => {
            let mut kmv = KmvSketch::default();
            for x in v {
                kmv.insert_hash(fnv1a_bytes(&x.to_bits().to_le_bytes()));
            }
            ColStats {
                min: None,
                max: None,
                ndv: kmv.estimate(),
            }
        }
        ColumnData::Str(v) => {
            let mut kmv = KmvSketch::default();
            for s in v {
                kmv.insert_hash(fnv1a_bytes(s.as_bytes()));
            }
            ColStats {
                min: None,
                max: None,
                ndv: kmv.estimate(),
            }
        }
        ColumnData::Dict { codes, dict } => {
            // Hash the *strings*, not the codes, so a dict column and its
            // raw twin sketch identically. One hash per dictionary entry,
            // then an array lookup per row.
            let entry_hash: Vec<u64> = dict.iter().map(|s| fnv1a_bytes(s.as_bytes())).collect();
            let mut kmv = KmvSketch::default();
            for &c in codes {
                kmv.insert_hash(entry_hash[c as usize]);
            }
            ColStats {
                min: None,
                max: None,
                ndv: kmv.estimate(),
            }
        }
    }
}

fn numeric(values: impl Iterator<Item = i64>) -> ColStats {
    let mut kmv = KmvSketch::default();
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    let mut any = false;
    for v in values {
        any = true;
        min = min.min(v);
        max = max.max(v);
        kmv.insert_hash(hash_i64(v));
    }
    ColStats {
        min: any.then_some(min),
        max: any.then_some(max),
        ndv: kmv.estimate(),
    }
}

fn for_stats(v: &ForVec) -> ColStats {
    // Min/max fold over the frame bounds (free); the sketch still hashes
    // every decoded value so it matches the unencoded twin exactly.
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    let mut any = false;
    for (lo, hi) in v.chunk_bounds() {
        any = true;
        min = min.min(lo);
        max = max.max(hi);
    }
    let mut kmv = KmvSketch::default();
    for i in 0..v.len() {
        kmv.insert_hash(hash_i64(v.get(i)));
    }
    ColStats {
        min: any.then_some(min),
        max: any.then_some(max),
        ndv: kmv.estimate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::dict_encode;

    #[test]
    fn small_columns_count_exactly() {
        let s = collect(&ColumnData::Int(vec![1, 2, 2, 3, 3, 3]));
        assert_eq!(s.ndv, 3.0);
        assert_eq!((s.min, s.max), (Some(1), Some(3)));
    }

    #[test]
    fn empty_column_is_all_defaults() {
        let s = collect(&ColumnData::Int(vec![]));
        assert_eq!(s.ndv, 0.0);
        assert_eq!((s.min, s.max), (None, None));
        assert_eq!(s.ndv_floor(), 1.0);
    }

    #[test]
    fn sketch_estimate_is_close_on_large_domains() {
        let values: Vec<i64> = (0..50_000).map(|i| i * 7 + 3).collect();
        let s = collect(&ColumnData::Int(values));
        let err = (s.ndv - 50_000.0).abs() / 50_000.0;
        assert!(err < 0.15, "ndv {} off by {err}", s.ndv);
    }

    #[test]
    fn encodings_do_not_change_stats() {
        let ints: Vec<i64> = (0..10_000).map(|i| (i * 37) % 500 + 1000).collect();
        let raw = collect(&ColumnData::Int(ints.clone()));
        let packed = collect(&ColumnData::ForInt(ForVec::encode(&ints)));
        assert_eq!(raw, packed);

        let strs: Vec<String> = (0..5_000).map(|i| format!("v{}", i % 40)).collect();
        let raw = collect(&ColumnData::Str(strs.clone()));
        let (codes, dict) = dict_encode(&strs).expect("low NDV");
        let encoded = collect(&ColumnData::Dict { codes, dict });
        assert_eq!(raw, encoded);
        assert_eq!(raw.ndv, 40.0);
    }

    #[test]
    fn sketch_is_order_independent() {
        let mut a = KmvSketch::new(16);
        let mut b = KmvSketch::new(16);
        let hashes: Vec<u64> = (0..1000u64).map(|i| hash_i64(i as i64)).collect();
        for &h in &hashes {
            a.insert_hash(h);
        }
        for &h in hashes.iter().rev() {
            b.insert_hash(h);
            b.insert_hash(h); // idempotent
        }
        assert_eq!(a.estimate(), b.estimate());
    }
}
