//! AST → IR lowering: name resolution against a plan-node schema.
//!
//! Resolution uses exactly the rule the runtime `Env::resolve` applies:
//! a qualified name matches on `(binding, column)`, an unqualified name on
//! `column` alone, two hits are ambiguous, and a miss is *not* an error —
//! it becomes an [`Expr::Outer`] reference resolved by climbing the
//! environment chain at runtime (that is how the engines detect
//! correlation, by running once without an outer environment and catching
//! `UnknownColumn`).

use crate::error::{EngineError, EngineResult};
use crate::ir::expr::Expr;
use crate::plan::Schema;
use sqalpel_sql::ast;
use std::collections::HashSet;

/// Resolve a column reference against a schema. `Ok(None)` means "no local
/// match" (a potential outer/correlated reference).
pub fn resolve_name(schema: &Schema, c: &ast::ColumnRef) -> EngineResult<Option<usize>> {
    let mut found = None;
    for (i, m) in schema.iter().enumerate() {
        let hit = match &c.table {
            Some(t) => m.binding == *t && m.name == c.column,
            None => m.name == c.column,
        };
        if hit {
            if found.is_some() {
                return Err(EngineError::AmbiguousColumn(c.to_string()));
            }
            found = Some(i);
        }
    }
    Ok(found)
}

/// Lower an AST expression against `schema`. Purely structural except for
/// column references; subquery bodies stay opaque AST.
pub fn bind_expr(e: &ast::Expr, schema: &Schema) -> EngineResult<Expr> {
    let bind = |e: &ast::Expr| bind_expr(e, schema);
    let bindb = |e: &ast::Expr| bind_expr(e, schema).map(Box::new);
    Ok(match e {
        ast::Expr::Column(c) => match resolve_name(schema, c)? {
            Some(slot) => Expr::Col { slot, ty: schema[slot].ty },
            None => Expr::Outer(c.clone()),
        },
        ast::Expr::Literal(l) => Expr::Literal(l.clone()),
        ast::Expr::Unary { op, expr } => Expr::Unary { op: *op, expr: bindb(expr)? },
        ast::Expr::Binary { left, op, right } => Expr::Binary {
            left: bindb(left)?,
            op: *op,
            right: bindb(right)?,
        },
        ast::Expr::Between { expr, negated, low, high } => Expr::Between {
            expr: bindb(expr)?,
            negated: *negated,
            low: bindb(low)?,
            high: bindb(high)?,
        },
        ast::Expr::InList { expr, negated, list } => Expr::InList {
            expr: bindb(expr)?,
            negated: *negated,
            list: list.iter().map(bind).collect::<EngineResult<_>>()?,
        },
        ast::Expr::InSubquery { expr, negated, query } => Expr::InSubquery {
            expr: bindb(expr)?,
            negated: *negated,
            query: query.clone(),
        },
        ast::Expr::Exists { negated, query } => Expr::Exists {
            negated: *negated,
            query: query.clone(),
        },
        ast::Expr::Like { expr, negated, pattern } => Expr::Like {
            expr: bindb(expr)?,
            negated: *negated,
            pattern: bindb(pattern)?,
        },
        ast::Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: bindb(expr)?,
            negated: *negated,
        },
        ast::Expr::Case { operand, branches, else_branch } => Expr::Case {
            operand: operand.as_deref().map(&bindb).transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| Ok((bind(w)?, bind(t)?)))
                .collect::<EngineResult<_>>()?,
            else_branch: else_branch.as_deref().map(&bindb).transpose()?,
        },
        ast::Expr::Function { name, distinct, args } => Expr::Function {
            name: name.clone(),
            distinct: *distinct,
            args: args.iter().map(bind).collect::<EngineResult<_>>()?,
        },
        ast::Expr::Extract { field, expr } => Expr::Extract { field: *field, expr: bindb(expr)? },
        ast::Expr::Substring { expr, start, length } => Expr::Substring {
            expr: bindb(expr)?,
            start: bindb(start)?,
            length: length.as_deref().map(&bindb).transpose()?,
        },
        ast::Expr::Subquery(q) => Expr::Subquery(q.clone()),
        ast::Expr::Wildcard => Expr::Wildcard,
    })
}

/// Lower an `ORDER BY` key: a bare name matching an output-item name binds
/// to the *output column* (alias-first precedence, checked before schema
/// resolution — this preserves the engines' historical tie-break).
pub fn bind_order_key(
    e: &ast::Expr,
    schema: &Schema,
    item_names: &[String],
) -> EngineResult<Expr> {
    if let ast::Expr::Column(c) = e {
        if c.table.is_none() {
            if let Some(i) = item_names.iter().position(|n| *n == c.column) {
                return Ok(Expr::OutputCol(i));
            }
        }
    }
    bind_expr(e, schema)
}

/// Every column name mentioned anywhere in an expression, descending into
/// subquery bodies. Used to build the *protected* name set: a subquery is
/// bound lazily at runtime, so any name inside it may turn out to be a
/// correlated reference into an enclosing scan — those columns must
/// survive projection pruning.
pub fn collect_expr_names(e: &ast::Expr, out: &mut HashSet<String>) {
    e.visit(&mut |x| match x {
        ast::Expr::Column(c) => {
            out.insert(c.column.clone());
        }
        ast::Expr::Subquery(q) => collect_query_names(q, out),
        ast::Expr::InSubquery { query, .. } => collect_query_names(query, out),
        ast::Expr::Exists { query, .. } => collect_query_names(query, out),
        _ => {}
    });
}

/// Deep column-name collection over a whole query (see
/// [`collect_expr_names`]).
pub fn collect_query_names(q: &ast::Query, out: &mut HashSet<String>) {
    for cte in &q.ctes {
        collect_query_names(&cte.query, out);
    }
    for item in &q.body.items {
        if let ast::SelectItem::Expr { expr, .. } = item {
            collect_expr_names(expr, out);
        }
    }
    for t in &q.body.from {
        collect_table_ref_names(t, out);
    }
    if let Some(sel) = &q.body.selection {
        collect_expr_names(sel, out);
    }
    for g in &q.body.group_by {
        collect_expr_names(g, out);
    }
    if let Some(h) = &q.body.having {
        collect_expr_names(h, out);
    }
    for o in &q.order_by {
        collect_expr_names(&o.expr, out);
    }
}

fn collect_table_ref_names(t: &ast::TableRef, out: &mut HashSet<String>) {
    match t {
        ast::TableRef::Table { .. } => {}
        ast::TableRef::Subquery { query, .. } => collect_query_names(query, out),
        ast::TableRef::Join { left, right, on, .. } => {
            collect_table_ref_names(left, out);
            collect_table_ref_names(right, out);
            collect_expr_names(on, out);
        }
    }
}

/// Every base-table name referenced anywhere in a query (descending into
/// subqueries and CTE bodies). Used to gate CTE predicate pushdown: a CTE
/// scanned by a lazily-bound subquery must keep its unfiltered
/// materialization.
pub fn collect_query_tables(q: &ast::Query, out: &mut HashSet<String>) {
    for cte in &q.ctes {
        collect_query_tables(&cte.query, out);
    }
    for item in &q.body.items {
        if let ast::SelectItem::Expr { expr, .. } = item {
            collect_expr_tables(expr, out);
        }
    }
    for t in &q.body.from {
        collect_table_ref_tables(t, out);
    }
    if let Some(sel) = &q.body.selection {
        collect_expr_tables(sel, out);
    }
    for g in &q.body.group_by {
        collect_expr_tables(g, out);
    }
    if let Some(h) = &q.body.having {
        collect_expr_tables(h, out);
    }
    for o in &q.order_by {
        collect_expr_tables(&o.expr, out);
    }
}

fn collect_expr_tables(e: &ast::Expr, out: &mut HashSet<String>) {
    e.visit(&mut |x| match x {
        ast::Expr::Subquery(q) => collect_query_tables(q, out),
        ast::Expr::InSubquery { query, .. } => collect_query_tables(query, out),
        ast::Expr::Exists { query, .. } => collect_query_tables(query, out),
        _ => {}
    });
}

fn collect_table_ref_tables(t: &ast::TableRef, out: &mut HashSet<String>) {
    match t {
        ast::TableRef::Table { name, .. } => {
            out.insert(name.clone());
        }
        ast::TableRef::Subquery { query, .. } => collect_query_tables(query, out),
        ast::TableRef::Join { left, right, on, .. } => {
            collect_table_ref_tables(left, out);
            collect_table_ref_tables(right, out);
            collect_expr_tables(on, out);
        }
    }
}
