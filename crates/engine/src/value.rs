//! Runtime values and scalar operations.
//!
//! The two engines deliberately use **different arithmetic** over the same
//! stored data (this asymmetry is what makes them discriminative targets,
//! mirroring the paper's MonetDB Figure 2 anecdote):
//!
//! - the row engine converts decimals to `f64` on touch and computes in
//!   floating point ([`ArithMode::Float`]);
//! - the column engine keeps decimals fixed-point and widens every
//!   multiplication to `i128` with an explicit overflow guard
//!   ([`ArithMode::GuardedDecimal`]), like MonetDB's type-cast guards.

use crate::error::{EngineError, EngineResult};
use std::cmp::Ordering;
use std::fmt;

/// Days since 1970-01-01 (shared with `sqalpel-datagen`).
pub type Day = i32;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    /// Fixed-point decimal: `raw / 10^scale`.
    Decimal { raw: i128, scale: u8 },
    Str(String),
    Date(Day),
    /// Calendar interval (months are kept symbolic, days exact).
    Interval { months: i32, days: i32 },
}

impl Value {
    /// Fixed-point constructor.
    pub fn decimal(raw: i128, scale: u8) -> Value {
        Value::Decimal { raw, scale }
    }

    /// Money in cents (scale 2).
    pub fn cents(raw: i64) -> Value {
        Value::Decimal {
            raw: raw as i128,
            scale: 2,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as f64 (`None` for non-numeric values).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Decimal { raw, scale } => Some(*raw as f64 / 10f64.powi(*scale as i32)),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True when the value is any numeric type.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_) | Value::Decimal { .. })
    }

    /// SQL type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "double",
            Value::Decimal { .. } => "decimal",
            Value::Str(_) => "varchar",
            Value::Date(_) => "date",
            Value::Interval { .. } => "interval",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Decimal { raw, scale } => {
                if *scale == 0 {
                    write!(f, "{raw}")
                } else {
                    let div = 10i128.pow(*scale as u32);
                    let sign = if *raw < 0 { "-" } else { "" };
                    let a = raw.unsigned_abs();
                    write!(
                        f,
                        "{sign}{}.{:0width$}",
                        a / div as u128,
                        a % div as u128,
                        width = *scale as usize
                    )
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Date(d) => f.write_str(&sqalpel_datagen::calendar::format_days(*d)),
            Value::Interval { months, days } => write!(f, "{months} months {days} days"),
        }
    }
}

/// Which arithmetic discipline to use (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithMode {
    /// Convert decimals to f64 immediately; never overflows, loses
    /// precision. The row engine's behaviour.
    Float,
    /// Fixed-point with i128 widening and overflow checks. The column
    /// engine's behaviour; costs extra work per multiplication.
    GuardedDecimal,
}

pub(crate) fn rescale(raw: i128, from: u8, to: u8) -> EngineResult<i128> {
    match from.cmp(&to) {
        Ordering::Equal => Ok(raw),
        Ordering::Less => raw
            .checked_mul(10i128.pow((to - from) as u32))
            .ok_or_else(|| EngineError::Overflow("decimal rescale".into())),
        Ordering::Greater => Ok(raw / 10i128.pow((from - to) as u32)),
    }
}

/// Add two values under the given arithmetic mode.
pub fn add(a: &Value, b: &Value, mode: ArithMode) -> EngineResult<Value> {
    numeric_or_temporal(a, b, mode, "+")
}

/// Subtract.
pub fn sub(a: &Value, b: &Value, mode: ArithMode) -> EngineResult<Value> {
    match (a, b) {
        (Value::Date(d), Value::Date(e)) => Ok(Value::Int((*d - *e) as i64)),
        (Value::Date(d), Value::Interval { months, days }) => {
            Ok(Value::Date(shift_date(*d, -months, -days)))
        }
        _ => {
            let neg = negate(b, mode)?;
            numeric_or_temporal(a, &neg, mode, "-")
        }
    }
}

fn shift_date(d: Day, months: i32, days: i32) -> Day {
    let with_months = if months != 0 {
        sqalpel_datagen::calendar::add_months(d, months)
    } else {
        d
    };
    with_months + days
}

fn numeric_or_temporal(a: &Value, b: &Value, mode: ArithMode, op: &str) -> EngineResult<Value> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Date(d), Value::Interval { months, days })
        | (Value::Interval { months, days }, Value::Date(d)) => {
            Ok(Value::Date(shift_date(*d, *months, *days)))
        }
        (Value::Date(d), Value::Int(n)) => Ok(Value::Date(*d + *n as i32)),
        (Value::Int(x), Value::Int(y)) => x
            .checked_add(*y)
            .map(Value::Int)
            .ok_or_else(|| EngineError::Overflow("integer +".into())),
        _ if a.is_numeric() && b.is_numeric() => match mode {
            ArithMode::Float => Ok(Value::Float(a.as_f64().unwrap() + b.as_f64().unwrap())),
            ArithMode::GuardedDecimal => {
                let (ar, asc) = to_decimal(a);
                let (br, bsc) = to_decimal(b);
                match (ar, br) {
                    (Some(ar), Some(br)) => {
                        let scale = asc.max(bsc);
                        let x = rescale(ar, asc, scale)?;
                        let y = rescale(br, bsc, scale)?;
                        x.checked_add(y)
                            .map(|raw| Value::Decimal { raw, scale })
                            .ok_or_else(|| EngineError::Overflow("decimal +".into()))
                    }
                    // A float operand forces float math even in guarded mode.
                    _ => Ok(Value::Float(a.as_f64().unwrap() + b.as_f64().unwrap())),
                }
            }
        },
        _ => Err(EngineError::Type(format!(
            "cannot apply {op} to {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

/// Decimal view `(raw, scale)`; `None` raw for floats.
fn to_decimal(v: &Value) -> (Option<i128>, u8) {
    match v {
        Value::Int(i) => (Some(*i as i128), 0),
        Value::Decimal { raw, scale } => (Some(*raw), *scale),
        _ => (None, 0),
    }
}

/// Negate a numeric value.
pub fn negate(v: &Value, _mode: ArithMode) -> EngineResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Int(i) => Ok(Value::Int(-i)),
        Value::Float(f) => Ok(Value::Float(-f)),
        Value::Decimal { raw, scale } => Ok(Value::Decimal {
            raw: -raw,
            scale: *scale,
        }),
        Value::Interval { months, days } => Ok(Value::Interval {
            months: -months,
            days: -days,
        }),
        other => Err(EngineError::Type(format!("cannot negate {}", other.type_name()))),
    }
}

/// Multiply. In guarded mode this is the expensive path: both operands are
/// widened to i128, the product checked, and the result scale capped at 6
/// by an extra rescale division — the "type casts to guard against
/// overflow" the paper attributes MonetDB's Q1 cost to.
pub fn mul(a: &Value, b: &Value, mode: ArithMode) -> EngineResult<Value> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Int(x), Value::Int(y)) => x
            .checked_mul(*y)
            .map(Value::Int)
            .ok_or_else(|| EngineError::Overflow("integer *".into())),
        _ if a.is_numeric() && b.is_numeric() => match mode {
            ArithMode::Float => Ok(Value::Float(a.as_f64().unwrap() * b.as_f64().unwrap())),
            ArithMode::GuardedDecimal => {
                let (ar, asc) = to_decimal(a);
                let (br, bsc) = to_decimal(b);
                match (ar, br) {
                    (Some(ar), Some(br)) => {
                        let raw = ar
                            .checked_mul(br)
                            .ok_or_else(|| EngineError::Overflow("decimal *".into()))?;
                        let mut scale = asc + bsc;
                        let mut raw = raw;
                        // Cap the scale at 6 to bound growth across chained
                        // multiplications; each cap costs a division.
                        while scale > 6 {
                            raw /= 10;
                            scale -= 1;
                        }
                        Ok(Value::Decimal { raw, scale })
                    }
                    _ => Ok(Value::Float(a.as_f64().unwrap() * b.as_f64().unwrap())),
                }
            }
        },
        _ => Err(EngineError::Type(format!(
            "cannot multiply {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

/// Divide. Division always produces a float (both engines): fixed-point
/// division semantics add nothing to the cost-model story.
pub fn div(a: &Value, b: &Value, _mode: ArithMode) -> EngineResult<Value> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        _ if a.is_numeric() && b.is_numeric() => {
            let d = b.as_f64().unwrap();
            if d == 0.0 {
                return Err(EngineError::Type("division by zero".into()));
            }
            Ok(Value::Float(a.as_f64().unwrap() / d))
        }
        _ => Err(EngineError::Type(format!(
            "cannot divide {} by {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

/// Modulo on integers.
pub fn rem(a: &Value, b: &Value) -> EngineResult<Value> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Int(x), Value::Int(y)) if *y != 0 => Ok(Value::Int(x % y)),
        (Value::Int(_), Value::Int(_)) => Err(EngineError::Type("modulo by zero".into())),
        _ => Err(EngineError::Type(format!(
            "cannot apply % to {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

/// String concatenation.
pub fn concat(a: &Value, b: &Value) -> EngineResult<Value> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        _ => Ok(Value::Str(format!("{a}{b}"))),
    }
}

/// SQL comparison: `None` when either side is NULL (three-valued logic),
/// error on incomparable types.
pub fn compare(a: &Value, b: &Value) -> EngineResult<Option<Ordering>> {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Ok(None),
        (Value::Bool(x), Value::Bool(y)) => Ok(Some(x.cmp(y))),
        (Value::Str(x), Value::Str(y)) => Ok(Some(x.as_str().cmp(y.as_str()))),
        (Value::Date(x), Value::Date(y)) => Ok(Some(x.cmp(y))),
        (Value::Int(x), Value::Int(y)) => Ok(Some(x.cmp(y))),
        (Value::Decimal { raw: xr, scale: xs }, Value::Decimal { raw: yr, scale: ys }) => {
            // Compare in the wider scale; i128 is ample for stored data.
            let s = (*xs).max(*ys);
            let x = rescale(*xr, *xs, s)?;
            let y = rescale(*yr, *ys, s)?;
            Ok(Some(x.cmp(&y)))
        }
        _ if a.is_numeric() && b.is_numeric() => {
            let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
            Ok(x.partial_cmp(&y))
        }
        _ => Err(EngineError::Type(format!(
            "cannot compare {} with {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

/// Equality for grouping/dedup/hash-join keys: NULL groups with NULL
/// (SQL `GROUP BY` semantics), numerics compare by value.
pub fn group_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Null, _) | (_, Value::Null) => false,
        _ => matches!(compare(a, b), Ok(Some(Ordering::Equal))),
    }
}

/// A hashable key image of a value for hash joins and grouping.
/// Numeric values of different representations map to the same key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    Null,
    Bool(bool),
    Int(i64),
    /// Float bits (canonicalized so `-0.0 == 0.0`).
    Float(u64),
    /// Decimal normalized to scale 6.
    Decimal(i128),
    Str(String),
    Date(Day),
}

impl Value {
    /// The grouping/hashing key image. Numerics that compare equal map to
    /// the same key (ints and decimals normalize to scale-6 decimals;
    /// floats hash by bits).
    pub fn key(&self) -> EngineResult<Key> {
        Ok(match self {
            Value::Null => Key::Null,
            Value::Bool(b) => Key::Bool(*b),
            Value::Int(i) => Key::Decimal(*i as i128 * 1_000_000),
            Value::Float(f) => {
                let c = if *f == 0.0 { 0.0 } else { *f };
                if c.fract() == 0.0 && c.abs() < 1e18 {
                    Key::Decimal(c as i128 * 1_000_000)
                } else {
                    Key::Float(c.to_bits())
                }
            }
            Value::Decimal { raw, scale } => Key::Decimal(rescale(*raw, *scale, 6)?),
            Value::Str(s) => Key::Str(s.clone()),
            Value::Date(d) => Key::Date(*d),
            Value::Interval { .. } => {
                return Err(EngineError::Type("interval cannot be a key".into()))
            }
        })
    }
}

/// Append the grouping/hashing key image of `v` to `buf` as a tagged
/// byte string. Byte equality of encodings coincides exactly with
/// [`Key`] equality: numerics that normalize to the same scale-6
/// decimal encode identically, and every element is fixed-width or
/// length-prefixed so multi-column concatenations stay injective. The
/// row engine's grouping and hash-join loops key on these encodings
/// instead of allocating a `Vec<Key>` per row.
pub fn encode_key(v: &Value, buf: &mut Vec<u8>) -> EngineResult<()> {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(*b as u8);
        }
        Value::Int(i) => {
            buf.push(2);
            buf.extend_from_slice(&(*i as i128 * 1_000_000).to_le_bytes());
        }
        Value::Float(f) => {
            // Mirror `Value::key`: canonicalize -0.0, fold integral
            // floats into the decimal domain.
            let c = if *f == 0.0 { 0.0 } else { *f };
            if c.fract() == 0.0 && c.abs() < 1e18 {
                buf.push(2);
                buf.extend_from_slice(&(c as i128 * 1_000_000).to_le_bytes());
            } else {
                buf.push(3);
                buf.extend_from_slice(&c.to_bits().to_le_bytes());
            }
        }
        Value::Decimal { raw, scale } => {
            buf.push(2);
            buf.extend_from_slice(&rescale(*raw, *scale, 6)?.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(4);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.push(5);
            buf.extend_from_slice(&d.to_le_bytes());
        }
        Value::Interval { .. } => {
            return Err(EngineError::Type("interval cannot be a key".into()))
        }
    }
    Ok(())
}

/// SQL `LIKE` with `%` and `_` wildcards (iterative two-pointer matcher).
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let (mut star, mut mark) = (None::<usize>, 0usize);
    while ti < t.len() {
        // The '%' wildcard must be tested before the literal match: a
        // literal '%' in the *text* would otherwise shadow it.
        if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            mark = ti;
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if let Some(s) = star {
            // Backtrack: let the last % absorb one more character.
            pi = s + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_display() {
        assert_eq!(Value::cents(12345).to_string(), "123.45");
        assert_eq!(Value::cents(-205).to_string(), "-2.05");
        assert_eq!(Value::decimal(5, 2).to_string(), "0.05");
        assert_eq!(Value::decimal(7, 0).to_string(), "7");
    }

    #[test]
    fn float_vs_guarded_mul() {
        let price = Value::cents(100_000); // 1000.00
        let disc = Value::decimal(5, 2); // 0.05
        let f = mul(&price, &disc, ArithMode::Float).unwrap();
        let g = mul(&price, &disc, ArithMode::GuardedDecimal).unwrap();
        assert!(matches!(f, Value::Float(x) if (x - 50.0).abs() < 1e-9));
        match g {
            Value::Decimal { raw, scale } => {
                assert_eq!(scale, 4);
                assert_eq!(raw, 500_000); // 50.0000
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn guarded_mul_caps_scale() {
        let a = Value::decimal(123_456, 4);
        let b = Value::decimal(789_012, 4);
        match mul(&a, &b, ArithMode::GuardedDecimal).unwrap() {
            Value::Decimal { scale, .. } => assert_eq!(scale, 6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn guarded_overflow_detected() {
        let big = Value::decimal(i128::MAX / 2, 2);
        assert!(matches!(
            mul(&big, &big, ArithMode::GuardedDecimal),
            Err(EngineError::Overflow(_))
        ));
    }

    #[test]
    fn integer_overflow_detected() {
        assert!(matches!(
            add(&Value::Int(i64::MAX), &Value::Int(1), ArithMode::Float),
            Err(EngineError::Overflow(_))
        ));
    }

    #[test]
    fn date_interval_arithmetic() {
        let d = Value::Date(sqalpel_datagen::calendar::parse_days("1994-01-01").unwrap());
        let plus_year = add(
            &d,
            &Value::Interval { months: 12, days: 0 },
            ArithMode::Float,
        )
        .unwrap();
        assert_eq!(plus_year.to_string(), "1995-01-01");
        let minus_90 = sub(&d, &Value::Interval { months: 0, days: 90 }, ArithMode::Float).unwrap();
        assert_eq!(minus_90.to_string(), "1993-10-03");
    }

    #[test]
    fn date_difference_in_days() {
        let a = Value::Date(10);
        let b = Value::Date(3);
        assert!(matches!(sub(&a, &b, ArithMode::Float).unwrap(), Value::Int(7)));
    }

    #[test]
    fn null_propagates() {
        assert!(add(&Value::Null, &Value::Int(1), ArithMode::Float)
            .unwrap()
            .is_null());
        assert!(mul(&Value::cents(1), &Value::Null, ArithMode::GuardedDecimal)
            .unwrap()
            .is_null());
        assert_eq!(compare(&Value::Null, &Value::Int(1)).unwrap(), None);
    }

    #[test]
    fn comparisons_across_numeric_types() {
        let c = compare(&Value::Int(5), &Value::cents(500)).unwrap();
        assert_eq!(c, Some(Ordering::Equal));
        let d = compare(&Value::decimal(5, 2), &Value::Float(0.05)).unwrap();
        assert_eq!(d, Some(Ordering::Equal));
        let e = compare(&Value::decimal(51, 3), &Value::decimal(5, 2)).unwrap();
        assert_eq!(e, Some(Ordering::Greater));
    }

    #[test]
    fn incomparable_types_error() {
        assert!(compare(&Value::Int(1), &Value::Str("x".into())).is_err());
    }

    #[test]
    fn keys_unify_numeric_representations() {
        assert_eq!(
            Value::Int(5).key().unwrap(),
            Value::cents(500).key().unwrap()
        );
        assert_eq!(
            Value::Float(5.0).key().unwrap(),
            Value::Int(5).key().unwrap()
        );
        assert_ne!(
            Value::Int(5).key().unwrap(),
            Value::Int(6).key().unwrap()
        );
    }

    #[test]
    fn encoded_keys_agree_with_key_equality() {
        let enc = |v: &Value| {
            let mut b = Vec::new();
            encode_key(v, &mut b).unwrap();
            b
        };
        // Same Key ⇒ same encoding.
        assert_eq!(enc(&Value::Int(5)), enc(&Value::cents(500)));
        assert_eq!(enc(&Value::Float(5.0)), enc(&Value::Int(5)));
        assert_eq!(enc(&Value::Float(-0.0)), enc(&Value::Float(0.0)));
        // Different Key ⇒ different encoding, even across types that
        // share raw bytes (Int 0 vs Bool false vs Null vs empty string).
        let distinct = [
            enc(&Value::Int(0)),
            enc(&Value::Bool(false)),
            enc(&Value::Null),
            enc(&Value::Str(String::new())),
            enc(&Value::Date(0)),
            enc(&Value::Float(0.5)),
        ];
        for (i, a) in distinct.iter().enumerate() {
            for b in &distinct[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert!(encode_key(
            &Value::Interval { months: 1, days: 0 },
            &mut Vec::new()
        )
        .is_err());
    }

    #[test]
    fn division() {
        let v = div(&Value::Int(7), &Value::Int(2), ArithMode::Float).unwrap();
        assert!(matches!(v, Value::Float(x) if (x - 3.5).abs() < 1e-12));
        assert!(div(&Value::Int(1), &Value::Int(0), ArithMode::Float).is_err());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("PROMO ANODIZED TIN", "PROMO%"));
        assert!(like_match("ECONOMY BRASS", "%BRASS"));
        assert!(like_match("abc special xyz requests q", "%special%requests%"));
        assert!(!like_match("specialrequests", "%special_%requests%"));
        assert!(like_match("a", "_"));
        assert!(!like_match("ab", "_"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        // A literal '%' in the text must not confuse the wildcard.
        assert!(like_match("%a", "%"));
        assert!(like_match("100%", "100%"));
        assert!(like_match("100% done", "100%"));
        assert!(like_match("MEDIUM POLISHED COPPER", "MEDIUM POLISHED%"));
        assert!(!like_match("MEDIUM PLATED COPPER", "MEDIUM POLISHED%"));
    }

    #[test]
    fn like_backtracking_stress() {
        assert!(like_match(&"a".repeat(50), "%a%a%a%a%"));
        assert!(!like_match(&"a".repeat(50), "%b%"));
    }

    #[test]
    fn group_eq_null_semantics() {
        assert!(group_eq(&Value::Null, &Value::Null));
        assert!(!group_eq(&Value::Null, &Value::Int(0)));
        assert!(group_eq(&Value::Int(2), &Value::cents(200)));
    }

    #[test]
    fn concat_strings() {
        let v = concat(&Value::Str("a".into()), &Value::Str("b".into())).unwrap();
        assert_eq!(v.to_string(), "ab");
    }
}
