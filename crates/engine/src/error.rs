//! Engine error type.

use std::fmt;

/// Anything that can go wrong while binding, planning or executing a query.
///
/// The platform treats these as first-class results: a morphed query that
/// fails to execute is recorded as an *error run* (the yellow dots in the
/// paper's Figure 7), not discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// SQL failed to parse.
    Parse(String),
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A column could not be resolved (or was ambiguous).
    UnknownColumn(String),
    /// Ambiguous unqualified column reference.
    AmbiguousColumn(String),
    /// Type error during evaluation.
    Type(String),
    /// A feature the engine does not support.
    Unsupported(String),
    /// Numeric overflow detected by the guarded (ColStore) arithmetic.
    Overflow(String),
    /// A scalar subquery returned more than one row.
    ScalarCardinality(String),
    /// Execution exceeded the configured row budget (runaway cartesian
    /// products from morphed queries).
    Budget(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(m) => write!(f, "parse error: {m}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            EngineError::Type(m) => write!(f, "type error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Overflow(m) => write!(f, "numeric overflow: {m}"),
            EngineError::ScalarCardinality(m) => {
                write!(f, "scalar subquery returned more than one row: {m}")
            }
            EngineError::Budget(m) => write!(f, "row budget exceeded: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<sqalpel_sql::ParseError> for EngineError {
    fn from(e: sqalpel_sql::ParseError) -> Self {
        EngineError::Parse(e.to_string())
    }
}

pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            EngineError::UnknownTable("nation".into()).to_string(),
            "unknown table: nation"
        );
        assert!(EngineError::Overflow("sum".into()).to_string().contains("overflow"));
    }

    #[test]
    fn from_parse_error() {
        let pe = sqalpel_sql::parse_query("select").unwrap_err();
        let ee: EngineError = pe.into();
        assert!(matches!(ee, EngineError::Parse(_)));
    }
}
