//! Operator-level profiling for both executors.
//!
//! A [`Profiler`] is an *optional* hook owned by an executor. When absent
//! (the default), the execution paths take an early return and no
//! metrics code runs — profiling is zero-cost when off. When present,
//! every IR node execution records a [`NodeMetrics`] sample keyed by the
//! node's address ([`node_key`]), which is stable for the lifetime of
//! the bound plan tree.
//!
//! Morsel-parallel kernels cannot write into the coordinator's profiler
//! from worker threads; instead each worker fills a private
//! [`ProfileShard`] and the coordinator [`Profiler::absorb`]s the shards
//! *after* `run_on_morsels` returns — in morsel order, though the merge
//! is order-independent by construction (sums only). The property tests
//! in `tests/profile_props.rs` pin merge associativity/commutativity and
//! count conservation.

use std::cell::RefCell;
use std::collections::HashMap;

/// Per-node counters: everything is a sum, so shard merges commute.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Rows consumed from the node's children (table rows for scans).
    pub rows_in: u64,
    /// Rows the node handed to its parent.
    pub rows_out: u64,
    /// Distinct executions (morsels for worker-side scans, invocations
    /// otherwise).
    pub batches: u64,
    /// Inclusive wall-clock nanoseconds spent in the node and below.
    pub nanos: u64,
    /// Storage chunks a scan actually materialized. Zero for non-scan
    /// nodes and for engines without chunked storage (the row engine).
    pub chunks_scanned: u64,
    /// Storage chunks a scan skipped outright because the zone map proved
    /// no row could pass the predicate.
    pub chunks_skipped: u64,
}

impl NodeMetrics {
    /// Accumulate another sample into this one.
    pub fn absorb(&mut self, other: &NodeMetrics) {
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.batches += other.batches;
        self.nanos += other.nanos;
        self.chunks_scanned += other.chunks_scanned;
        self.chunks_skipped += other.chunks_skipped;
    }
}

/// One thread's worth of per-node metrics; mergeable.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ProfileShard {
    nodes: HashMap<usize, NodeMetrics>,
}

impl ProfileShard {
    pub fn new() -> ProfileShard {
        ProfileShard::default()
    }

    /// Add a sample for `key`.
    pub fn record(&mut self, key: usize, sample: NodeMetrics) {
        self.nodes.entry(key).or_default().absorb(&sample);
    }

    /// Fold another shard in. Associative and commutative: every field
    /// is a sum.
    pub fn merge(&mut self, other: &ProfileShard) {
        for (key, m) in &other.nodes {
            self.nodes.entry(*key).or_default().absorb(m);
        }
    }

    pub fn get(&self, key: usize) -> Option<&NodeMetrics> {
        self.nodes.get(&key)
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (usize, &NodeMetrics)> {
        self.nodes.iter().map(|(k, m)| (*k, m))
    }

    /// Total rows_out across all nodes — the conserved quantity the
    /// property tests check under arbitrary merge orders.
    pub fn total_rows_out(&self) -> u64 {
        self.nodes.values().map(|m| m.rows_out).sum()
    }
}

/// The coordinator-side profiler an executor optionally owns.
///
/// Interior mutability because the executors take `&self` everywhere;
/// executors are single-threaded per worker, so a `RefCell` suffices.
#[derive(Debug, Default)]
pub struct Profiler {
    shard: RefCell<ProfileShard>,
}

impl Profiler {
    pub fn new() -> Profiler {
        Profiler::default()
    }

    pub fn record(&self, key: usize, sample: NodeMetrics) {
        self.shard.borrow_mut().record(key, sample);
    }

    /// Merge a worker's shard in (after morsel execution).
    pub fn absorb(&self, shard: &ProfileShard) {
        self.shard.borrow_mut().merge(shard);
    }

    /// The cumulative rows_out of one node so far — used by parents to
    /// compute their rows_in as a delta across a child execution, which
    /// stays correct when a subtree runs more than once (correlated
    /// subqueries).
    pub fn rows_out_of(&self, key: usize) -> u64 {
        self.shard
            .borrow()
            .get(key)
            .map(|m| m.rows_out)
            .unwrap_or(0)
    }

    /// Take the accumulated profile, leaving the profiler empty.
    pub fn take(&self) -> ProfileShard {
        std::mem::take(&mut self.shard.borrow_mut())
    }

    pub fn snapshot(&self) -> ProfileShard {
        self.shard.borrow().clone()
    }
}

/// Address-based key for a plan node. Bound plan trees are immutable and
/// outlive execution, so the address is a stable identity — the same
/// trick `exec_*`'s subquery caches use.
pub fn node_key<T>(node: &T) -> usize {
    node as *const T as usize
}

/// Distill an executed profile into cardinality hints for the optimizer.
///
/// Walks the bound plan that produced `prof` (profile keys are node
/// addresses, so it must be the *same* tree instance) and records each
/// node's actual `rows_out` under its binding set — the join-order
/// invariant currency [`crate::ir::cost::CardHints`] trades in. The walk
/// is top-down and first-writer-wins, so for a leaf the topmost operator
/// over that single binding (its filter, if any) provides the post-filter
/// cardinality the optimizer actually wants.
pub fn extract_feedback(
    bq: &crate::plan::BoundQuery,
    prof: &ProfileShard,
) -> crate::ir::cost::CardHints {
    let mut hints = crate::ir::cost::CardHints::default();
    feedback_plan(&bq.core, prof, &mut hints);
    for (_, body) in &bq.ctes {
        feedback_plan(&body.core, prof, &mut hints);
    }
    hints
}

fn feedback_plan(
    p: &crate::plan::Plan,
    prof: &ProfileShard,
    hints: &mut crate::ir::cost::CardHints,
) {
    use crate::plan::Plan;
    let bindings: Vec<String> = p.bindings().into_iter().collect();
    if let Some(m) = prof.get(node_key(p)) {
        if hints.get(&bindings).is_none() {
            hints.insert(bindings, m.rows_out as f64);
        }
    }
    match p {
        Plan::Filter { input, .. } => feedback_plan(input, prof, hints),
        Plan::Join { left, right, .. } => {
            feedback_plan(left, prof, hints);
            feedback_plan(right, prof, hints);
        }
        Plan::Derived { query, .. } => {
            for (_, body) in &query.ctes {
                feedback_plan(&body.core, prof, hints);
            }
            feedback_plan(&query.core, prof, hints);
        }
        Plan::Scan { .. } | Plan::Cte { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows_in: u64, rows_out: u64, batches: u64, nanos: u64) -> NodeMetrics {
        NodeMetrics {
            rows_in,
            rows_out,
            batches,
            nanos,
            ..NodeMetrics::default()
        }
    }

    #[test]
    fn record_accumulates_per_key() {
        let mut s = ProfileShard::new();
        s.record(1, sample(10, 5, 1, 100));
        s.record(1, sample(20, 15, 1, 50));
        s.record(2, sample(1, 1, 1, 1));
        assert_eq!(s.get(1), Some(&sample(30, 20, 2, 150)));
        assert_eq!(s.get(2), Some(&sample(1, 1, 1, 1)));
        assert_eq!(s.total_rows_out(), 21);
    }

    #[test]
    fn merge_is_commutative_on_disjoint_and_overlapping_keys() {
        let mut a = ProfileShard::new();
        a.record(1, sample(10, 10, 1, 5));
        a.record(2, sample(3, 2, 1, 7));
        let mut b = ProfileShard::new();
        b.record(2, sample(1, 1, 1, 1));
        b.record(3, sample(9, 9, 2, 2));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_rows_out(), a.total_rows_out() + b.total_rows_out());
    }

    #[test]
    fn profiler_take_drains() {
        let p = Profiler::new();
        p.record(7, sample(4, 4, 1, 9));
        assert_eq!(p.rows_out_of(7), 4);
        let taken = p.take();
        assert_eq!(taken.get(7), Some(&sample(4, 4, 1, 9)));
        assert!(p.take().is_empty());
    }
}
