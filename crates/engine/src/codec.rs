//! Fixed-width group-key codec and radix partitioning for the hash
//! kernels (grouped aggregation and equi-join).
//!
//! The executors' hot loops used to build a `Vec<Key>` per row and clone
//! it on first-seen insert — one or two heap allocations per input row.
//! This module replaces that with a typed encoder over the key columns:
//!
//! - when every key column has a fixed width and the widths sum to at
//!   most 8 bytes, a row's key packs into a single `u64` (**u64 mode**);
//! - otherwise the key is serialized into one reusable scratch buffer
//!   and owned copies are made only per *distinct* key.
//!
//! Encodings are injective per codec: every column is either fixed-width
//! or length-prefixed, so concatenation cannot collide. For joins,
//! [`join_codecs`] assigns both sides of each equality pair the same
//! width and value domain (integers joined against decimals are widened
//! to the scale-6 `i128` domain of [`crate::value::Key`]), so byte
//! equality coincides exactly with `Key` equality.
//!
//! Partitioning uses the top 4 bits of a fixed-seed hash — independent
//! of thread count, so partition contents (and with them every
//! deterministic ordering argument) never depend on parallelism.

use crate::error::{EngineError, EngineResult};
use crate::exec_col::ColVec;
use crate::value::Value;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Number of radix partitions. Fixed (not derived from the thread
/// count) so partition assignment is a pure function of the key.
pub const NPARTS: usize = 16;

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

/// An FxHash-style multiply-rotate hasher: a few cycles per word, which
/// matters more than distribution quality for small integer keys. The
/// final xor-shift mix spreads entropy into the high bits that
/// [`partition`] consumes.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(buf));
        }
        self.fold(bytes.len() as u64);
    }

    #[inline]
    fn write_u64(&mut self, w: u64) {
        self.fold(w);
    }

    #[inline]
    fn write_u8(&mut self, b: u8) {
        self.fold(b as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^ (h >> 32)
    }
}

pub type FxBuild = BuildHasherDefault<FxHasher>;

/// Hash one packed `u64` key.
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

/// Hash one serialized key.
#[inline]
pub fn hash_bytes(b: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(b);
    h.finish()
}

/// The radix partition of a hash: its top 4 bits.
#[inline]
pub fn partition(h: u64) -> usize {
    (h >> 60) as usize
}

/// One key column's encoder. Borrowed straight from the evaluated
/// [`ColVec`]s, so encoding reads the typed storage with no boxing.
enum ColEnc<'a> {
    /// `i64` as 8 little-endian bytes.
    I64(&'a [i64]),
    /// Days as 4 little-endian bytes.
    Date(&'a [i32]),
    /// One byte.
    Bool(&'a [bool]),
    /// Decimal rescaled to scale 6 (the [`value::Key`] normalization,
    /// with the identical overflow check), 16 little-endian bytes.
    Dec6 {
        raw: &'a [i128],
        /// `10^(6 - scale)` when upscaling (checked), else 1.
        mul: i128,
        /// `10^(scale - 6)` when downscaling (lossy, like `Key`), else 1.
        div: i128,
    },
    /// `i64` widened into the scale-6 decimal domain (for join pairs
    /// mixing integer and decimal sides), 16 little-endian bytes.
    IntDec6(&'a [i64]),
    /// Length-prefixed UTF-8 bytes (self-delimiting, so multi-column
    /// concatenations stay injective).
    Str(&'a [String]),
    /// Dictionary codes as 4 little-endian bytes. Valid for GROUP BY
    /// keys: within one column, equal codes ⇔ equal strings.
    DictCode(&'a [u32]),
    /// Dictionary codes decoded to their length-prefixed string bytes —
    /// the join-side encoding, where the two sides may use different
    /// dictionaries and only the strings are comparable.
    DictStr {
        codes: &'a [u32],
        dict: &'a [String],
    },
    /// A broadcast constant, pre-encoded once.
    Const(Vec<u8>),
}

impl ColEnc<'_> {
    fn dec6(raw: &[i128], scale: u8) -> ColEnc<'_> {
        let (mul, div) = if scale <= 6 {
            (10i128.pow((6 - scale) as u32), 1)
        } else {
            (1, 10i128.pow((scale - 6) as u32))
        };
        ColEnc::Dec6 { raw, mul, div }
    }

    /// Encoded byte width; `None` for variable-width strings.
    fn width(&self) -> Option<usize> {
        match self {
            ColEnc::I64(_) => Some(8),
            ColEnc::Date(_) => Some(4),
            ColEnc::Bool(_) => Some(1),
            ColEnc::Dec6 { .. } | ColEnc::IntDec6(_) => Some(16),
            ColEnc::DictCode(_) => Some(4),
            ColEnc::Str(_) | ColEnc::DictStr { .. } => None,
            ColEnc::Const(b) => Some(b.len()),
        }
    }
}

/// Rescale with the exact failure mode of [`Value::key`]: upscaling is
/// overflow-checked, downscaling truncates.
#[inline]
fn rescale6(raw: i128, mul: i128, div: i128) -> EngineResult<i128> {
    if div != 1 {
        Ok(raw / div)
    } else {
        raw.checked_mul(mul)
            .ok_or_else(|| EngineError::Overflow("decimal rescale".into()))
    }
}

/// One row's encoded key: packed or borrowed from the scratch buffer.
#[derive(Clone, Copy)]
pub enum EncRow<'b> {
    U64(u64),
    Bytes(&'b [u8]),
}

impl EncRow<'_> {
    #[inline]
    pub fn hash(&self) -> u64 {
        match self {
            EncRow::U64(x) => hash_u64(*x),
            EncRow::Bytes(b) => hash_bytes(b),
        }
    }

    /// Copy out for storage beyond the scratch buffer's lifetime — the
    /// one place the bytes mode allocates, per distinct key.
    pub fn to_owned_enc(&self) -> OwnedEnc {
        match self {
            EncRow::U64(x) => OwnedEnc::U64(*x),
            EncRow::Bytes(b) => OwnedEnc::Bytes(b.to_vec()),
        }
    }
}

/// An owned encoded key (per-group state in the partial tables).
#[derive(Clone)]
pub enum OwnedEnc {
    U64(u64),
    Bytes(Vec<u8>),
}

impl OwnedEnc {
    #[inline]
    pub fn as_row(&self) -> EncRow<'_> {
        match self {
            OwnedEnc::U64(x) => EncRow::U64(*x),
            OwnedEnc::Bytes(b) => EncRow::Bytes(b),
        }
    }
}

/// A whole-row key encoder over evaluated key columns.
pub struct GroupCodec<'a> {
    encs: Vec<ColEnc<'a>>,
    u64_mode: bool,
}

impl<'a> GroupCodec<'a> {
    fn new(encs: Vec<ColEnc<'a>>) -> GroupCodec<'a> {
        let total: Option<usize> = encs.iter().try_fold(0usize, |acc, e| {
            e.width().map(|w| acc + w)
        });
        let u64_mode = matches!(total, Some(t) if t <= 8);
        GroupCodec { encs, u64_mode }
    }

    pub fn u64_mode(&self) -> bool {
        self.u64_mode
    }

    /// A codec for GROUP BY key columns, or `None` when any column needs
    /// the legacy `Vec<Key>` path: `Float`/`Val` columns (whose rows mix
    /// representations that `Key` unifies) and interval constants (which
    /// must keep erroring per row exactly as `Value::key` does).
    pub fn for_group(key_cols: &'a [ColVec]) -> Option<GroupCodec<'a>> {
        let mut encs = Vec::with_capacity(key_cols.len());
        for col in key_cols {
            encs.push(match col {
                ColVec::Int(v) => ColEnc::I64(v),
                ColVec::Date(v) => ColEnc::Date(v),
                ColVec::Bool(v) => ColEnc::Bool(v),
                ColVec::Decimal { raw, scale } => ColEnc::dec6(raw, *scale),
                ColVec::Str(v) => ColEnc::Str(v),
                // Grouping happens within one column, so the 4-byte code
                // is an injective stand-in for the string.
                ColVec::Dict { codes, .. } => ColEnc::DictCode(codes),
                ColVec::Const(Value::Interval { .. }, _) => return None,
                // Any other constant puts every row in one group; the
                // encoding just has to be self-consistent.
                ColVec::Const(..) => ColEnc::Const(Vec::new()),
                ColVec::Float(_) | ColVec::Val(_) => return None,
            });
        }
        Some(GroupCodec::new(encs))
    }

    /// Pack one row's key into a `u64`. Only callable in u64 mode, whose
    /// encoders are all infallible.
    #[inline]
    pub fn encode_u64(&self, i: usize) -> u64 {
        debug_assert!(self.u64_mode);
        let mut acc = 0u64;
        for enc in &self.encs {
            let (w, v) = match enc {
                ColEnc::I64(v) => (8, v[i] as u64),
                ColEnc::Date(v) => (4, v[i] as u32 as u64),
                ColEnc::Bool(v) => (1, v[i] as u64),
                ColEnc::DictCode(v) => (4, v[i] as u64),
                ColEnc::Const(b) => {
                    let mut buf = [0u8; 8];
                    buf[..b.len()].copy_from_slice(b);
                    (b.len(), u64::from_le_bytes(buf))
                }
                _ => unreachable!("u64 mode excludes wide and var-width encoders"),
            };
            // Uniform little-endian packing: both join sides shift the
            // same widths in the same order, so packed keys are equal
            // iff the serialized keys would be.
            acc = if w >= 8 { v } else { (acc << (8 * w)) | v };
        }
        acc
    }

    /// Encode one row's key, reusing `buf` as scratch in bytes mode.
    #[inline]
    pub fn encode<'b>(&self, i: usize, buf: &'b mut Vec<u8>) -> EngineResult<EncRow<'b>> {
        if self.u64_mode {
            return Ok(EncRow::U64(self.encode_u64(i)));
        }
        buf.clear();
        for enc in &self.encs {
            match enc {
                ColEnc::I64(v) => buf.extend_from_slice(&v[i].to_le_bytes()),
                ColEnc::Date(v) => buf.extend_from_slice(&v[i].to_le_bytes()),
                ColEnc::Bool(v) => buf.push(v[i] as u8),
                ColEnc::Dec6 { raw, mul, div } => {
                    buf.extend_from_slice(&rescale6(raw[i], *mul, *div)?.to_le_bytes())
                }
                ColEnc::IntDec6(v) => {
                    buf.extend_from_slice(&(v[i] as i128 * 1_000_000).to_le_bytes())
                }
                ColEnc::Str(v) => {
                    let s = v[i].as_bytes();
                    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    buf.extend_from_slice(s);
                }
                ColEnc::DictCode(v) => buf.extend_from_slice(&v[i].to_le_bytes()),
                ColEnc::DictStr { codes, dict } => {
                    let s = dict[codes[i] as usize].as_bytes();
                    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    buf.extend_from_slice(s);
                }
                ColEnc::Const(b) => buf.extend_from_slice(b),
            }
        }
        Ok(EncRow::Bytes(buf))
    }
}

/// The type class of one join-key side, used to pick a common encoding
/// domain for the pair.
#[derive(Clone, Copy, PartialEq, Eq)]
enum JClass {
    Int,
    Dec,
    Date,
    Bool,
    Str,
}

fn classify(col: &ColVec) -> Option<JClass> {
    Some(match col {
        ColVec::Int(_) => JClass::Int,
        ColVec::Decimal { .. } => JClass::Dec,
        ColVec::Date(_) => JClass::Date,
        ColVec::Bool(_) => JClass::Bool,
        ColVec::Str(_) | ColVec::Dict { .. } => JClass::Str,
        ColVec::Const(v, _) => match v {
            Value::Int(_) => JClass::Int,
            Value::Decimal { .. } => JClass::Dec,
            Value::Date(_) => JClass::Date,
            Value::Bool(_) => JClass::Bool,
            Value::Str(_) => JClass::Str,
            // Null must keep Key::Null == Key::Null matching; floats and
            // intervals keep their per-row `Value::key` behaviour.
            _ => return None,
        },
        ColVec::Float(_) | ColVec::Val(_) => return None,
    })
}

/// Encode one side of a pair in the given common domain. `Dec` widens
/// integer sides into the scale-6 `i128` domain so cross-type equality
/// matches [`value::Key`]'s normalization.
fn enc_in_domain<'a>(col: &'a ColVec, class: JClass) -> EngineResult<ColEnc<'a>> {
    Ok(match (col, class) {
        (ColVec::Int(v), JClass::Int) => ColEnc::I64(v),
        (ColVec::Int(v), JClass::Dec) => ColEnc::IntDec6(v),
        (ColVec::Decimal { raw, scale }, JClass::Dec) => ColEnc::dec6(raw, *scale),
        (ColVec::Date(v), JClass::Date) => ColEnc::Date(v),
        (ColVec::Bool(v), JClass::Bool) => ColEnc::Bool(v),
        (ColVec::Str(v), JClass::Str) => ColEnc::Str(v),
        // Joins may pair different dictionaries (or a dict against raw
        // strings): encode the underlying bytes, not the codes.
        (ColVec::Dict { codes, dict }, JClass::Str) => ColEnc::DictStr {
            codes,
            dict: dict.as_slice(),
        },
        (ColVec::Const(v, _), class) => ColEnc::Const(match (v, class) {
            (Value::Int(i), JClass::Int) => i.to_le_bytes().to_vec(),
            (Value::Int(i), JClass::Dec) => (*i as i128 * 1_000_000).to_le_bytes().to_vec(),
            (Value::Decimal { raw, scale }, JClass::Dec) => {
                // The same checked rescale `Value::key` performs per row;
                // a failing constant fails here instead (same error).
                let (mul, div) = if *scale <= 6 {
                    (10i128.pow((6 - *scale) as u32), 1)
                } else {
                    (1, 10i128.pow((*scale - 6) as u32))
                };
                rescale6(*raw, mul, div)?.to_le_bytes().to_vec()
            }
            (Value::Date(d), JClass::Date) => d.to_le_bytes().to_vec(),
            (Value::Bool(b), JClass::Bool) => vec![*b as u8],
            (Value::Str(s), JClass::Str) => {
                let mut b = Vec::with_capacity(4 + s.len());
                b.extend_from_slice(&(s.len() as u32).to_le_bytes());
                b.extend_from_slice(s.as_bytes());
                b
            }
            _ => unreachable!("classify admitted this constant"),
        }),
        _ => unreachable!("classify admitted this column"),
    })
}

/// Build matched codecs for the two sides of an equi-join, or `None`
/// when any pair needs the legacy `Vec<Key>` path (floats, mixed `Val`
/// columns, NULL constants, or sides in incomparable type classes).
/// Both codecs get identical per-pair widths, so their u64 modes agree
/// and byte equality across sides coincides with `Key` equality.
pub fn join_codecs<'a>(
    lkeys: &'a [ColVec],
    rkeys: &'a [ColVec],
) -> EngineResult<Option<(GroupCodec<'a>, GroupCodec<'a>)>> {
    let mut lencs = Vec::with_capacity(lkeys.len());
    let mut rencs = Vec::with_capacity(rkeys.len());
    for (lcol, rcol) in lkeys.iter().zip(rkeys) {
        let (Some(lc), Some(rc)) = (classify(lcol), classify(rcol)) else {
            return Ok(None);
        };
        let class = match (lc, rc) {
            (a, b) if a == b => a,
            // Integers and decimals compare by value: widen both sides.
            (JClass::Int, JClass::Dec) | (JClass::Dec, JClass::Int) => JClass::Dec,
            // Incomparable classes never match, but the legacy path is
            // the one that knows the exact per-row semantics.
            _ => return Ok(None),
        };
        lencs.push(enc_in_domain(lcol, class)?);
        rencs.push(enc_in_domain(rcol, class)?);
    }
    let l = GroupCodec::new(lencs);
    let r = GroupCodec::new(rencs);
    debug_assert_eq!(l.u64_mode, r.u64_mode);
    Ok(Some((l, r)))
}

/// Group-id hash table keyed by encoded rows. Bytes mode allocates an
/// owned key only on first-seen insert.
pub enum GroupMap {
    U64(HashMap<u64, u32, FxBuild>),
    Bytes(HashMap<Vec<u8>, u32, FxBuild>),
}

impl GroupMap {
    pub fn new(u64_mode: bool) -> GroupMap {
        if u64_mode {
            GroupMap::U64(HashMap::default())
        } else {
            GroupMap::Bytes(HashMap::default())
        }
    }

    #[inline]
    pub fn get(&self, k: &EncRow<'_>) -> Option<u32> {
        match (self, k) {
            (GroupMap::U64(m), EncRow::U64(x)) => m.get(x).copied(),
            (GroupMap::Bytes(m), EncRow::Bytes(b)) => m.get(*b).copied(),
            _ => unreachable!("key mode mismatch"),
        }
    }

    #[inline]
    pub fn insert(&mut self, k: &EncRow<'_>, gid: u32) {
        match (self, k) {
            (GroupMap::U64(m), EncRow::U64(x)) => {
                m.insert(*x, gid);
            }
            (GroupMap::Bytes(m), EncRow::Bytes(b)) => {
                m.insert(b.to_vec(), gid);
            }
            _ => unreachable!("key mode mismatch"),
        }
    }
}

/// Join build table: encoded key → build-side row indices in insertion
/// order. Bytes mode allocates an owned key only per distinct key
/// (`get_mut`-then-`insert`, never `entry(owned)`).
pub enum MatchMap {
    U64(HashMap<u64, Vec<u32>, FxBuild>),
    Bytes(HashMap<Vec<u8>, Vec<u32>, FxBuild>),
}

impl MatchMap {
    pub fn new(u64_mode: bool) -> MatchMap {
        if u64_mode {
            MatchMap::U64(HashMap::default())
        } else {
            MatchMap::Bytes(HashMap::default())
        }
    }

    #[inline]
    pub fn push(&mut self, k: &EncRow<'_>, row: u32) {
        match (self, k) {
            (MatchMap::U64(m), EncRow::U64(x)) => m.entry(*x).or_default().push(row),
            (MatchMap::Bytes(m), EncRow::Bytes(b)) => match m.get_mut(*b) {
                Some(v) => v.push(row),
                None => {
                    m.insert(b.to_vec(), vec![row]);
                }
            },
            _ => unreachable!("key mode mismatch"),
        }
    }

    #[inline]
    pub fn get(&self, k: &EncRow<'_>) -> Option<&[u32]> {
        match (self, k) {
            (MatchMap::U64(m), EncRow::U64(x)) => m.get(x).map(Vec::as_slice),
            (MatchMap::Bytes(m), EncRow::Bytes(b)) => m.get(*b).map(Vec::as_slice),
            _ => unreachable!("key mode mismatch"),
        }
    }
}

/// A per-(chunk, partition) arena of encoded build keys: flat storage,
/// no per-row allocation in bytes mode. Replayed in insertion order
/// into the partition's [`MatchMap`].
pub enum Bucket {
    U64(Vec<(u64, u32)>),
    Bytes {
        data: Vec<u8>,
        /// (start, len, row) triples into `data`.
        items: Vec<(u32, u32, u32)>,
    },
}

impl Bucket {
    pub fn new(u64_mode: bool) -> Bucket {
        if u64_mode {
            Bucket::U64(Vec::new())
        } else {
            Bucket::Bytes {
                data: Vec::new(),
                items: Vec::new(),
            }
        }
    }

    #[inline]
    pub fn push(&mut self, k: &EncRow<'_>, row: u32) {
        match (self, k) {
            (Bucket::U64(v), EncRow::U64(x)) => v.push((*x, row)),
            (Bucket::Bytes { data, items }, EncRow::Bytes(b)) => {
                items.push((data.len() as u32, b.len() as u32, row));
                data.extend_from_slice(b);
            }
            _ => unreachable!("key mode mismatch"),
        }
    }

    /// Append this bucket's keys to `m` in insertion order.
    pub fn append_to(&self, m: &mut MatchMap) {
        match self {
            Bucket::U64(v) => {
                for (x, row) in v {
                    m.push(&EncRow::U64(*x), *row);
                }
            }
            Bucket::Bytes { data, items } => {
                for (start, len, row) in items {
                    let b = &data[*start as usize..(*start + *len) as usize];
                    m.push(&EncRow::Bytes(b), *row);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_stable_and_in_range() {
        for x in [0u64, 1, 7, 4096, u64::MAX] {
            let p = partition(hash_u64(x));
            assert!(p < NPARTS);
            assert_eq!(p, partition(hash_u64(x)));
        }
        // The mix must spread small keys across partitions.
        let hit: std::collections::HashSet<usize> =
            (0..4096u64).map(|x| partition(hash_u64(x))).collect();
        assert!(hit.len() >= NPARTS / 2, "only {} partitions hit", hit.len());
    }

    #[test]
    fn group_codec_picks_u64_mode_by_width() {
        let ints = ColVec::Int(vec![1, 2, 3]);
        let dates = ColVec::Date(vec![10, 20, 30]);
        let c = GroupCodec::for_group(std::slice::from_ref(&ints)).unwrap();
        assert!(c.u64_mode());
        let cols = [ints.clone(), dates];
        let c2 = GroupCodec::for_group(&cols).unwrap();
        assert!(!c2.u64_mode(), "8 + 4 bytes exceeds one u64");
        let dec = ColVec::Decimal {
            raw: vec![100],
            scale: 2,
        };
        let c3 = GroupCodec::for_group(std::slice::from_ref(&dec)).unwrap();
        assert!(!c3.u64_mode());
    }

    #[test]
    fn float_and_val_columns_fall_back() {
        assert!(GroupCodec::for_group(&[ColVec::Float(vec![1.0])]).is_none());
        assert!(GroupCodec::for_group(&[ColVec::Val(vec![Value::Int(1)])]).is_none());
        assert!(GroupCodec::for_group(&[ColVec::Const(
            Value::Interval { months: 1, days: 0 },
            3
        )])
        .is_none());
        assert!(GroupCodec::for_group(&[ColVec::Const(Value::Null, 3)]).is_some());
    }

    #[test]
    fn encode_distinguishes_rows_and_repeats_groups() {
        let cols = [
            ColVec::Int(vec![1, 2, 1]),
            ColVec::Str(vec!["a".into(), "b".into(), "a".into()]),
        ];
        let c = GroupCodec::for_group(&cols).unwrap();
        let mut b0 = Vec::new();
        let mut b1 = Vec::new();
        let k0 = c.encode(0, &mut b0).unwrap().to_owned_enc();
        let k1 = c.encode(1, &mut b1).unwrap().to_owned_enc();
        let mut b2 = Vec::new();
        let k2 = c.encode(2, &mut b2).unwrap().to_owned_enc();
        let bytes = |k: &OwnedEnc| match k {
            OwnedEnc::Bytes(b) => b.clone(),
            OwnedEnc::U64(_) => panic!("expected bytes mode"),
        };
        assert_eq!(bytes(&k0), bytes(&k2));
        assert_ne!(bytes(&k0), bytes(&k1));
    }

    #[test]
    fn str_length_prefix_keeps_concatenation_injective() {
        // ("ab", "c") vs ("a", "bc") must not collide.
        let left = [
            ColVec::Str(vec!["ab".into()]),
            ColVec::Str(vec!["c".into()]),
        ];
        let right = [
            ColVec::Str(vec!["a".into()]),
            ColVec::Str(vec!["bc".into()]),
        ];
        let cl = GroupCodec::for_group(&left).unwrap();
        let cr = GroupCodec::for_group(&right).unwrap();
        let (mut bl, mut br) = (Vec::new(), Vec::new());
        let kl = cl.encode(0, &mut bl).unwrap().to_owned_enc();
        let kr = cr.encode(0, &mut br).unwrap().to_owned_enc();
        match (kl, kr) {
            (OwnedEnc::Bytes(a), OwnedEnc::Bytes(b)) => assert_ne!(a, b),
            _ => panic!("expected bytes mode"),
        }
    }

    #[test]
    fn join_codecs_unify_int_and_decimal_sides() {
        let l = [ColVec::Int(vec![5, 7])];
        let r = [ColVec::Decimal {
            raw: vec![500, 800],
            scale: 2,
        }];
        let (lc, rc) = join_codecs(&l, &r).unwrap().unwrap();
        let (mut bl, mut br) = (Vec::new(), Vec::new());
        // 5 == 5.00 in the decimal domain.
        let kl = lc.encode(0, &mut bl).unwrap().to_owned_enc();
        let kr = rc.encode(0, &mut br).unwrap().to_owned_enc();
        match (&kl, &kr) {
            (OwnedEnc::Bytes(a), OwnedEnc::Bytes(b)) => assert_eq!(a, b),
            _ => panic!("expected bytes mode"),
        }
        // 7 != 8.00.
        let kl = lc.encode(1, &mut bl).unwrap().to_owned_enc();
        let kr = rc.encode(1, &mut br).unwrap().to_owned_enc();
        match (&kl, &kr) {
            (OwnedEnc::Bytes(a), OwnedEnc::Bytes(b)) => assert_ne!(a, b),
            _ => panic!("expected bytes mode"),
        }
    }

    #[test]
    fn join_codecs_match_const_against_column() {
        let l = [ColVec::Int(vec![3, 4])];
        let r = [ColVec::Const(Value::Int(3), 2)];
        let (lc, rc) = join_codecs(&l, &r).unwrap().unwrap();
        assert!(lc.u64_mode() && rc.u64_mode());
        assert_eq!(lc.encode_u64(0), rc.encode_u64(0));
        assert_ne!(lc.encode_u64(1), rc.encode_u64(1));
    }

    #[test]
    fn join_codecs_reject_null_const_and_floats() {
        let l = [ColVec::Int(vec![1])];
        assert!(join_codecs(&l, &[ColVec::Const(Value::Null, 1)])
            .unwrap()
            .is_none());
        assert!(join_codecs(&l, &[ColVec::Float(vec![1.0])])
            .unwrap()
            .is_none());
        // Incomparable classes fall back too.
        assert!(join_codecs(&l, &[ColVec::Str(vec!["x".into()])])
            .unwrap()
            .is_none());
    }

    #[test]
    fn match_map_and_bucket_preserve_insertion_order() {
        for u64_mode in [true, false] {
            let keys = [17u64, 4, 17, 17, 4];
            let mut bucket = Bucket::new(u64_mode);
            let mut scratch = Vec::new();
            for (row, k) in keys.iter().enumerate() {
                let enc = if u64_mode {
                    EncRow::U64(*k)
                } else {
                    scratch.clear();
                    scratch.extend_from_slice(&k.to_le_bytes());
                    scratch.extend_from_slice(b"pad-to-var-width");
                    EncRow::Bytes(&scratch)
                };
                bucket.push(&enc, row as u32);
            }
            let mut m = MatchMap::new(u64_mode);
            bucket.append_to(&mut m);
            let probe = |k: u64, scratch: &mut Vec<u8>| -> Vec<u32> {
                let enc = if u64_mode {
                    EncRow::U64(k)
                } else {
                    scratch.clear();
                    scratch.extend_from_slice(&k.to_le_bytes());
                    scratch.extend_from_slice(b"pad-to-var-width");
                    EncRow::Bytes(scratch)
                };
                m.get(&enc).unwrap_or_default().to_vec()
            };
            let mut s = Vec::new();
            assert_eq!(probe(17, &mut s), vec![0, 2, 3]);
            assert_eq!(probe(4, &mut s), vec![1, 4]);
        }
    }
}
