//! Morsel-driven parallelism primitives (Leis et al., adapted).
//!
//! Base-table work is partitioned into fixed-size row ranges — *morsels* —
//! that a small pool of scoped threads drains from a shared cursor. Every
//! parallel operator in the engines follows the same discipline:
//!
//! 1. workers produce one partial result per morsel, never touching
//!    shared mutable state except the [`BudgetCounter`];
//! 2. partial results are merged **in morsel order**, so row order,
//!    group first-seen order and join match order are identical to the
//!    sequential plan;
//! 3. the first error in morsel order wins. Because a morsel is scanned
//!    sequentially and earlier morsels contain no failing row, that is
//!    exactly the error the sequential executor would have reported
//!    (budget messages excepted — those quote the shared counter).
//!
//! `threads = 1` never spawns workers: the executors run dedicated
//! single-threaded code paths. Those paths share the radix key codec
//! ([`crate::codec`]) with the parallel kernels — the determinism
//! contract constrains *results*, not code, and the codec's first-seen
//! group order and build-side match order are the sequential orders by
//! construction.

use crate::error::{EngineError, EngineResult};
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Rows per morsel. Small enough that a skewed predicate still load-balances
/// across workers, large enough that per-morsel overhead (a batch header,
/// a hash-table allocation) stays invisible. Equal to the storage chunk
/// size by construction: a morsel is exactly one zone-mapped chunk, so
/// parallel scans can skip morsels with the same zone test the
/// sequential scan uses.
pub const MORSEL_ROWS: usize = crate::storage::CHUNK_ROWS;

/// Inputs below this row count stay on the sequential path: spawning
/// threads costs more than the scan.
pub const MIN_PARALLEL_ROWS: usize = 2 * MORSEL_ROWS;

/// The default for the `threads` knob: whatever the machine offers.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `0..len` into fixed-size morsels (the last one may be short).
pub fn morsels(len: usize) -> Vec<Range<usize>> {
    let mut out = Vec::with_capacity(len.div_ceil(MORSEL_ROWS.max(1)));
    let mut lo = 0;
    while lo < len {
        let hi = (lo + MORSEL_ROWS).min(len);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Split `0..len` into a few large contiguous chunks — enough for `threads`
/// workers to load-balance (4 per worker) but far fewer than [`morsels`]
/// would produce. Used where per-chunk state must be *merged* afterwards
/// (grouped aggregation): with 4096-row morsels and many groups the merge
/// work rivals the accumulation itself. Chunks never go below
/// [`MORSEL_ROWS`]; boundaries don't affect results (merging is associative
/// over contiguous splits), only overhead.
pub fn coarse_morsels(len: usize, threads: usize) -> Vec<Range<usize>> {
    let target = threads.max(1) * 4;
    let chunk = len.div_ceil(target).max(MORSEL_ROWS);
    let mut out = Vec::with_capacity(len.div_ceil(chunk.max(1)));
    let mut lo = 0;
    while lo < len {
        let hi = (lo + chunk).min(len);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// The execution budget's row counter. Single-threaded executions keep the
/// original `Cell` (no synchronization, bit-identical behaviour); parallel
/// executions share one atomic across all workers so the budget bounds the
/// *query*, not each thread.
#[derive(Debug)]
pub enum BudgetCounter {
    Local(Cell<u64>),
    Shared(Arc<AtomicU64>),
}

impl BudgetCounter {
    pub fn local() -> Self {
        BudgetCounter::Local(Cell::new(0))
    }

    pub fn shared() -> Self {
        BudgetCounter::Shared(Arc::new(AtomicU64::new(0)))
    }

    /// Add `n` rows and return the new total.
    pub fn add(&self, n: u64) -> u64 {
        match self {
            BudgetCounter::Local(c) => {
                let used = c.get() + n;
                c.set(used);
                used
            }
            BudgetCounter::Shared(a) => a.fetch_add(n, Ordering::Relaxed) + n,
        }
    }

    /// The shared atomic, when this execution is parallel.
    pub fn handle(&self) -> Option<Arc<AtomicU64>> {
        match self {
            BudgetCounter::Local(_) => None,
            BudgetCounter::Shared(a) => Some(Arc::clone(a)),
        }
    }
}

/// Run `f` over every morsel of `0..len` on up to `threads` scoped workers
/// and return the per-morsel results **in morsel order**. Workers pull
/// morsels from a shared cursor (dynamic scheduling) and stop early on
/// error; the error of the earliest failing morsel is reported.
pub fn run_on_morsels<T, F>(len: usize, threads: usize, f: F) -> EngineResult<Vec<T>>
where
    T: Send,
    F: Fn(Range<usize>) -> EngineResult<T> + Sync,
{
    run_on_ranges(morsels(len), threads, f)
}

/// [`run_on_morsels`] over caller-chosen ranges (e.g. [`coarse_morsels`]).
pub fn run_on_ranges<T, F>(ranges: Vec<Range<usize>>, threads: usize, f: F) -> EngineResult<Vec<T>>
where
    T: Send,
    F: Fn(Range<usize>) -> EngineResult<T> + Sync,
{
    run_indexed(ranges.len(), threads, |i| f(ranges[i].clone()))
}

/// Number of OS workers worth spawning: the requested thread count
/// bounded by what the host can actually run concurrently. The *semantic*
/// thread count (chunk layout, shared-budget accounting) stays as
/// requested — results are identical for any worker count by the morsel
/// discipline — but oversubscribing a small host buys only
/// context-switch overhead, so the pool never exceeds the core count.
/// `SQALPEL_FORCE_WORKERS` overrides the host bound; the differential
/// suites use it to exercise the parallel kernels on single-core hosts.
fn host_workers() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::env::var("SQALPEL_FORCE_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(default_threads)
    })
}

/// Workers a `threads = N` request actually yields on this host. The
/// executors consult this before choosing a parallel plan: when it says
/// one worker, partitioned execution would pay its chunk-merge overhead
/// with zero concurrency in return, so they stay on the (codec-backed)
/// sequential path — which produces byte-identical results anyway.
pub fn effective_workers(threads: usize) -> usize {
    threads.min(host_workers())
}

/// Run `f(0) .. f(count - 1)` on up to `threads` scoped workers and return
/// the results in index order; the error of the earliest failing index
/// wins. The morsel runner and the partitioned join build both sit on this.
pub fn run_indexed<T, F>(count: usize, threads: usize, f: F) -> EngineResult<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> EngineResult<T> + Sync,
{
    let workers = threads.clamp(1, count.max(1)).min(host_workers());
    if workers == 1 {
        // Degenerate pool: run inline. Same results, same earliest-error
        // rule, none of the spawn or scheduling cost.
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            out.push(f(i)?);
        }
        return Ok(out);
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<EngineResult<T>>> = Vec::new();
    slots.resize_with(count, || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let result = f(i);
                        let stop = result.is_err();
                        produced.push((i, result));
                        if stop {
                            break;
                        }
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(produced) => {
                    for (i, r) in produced {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Claimed morsels form a contiguous prefix; a missing slot can only
    // follow an error, so scanning in order surfaces the earliest failure.
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            None => {
                return Err(EngineError::Unsupported(
                    "morsel skipped without a preceding error".into(),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_the_range_exactly() {
        for len in [0, 1, MORSEL_ROWS - 1, MORSEL_ROWS, MORSEL_ROWS + 1, 3 * MORSEL_ROWS + 17] {
            let parts = morsels(len);
            let mut next = 0;
            for p in &parts {
                assert_eq!(p.start, next);
                assert!(p.end > p.start);
                assert!(p.end - p.start <= MORSEL_ROWS);
                next = p.end;
            }
            assert_eq!(next, len);
        }
    }

    #[test]
    fn coarse_morsels_cover_the_range_with_few_chunks() {
        for len in [0, 1, MORSEL_ROWS, 10 * MORSEL_ROWS + 17, 150 * MORSEL_ROWS] {
            for threads in [1, 2, 4, 8] {
                let parts = coarse_morsels(len, threads);
                let mut next = 0;
                for (k, p) in parts.iter().enumerate() {
                    assert_eq!(p.start, next);
                    assert!(p.end > p.start);
                    if k + 1 < parts.len() {
                        assert!(p.end - p.start >= MORSEL_ROWS);
                    }
                    next = p.end;
                }
                assert_eq!(next, len);
                // Never more chunks than the load-balancing target needs.
                assert!(parts.len() <= threads * 4 + 1);
            }
        }
    }

    #[test]
    fn results_come_back_in_morsel_order() {
        let n = 5 * MORSEL_ROWS + 123;
        let sums = run_on_morsels(n, 4, |r| Ok::<_, EngineError>(r.start)).unwrap();
        let expected: Vec<usize> = morsels(n).iter().map(|r| r.start).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn earliest_error_wins() {
        let n = 8 * MORSEL_ROWS;
        let err = run_on_morsels(n, 4, |r| {
            if r.start >= 2 * MORSEL_ROWS {
                Err(EngineError::Type(format!("fail at {}", r.start)))
            } else {
                Ok(r.start)
            }
        })
        .unwrap_err();
        assert_eq!(err.to_string(), EngineError::Type(format!("fail at {}", 2 * MORSEL_ROWS)).to_string());
    }

    #[test]
    fn budget_counter_shared_accumulates_across_clones() {
        let b = BudgetCounter::shared();
        let h = b.handle().unwrap();
        assert_eq!(b.add(10), 10);
        h.fetch_add(5, Ordering::Relaxed);
        assert_eq!(b.add(1), 16);
        let local = BudgetCounter::local();
        assert!(local.handle().is_none());
        assert_eq!(local.add(3), 3);
        assert_eq!(local.add(4), 7);
    }

}
