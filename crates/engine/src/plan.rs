//! Logical planning shared by both engines.
//!
//! The planner binds a parsed [`Query`] against a [`Database`] and produces
//! a [`BoundQuery`]: a relational *core* (scans, joins, filters) plus the
//! declarative tail (projection, grouping, having, ordering, limit) that
//! each engine executes in its own style. Binding lowers every expression
//! into the typed IR ([`crate::ir::Expr`]): column names become slots into
//! the schema of the plan node the expression is evaluated against, with
//! inferred [`Ty`]s; unresolved names become explicit outer references.
//!
//! After binding, the rule-based rewriter (`crate::ir::rewrite`) runs to a
//! fixed point — constant folding, predicate pushdown through joins and
//! into derived tables/CTEs, duplicate conjunct elimination, trivial-filter
//! elimination — followed by projection pruning, so scans materialize only
//! live columns. Join planning itself stays deliberately simple and
//! deterministic: relations join in `FROM` order with hash joins on the
//! equality conjuncts that connect them. Predicates containing subqueries
//! are never moved (their correlation needs the full row in scope).

use crate::error::{EngineError, EngineResult};
use crate::ir::bind::{bind_expr, bind_order_key};
use crate::ir::{self, Ty};
use crate::storage::{ColumnType, Database, Table};
use sqalpel_sql::ast::{Expr, JoinKind, Query, Select, SelectItem, TableRef};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One column of a plan node's output: the relation binding it came from,
/// its name, and its inferred type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColMeta {
    pub binding: String,
    pub name: String,
    pub ty: Ty,
}

/// An ordered list of output columns.
pub type Schema = Vec<ColMeta>;

fn ty_of(ct: ColumnType) -> Ty {
    match ct {
        ColumnType::Int => Ty::Int,
        ColumnType::Decimal(_) => Ty::Decimal,
        ColumnType::Str => Ty::Str,
        ColumnType::Date => Ty::Date,
        ColumnType::Float => Ty::Float,
    }
}

/// The relational core: scans, joins and filters. All predicates are typed
/// IR bound against the schema of the node they are evaluated on: `Filter`
/// predicates against the input schema, `Join` equi keys against their own
/// side, the join residual against the concatenated schema.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Scan of a stored table under a binding (alias or table name).
    /// `live` lists the materialized column indices (projection pruning
    /// shrinks it; slot `i` of the scan schema is column `live[i]`).
    Scan {
        table: Arc<Table>,
        binding: String,
        live: Vec<usize>,
    },
    /// Scan of a derived table (`(select ...) alias`).
    Derived {
        query: Box<BoundQuery>,
        binding: String,
    },
    /// Scan of a CTE, materialized once per execution.
    Cte {
        name: String,
        binding: String,
        schema: Schema,
    },
    /// Row filter.
    Filter { input: Box<Plan>, predicate: ir::Expr },
    /// Join with hash keys (`equi`) and an optional residual predicate
    /// evaluated on candidate matches. Empty `equi` means a cross join.
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        kind: JoinKind,
        equi: Vec<(ir::Expr, ir::Expr)>,
        residual: Option<ir::Expr>,
    },
}

impl Plan {
    /// Output schema of this node.
    pub fn schema(&self) -> Schema {
        match self {
            Plan::Scan { table, binding, live } => live
                .iter()
                .map(|&i| {
                    let c = &table.columns[i];
                    ColMeta {
                        binding: binding.clone(),
                        name: c.name.clone(),
                        ty: ty_of(c.data.column_type()),
                    }
                })
                .collect(),
            Plan::Derived { query, binding } => query
                .items
                .iter()
                .map(|it| ColMeta {
                    binding: binding.clone(),
                    name: it.name.clone(),
                    ty: it.ty,
                })
                .collect(),
            Plan::Cte { schema, .. } => schema.clone(),
            Plan::Filter { input, .. } => input.schema(),
            Plan::Join { left, right, .. } => {
                let mut s = left.schema();
                s.extend(right.schema());
                s
            }
        }
    }

    /// The set of relation bindings visible in this node's output.
    pub fn bindings(&self) -> BTreeSet<String> {
        self.schema().into_iter().map(|c| c.binding).collect()
    }
}

/// One projected output column.
#[derive(Debug, Clone)]
pub struct OutputItem {
    pub expr: ir::Expr,
    pub name: String,
    pub ty: Ty,
}

/// A fully bound query, ready for either executor. All expressions are
/// typed IR bound against the core schema (`ORDER BY` keys may instead be
/// [`ir::Expr::OutputCol`] references into `items`).
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// CTEs in definition order (each may reference earlier ones).
    pub ctes: Vec<(String, BoundQuery)>,
    pub core: Plan,
    pub items: Vec<OutputItem>,
    pub distinct: bool,
    pub group_by: Vec<ir::Expr>,
    pub having: Option<ir::Expr>,
    /// `(key, descending)` pairs.
    pub order_by: Vec<(ir::Expr, bool)>,
    pub limit: Option<u64>,
    /// True when the query computes aggregates (with or without GROUP BY).
    pub aggregated: bool,
}

impl BoundQuery {
    /// Names of the output columns, in order.
    pub fn output_names(&self) -> Vec<String> {
        self.items.iter().map(|i| i.name.clone()).collect()
    }

    /// `(name, type)` of the output columns, in order.
    pub fn output_schema(&self) -> Vec<(String, Ty)> {
        self.items.iter().map(|i| (i.name.clone(), i.ty)).collect()
    }
}

/// Planner state: the database plus CTE names visible during binding.
pub struct Planner<'a> {
    db: &'a Database,
    /// CTE name → output schema, for scans that target a CTE.
    ctes: Vec<(String, Vec<(String, Ty)>)>,
    /// Whether to run the rewrite rules + projection pruning after binding.
    rewrite: bool,
    /// Whether to run the cost-based join-order search after rewriting.
    optimize: bool,
    /// Observed cardinalities fed back from a prior profiled run.
    hints: ir::cost::CardHints,
}

impl<'a> Planner<'a> {
    pub fn new(db: &'a Database) -> Self {
        Planner {
            db,
            ctes: Vec::new(),
            rewrite: true,
            optimize: true,
            hints: ir::cost::CardHints::default(),
        }
    }

    /// A planner with CTE names already in scope — used when binding
    /// subqueries at runtime, where the enclosing query's CTEs must stay
    /// visible (e.g. TPC-H Q15's `(select max(total_revenue) from
    /// revenue)`).
    pub fn with_ctes(db: &'a Database, ctes: Vec<(String, Vec<(String, Ty)>)>) -> Self {
        Planner {
            db,
            ctes,
            rewrite: true,
            optimize: true,
            hints: ir::cost::CardHints::default(),
        }
    }

    /// Toggle the rewriter (on by default). With it off the binder output
    /// runs unrewritten and unpruned — the configuration the
    /// rewriter-equivalence suite compares against.
    pub fn with_rewrite(mut self, on: bool) -> Self {
        self.rewrite = on;
        self
    }

    /// Toggle the cost-based join-order optimizer (on by default). It is
    /// independent of the rewriter: equivalence suites can hold one fixed
    /// while toggling the other.
    pub fn with_optimize(mut self, on: bool) -> Self {
        self.optimize = on;
        self
    }

    /// Supply observed cardinalities (from EXPLAIN ANALYZE feedback) to
    /// the join-order search.
    pub fn with_hints(mut self, hints: ir::cost::CardHints) -> Self {
        self.hints = hints;
        self
    }

    /// Bind a parsed query, then (unless disabled) rewrite, prune and
    /// cost-optimize it.
    pub fn bind(&mut self, q: &Query) -> EngineResult<BoundQuery> {
        let mut bq = self.bind_query(q)?;
        if self.rewrite {
            ir::rewrite::rewrite(&mut bq);
            ir::rewrite::prune(&mut bq);
        }
        if self.optimize {
            ir::memo::optimize(&mut bq, &self.hints);
        }
        Ok(bq)
    }

    fn bind_query(&mut self, q: &Query) -> EngineResult<BoundQuery> {
        let cte_depth = self.ctes.len();
        let mut bound_ctes = Vec::with_capacity(q.ctes.len());
        for cte in &q.ctes {
            let bound = self.bind_query(&cte.query)?;
            self.ctes.push((cte.name.clone(), bound.output_schema()));
            bound_ctes.push((cte.name.clone(), bound));
        }
        let result = self.bind_select(&q.body, q, bound_ctes);
        self.ctes.truncate(cte_depth);
        result
    }

    fn bind_select(
        &mut self,
        s: &Select,
        q: &Query,
        ctes: Vec<(String, BoundQuery)>,
    ) -> EngineResult<BoundQuery> {
        if s.from.is_empty() {
            return Err(EngineError::Unsupported(
                "queries without a FROM clause".into(),
            ));
        }
        // 1. Bind each FROM item to a plan fragment.
        let mut fragments: Vec<Plan> = Vec::with_capacity(s.from.len());
        for item in &s.from {
            fragments.push(self.bind_table_ref(item)?);
        }

        // 2. Classify WHERE conjuncts.
        let conjuncts: Vec<Expr> = s
            .selection
            .as_ref()
            .map(|e| e.conjuncts().into_iter().cloned().collect())
            .unwrap_or_default();
        let frag_bindings: Vec<BTreeSet<String>> =
            fragments.iter().map(|f| f.bindings()).collect();
        let frag_schemas: Vec<Schema> = fragments.iter().map(|f| f.schema()).collect();

        let mut pushed: Vec<Vec<Expr>> = vec![Vec::new(); fragments.len()];
        let mut join_candidates: Vec<Expr> = Vec::new();
        let mut residual: Vec<Expr> = Vec::new();

        for c in conjuncts {
            if contains_subquery(&c) {
                residual.push(c);
                continue;
            }
            let refs = self.conjunct_fragments(&c, &frag_bindings, &frag_schemas)?;
            match refs.len() {
                0 => residual.push(c), // constant or correlated-outer predicate
                1 => pushed[*refs.iter().next().unwrap()].push(c),
                2 if is_equality(&c) => join_candidates.push(c),
                _ => residual.push(c),
            }
        }

        // 3. Apply pushed-down filters, lowering each conjunction against
        // its fragment's schema.
        let mut filtered: Vec<Plan> = Vec::with_capacity(fragments.len());
        for (frag, preds) in fragments.into_iter().zip(pushed) {
            match Expr::conjoin(preds) {
                Some(p) => {
                    let predicate = bind_expr(&p, &frag.schema())?;
                    filtered.push(Plan::Filter {
                        input: Box::new(frag),
                        predicate,
                    });
                }
                None => filtered.push(frag),
            }
        }

        // 4. Join fragments in FROM order, picking up connecting equi keys.
        let mut iter = filtered.into_iter();
        let mut current = iter.next().expect("non-empty FROM");
        let mut current_bindings = current.bindings();
        for frag in iter {
            let right_bindings = frag.bindings();
            let mut pairs: Vec<(Expr, Expr)> = Vec::new();
            join_candidates.retain(|c| {
                match split_equi(c, &current_bindings, &right_bindings, &frag_schemas) {
                    Some(pair) => {
                        pairs.push(pair);
                        false
                    }
                    None => true,
                }
            });
            let left_schema = current.schema();
            let right_schema = frag.schema();
            let mut equi = Vec::with_capacity(pairs.len());
            for (a, b) in pairs {
                equi.push((bind_expr(&a, &left_schema)?, bind_expr(&b, &right_schema)?));
            }
            current_bindings.extend(right_bindings);
            current = Plan::Join {
                left: Box::new(current),
                right: Box::new(frag),
                kind: JoinKind::Inner,
                equi,
                residual: None,
            };
        }

        // 5. Any unconsumed join candidates become residual filters.
        residual.extend(join_candidates);
        if let Some(p) = Expr::conjoin(residual) {
            let predicate = bind_expr(&p, &current.schema())?;
            current = Plan::Filter {
                input: Box::new(current),
                predicate,
            };
        }

        // 6. Projection items, lowered against the core schema.
        let core_schema = current.schema();
        let mut items: Vec<OutputItem> = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    for (slot, col) in core_schema.iter().enumerate() {
                        items.push(OutputItem {
                            expr: ir::Expr::Col { slot, ty: col.ty },
                            name: col.name.clone(),
                            ty: col.ty,
                        });
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = bind_expr(expr, &core_schema)?;
                    let name = alias.clone().unwrap_or_else(|| default_name(expr));
                    let ty = bound.ty();
                    // Disambiguate colliding *derived* names with a
                    // positional suffix: two unaliased expressions with the
                    // same printed form must not produce duplicate output
                    // names (they make derived-table schemas ambiguous).
                    let name = if alias.is_none() && items.iter().any(|it| it.name == name) {
                        let mut candidate = format!("{}_{}", name, items.len() + 1);
                        while items.iter().any(|it| it.name == candidate) {
                            candidate.push('_');
                        }
                        candidate
                    } else {
                        name
                    };
                    items.push(OutputItem { expr: bound, name, ty });
                }
            }
        }

        let group_by = s
            .group_by
            .iter()
            .map(|e| bind_expr(e, &core_schema))
            .collect::<EngineResult<Vec<_>>>()?;
        let having = s
            .having
            .as_ref()
            .map(|h| bind_expr(h, &core_schema))
            .transpose()?;
        let item_names: Vec<String> = items.iter().map(|i| i.name.clone()).collect();
        let order_by = q
            .order_by
            .iter()
            .map(|o| Ok((bind_order_key(&o.expr, &core_schema, &item_names)?, o.desc)))
            .collect::<EngineResult<Vec<_>>>()?;

        let aggregated = !group_by.is_empty()
            || items.iter().any(|i| i.expr.contains_aggregate())
            || having.as_ref().is_some_and(|h| h.contains_aggregate());

        Ok(BoundQuery {
            ctes,
            core: current,
            items,
            distinct: s.distinct,
            group_by,
            having,
            order_by,
            limit: q.limit,
            aggregated,
        })
    }

    fn bind_table_ref(&mut self, t: &TableRef) -> EngineResult<Plan> {
        match t {
            TableRef::Table { name, alias } => {
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                // CTEs shadow stored tables.
                if let Some((_, cols)) = self.ctes.iter().rev().find(|(n, _)| n == name) {
                    let schema = cols
                        .iter()
                        .map(|(c, ty)| ColMeta {
                            binding: binding.clone(),
                            name: c.clone(),
                            ty: *ty,
                        })
                        .collect();
                    return Ok(Plan::Cte {
                        name: name.clone(),
                        binding,
                        schema,
                    });
                }
                let table = self.db.table(name)?.clone();
                let live = (0..table.columns.len()).collect();
                Ok(Plan::Scan { table, binding, live })
            }
            TableRef::Subquery { query, alias } => {
                let bound = self.bind_query(query)?;
                Ok(Plan::Derived {
                    query: Box::new(bound),
                    binding: alias.clone(),
                })
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let l = self.bind_table_ref(left)?;
                let r = self.bind_table_ref(right)?;
                let l_bind = l.bindings();
                let r_bind = r.bindings();
                let l_schema = l.schema();
                let r_schema = r.schema();
                let mut equi = Vec::new();
                let mut residual = Vec::new();
                for c in on.conjuncts() {
                    if !contains_subquery(c) {
                        if let Some((a, b)) = split_equi(
                            c,
                            &l_bind,
                            &r_bind,
                            &[l_schema.clone(), r_schema.clone()],
                        ) {
                            equi.push((bind_expr(&a, &l_schema)?, bind_expr(&b, &r_schema)?));
                            continue;
                        }
                    }
                    residual.push(c.clone());
                }
                let residual = match Expr::conjoin(residual) {
                    Some(p) => {
                        let mut combined = l_schema;
                        combined.extend(r_schema);
                        Some(bind_expr(&p, &combined)?)
                    }
                    None => None,
                };
                Ok(Plan::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    kind: *kind,
                    equi,
                    residual,
                })
            }
        }
    }

    /// Which FROM fragments a conjunct references. Columns that resolve in
    /// no fragment are treated as outer (correlated) references and ignored
    /// here; ambiguous unqualified names are an error.
    fn conjunct_fragments(
        &self,
        e: &Expr,
        frag_bindings: &[BTreeSet<String>],
        frag_schemas: &[Schema],
    ) -> EngineResult<BTreeSet<usize>> {
        let mut out = BTreeSet::new();
        for col in e.columns() {
            match &col.table {
                Some(t) => {
                    if let Some(i) = frag_bindings.iter().position(|b| b.contains(t)) {
                        out.insert(i);
                    }
                }
                None => {
                    let hits: Vec<usize> = frag_schemas
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.iter().any(|c| c.name == col.column))
                        .map(|(i, _)| i)
                        .collect();
                    match hits.len() {
                        0 => {} // outer reference
                        1 => {
                            out.insert(hits[0]);
                        }
                        _ => {
                            return Err(EngineError::AmbiguousColumn(col.column.clone()));
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Derive an output name for an unaliased select item: the bare column
/// name for column refs, the canonical SQL text otherwise.
pub fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.column.clone(),
        other => other.to_string(),
    }
}

/// True when the expression contains any form of subquery.
pub fn contains_subquery(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |x| {
        if matches!(
            x,
            Expr::Subquery(_) | Expr::Exists { .. } | Expr::InSubquery { .. }
        ) {
            found = true;
        }
    });
    found
}

fn is_equality(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Binary {
            op: sqalpel_sql::BinOp::Eq,
            ..
        }
    )
}

/// If `e` is `lhs = rhs` with `lhs` bound entirely to one side and `rhs`
/// to the other, return the pair ordered `(left_expr, right_expr)`.
fn split_equi(
    e: &Expr,
    left: &BTreeSet<String>,
    right: &BTreeSet<String>,
    schemas: &[Schema],
) -> Option<(Expr, Expr)> {
    let Expr::Binary {
        left: a,
        op: sqalpel_sql::BinOp::Eq,
        right: b,
    } = e
    else {
        return None;
    };
    let side = |x: &Expr| -> Option<u8> {
        // 0 = left, 1 = right; None = unresolvable/mixed.
        let mut sides = BTreeSet::new();
        for col in x.columns() {
            let binding = match &col.table {
                Some(t) => Some(t.clone()),
                None => {
                    // Resolve the unqualified name through any schema.
                    let mut found = None;
                    for s in schemas {
                        for c in s {
                            if c.name == col.column {
                                found = Some(c.binding.clone());
                            }
                        }
                    }
                    found
                }
            };
            match binding {
                Some(b) if left.contains(&b) => {
                    sides.insert(0u8);
                }
                Some(b) if right.contains(&b) => {
                    sides.insert(1u8);
                }
                _ => return None,
            }
        }
        if sides.len() == 1 {
            sides.into_iter().next()
        } else {
            None
        }
    };
    match (side(a), side(b)) {
        (Some(0), Some(1)) => Some((a.as_ref().clone(), b.as_ref().clone())),
        (Some(1), Some(0)) => Some((b.as_ref().clone(), a.as_ref().clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqalpel_sql::parse_query;

    /// Full pipeline: bind + rewrite + prune (what the engines execute).
    fn plan(sql: &str) -> BoundQuery {
        let db = Database::tpch(0.001, 42);
        let q = parse_query(sql).unwrap();
        Planner::new(&db).bind(&q).unwrap()
    }

    /// Binder output only — for tests asserting binder-level shapes.
    fn plan_raw(sql: &str) -> BoundQuery {
        let db = Database::tpch(0.001, 42);
        let q = parse_query(sql).unwrap();
        Planner::new(&db)
            .with_rewrite(false)
            .with_optimize(false)
            .bind(&q)
            .unwrap()
    }

    #[test]
    fn scan_schema_carries_binding() {
        let b = plan_raw("select n_name from nation");
        let schema = b.core.schema();
        assert_eq!(schema[1].binding, "nation");
        assert_eq!(schema[1].name, "n_name");
        assert_eq!(schema[1].ty, Ty::Str);
        assert_eq!(schema[0].ty, Ty::Int);
    }

    #[test]
    fn pruned_scan_keeps_only_live_columns() {
        let b = plan("select n_name from nation");
        let schema = b.core.schema();
        assert_eq!(schema.len(), 1, "{schema:?}");
        assert_eq!(schema[0].name, "n_name");
        assert!(matches!(&b.items[0].expr, ir::Expr::Col { slot: 0, .. }));
    }

    #[test]
    fn alias_becomes_binding() {
        let b = plan_raw("select l.l_tax from lineitem l");
        assert!(b.core.bindings().contains("l"));
    }

    #[test]
    fn single_table_predicates_are_pushed_down() {
        let b = plan_raw(
            "select n_name from nation, region \
             where n_regionkey = r_regionkey and r_name = 'EUROPE'",
        );
        // The join must have a filtered scan on its right side.
        match &b.core {
            Plan::Join { right, equi, .. } => {
                assert_eq!(equi.len(), 1);
                assert!(matches!(**right, Plan::Filter { .. }));
            }
            other => panic!("expected join at top, got {other:?}"),
        }
    }

    #[test]
    fn equi_join_keys_extracted() {
        let b = plan_raw(
            "select c_name from customer, orders, lineitem \
             where c_custkey = o_custkey and l_orderkey = o_orderkey",
        );
        // Two joins, each with one equi key pair, no residual filter left.
        match &b.core {
            Plan::Join { left, equi, .. } => {
                assert_eq!(equi.len(), 1);
                assert!(matches!(**left, Plan::Join { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subquery_predicates_stay_residual() {
        for b in [
            plan_raw(
                "select s_name from supplier \
                 where s_suppkey in (select ps_suppkey from partsupp) and s_nationkey = 3",
            ),
            // The rewriter must not move subquery predicates either.
            plan(
                "select s_name from supplier \
                 where s_suppkey in (select ps_suppkey from partsupp) and s_nationkey = 3",
            ),
        ] {
            match &b.core {
                Plan::Filter { predicate, .. } => assert!(predicate.contains_subquery()),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn wildcard_expands_to_all_columns() {
        let b = plan("select * from nation");
        assert_eq!(b.items.len(), 4);
        assert_eq!(b.items[0].name, "n_nationkey");
    }

    #[test]
    fn aliases_and_default_names() {
        let b = plan("select n_name as nation_name, count(*) from nation group by n_name");
        assert_eq!(b.items[0].name, "nation_name");
        assert_eq!(b.items[1].name, "count(*)");
        assert!(b.aggregated);
    }

    #[test]
    fn duplicate_default_names_get_positional_suffixes() {
        let b = plan_raw("select count(*), count(*), n_name, n_name from nation group by n_name");
        assert_eq!(b.items[0].name, "count(*)");
        assert_eq!(b.items[1].name, "count(*)_2");
        assert_eq!(b.items[2].name, "n_name");
        assert_eq!(b.items[3].name, "n_name_4");
        // Aliased duplicates are the user's choice and stay untouched.
        let b = plan_raw("select n_name as x, n_regionkey as x from nation");
        assert_eq!(b.items[0].name, "x");
        assert_eq!(b.items[1].name, "x");
    }

    #[test]
    fn order_by_alias_binds_to_output_column() {
        let b = plan_raw(
            "select n_regionkey as k, count(*) as n from nation group by n_regionkey order by n desc, n_regionkey",
        );
        assert!(matches!(b.order_by[0], (ir::Expr::OutputCol(1), true)));
        assert!(matches!(b.order_by[1], (ir::Expr::Col { .. }, false)));
    }

    #[test]
    fn aggregation_detected_without_group_by() {
        let b = plan("select sum(l_quantity) from lineitem");
        assert!(b.aggregated);
        let b2 = plan("select l_quantity from lineitem");
        assert!(!b2.aggregated);
    }

    #[test]
    fn left_outer_join_on_split() {
        for b in [
            plan_raw(
                "select c_custkey from customer left outer join orders \
                 on c_custkey = o_custkey and o_comment not like '%x%'",
            ),
            // The ON-residual of an outer join affects *matching*, not
            // filtering — the rewriter must leave it on the join.
            plan(
                "select c_custkey from customer left outer join orders \
                 on c_custkey = o_custkey and o_comment not like '%x%'",
            ),
        ] {
            match &b.core {
                Plan::Join {
                    kind,
                    equi,
                    residual,
                    ..
                } => {
                    assert_eq!(*kind, JoinKind::LeftOuter);
                    assert_eq!(equi.len(), 1);
                    assert!(residual.is_some());
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn cte_scan_resolves() {
        let b = plan(
            "with r as (select n_regionkey as k, count(*) as n from nation group by n_regionkey) \
             select k from r where n > 3",
        );
        assert_eq!(b.ctes.len(), 1);
        let mut found = false;
        fn walk(p: &Plan, found: &mut bool) {
            match p {
                Plan::Cte { name, .. } if name == "r" => *found = true,
                Plan::Filter { input, .. } => walk(input, found),
                Plan::Join { left, right, .. } => {
                    walk(left, found);
                    walk(right, found);
                }
                _ => {}
            }
        }
        walk(&b.core, &mut found);
        assert!(found, "expected a CTE scan in {:?}", b.core);
    }

    #[test]
    fn unknown_table_is_an_error() {
        let db = Database::tpch(0.001, 42);
        let q = parse_query("select x from missing_table").unwrap();
        assert!(matches!(
            Planner::new(&db).bind(&q),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn no_from_clause_unsupported() {
        let db = Database::tpch(0.001, 42);
        let q = parse_query("select 1").unwrap();
        assert!(matches!(
            Planner::new(&db).bind(&q),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn all_tpch_queries_bind() {
        let db = Database::tpch(0.001, 42);
        for (name, sql) in sqalpel_sql::tpch::all_queries() {
            let q = parse_query(sql).unwrap();
            Planner::new(&db)
                .bind(&q)
                .unwrap_or_else(|e| panic!("{name} failed to bind: {e}"));
        }
    }

    #[test]
    fn derived_table_schema_uses_alias() {
        let b = plan(
            "select c_count from (select c_custkey, count(*) as c_count \
             from customer group by c_custkey) t",
        );
        let schema = b.core.schema();
        assert!(schema.iter().all(|c| c.binding == "t"));
        assert_eq!(schema[1].name, "c_count");
        assert_eq!(schema[1].ty, Ty::Int);
    }
}
