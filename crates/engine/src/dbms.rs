//! The target-system abstraction: what the sqalpel platform benchmarks.
//!
//! [`Dbms`] plays the role of the paper's "DBMS + host combination": a
//! named, versioned system that executes SQL. Three implementations ship:
//!
//! - [`RowStore`] 2.0 — the pipelined tuple-at-a-time engine with hash
//!   joins ([`crate::exec_row`]);
//! - [`RowStore`] 1.x (`RowStore::legacy`) — the same engine before the
//!   hash-join upgrade: every join is a nested loop. The pair is the
//!   "two versions of the same system" scenario from the paper's intro;
//! - [`ColStore`] — the materializing column-at-a-time engine
//!   ([`crate::exec_col`]).

use crate::error::{EngineError, EngineResult};
use crate::exec_col::ColExec;
use crate::exec_row::RowExec;
use crate::ir::{self, Explain};
use crate::morsel;
use crate::plan::{BoundQuery, Planner};
use crate::plan_cache::{CacheOutcome, FpExecution, PlanCache};
use crate::profile::NodeMetrics;
use crate::result::ResultSet;
use crate::storage::Database;
use std::sync::Arc;

/// Default execution budget: rows an execution may touch before aborting.
pub const DEFAULT_BUDGET: u64 = 200_000_000;

/// One operator's metrics row in an executed profile, in EXPLAIN render
/// order — the shape the platform ships over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Operator label, e.g. `"scan lineitem"`, `"join inner"`.
    pub op: String,
    pub metrics: NodeMetrics,
}

/// The product of EXPLAIN ANALYZE: the annotated EXPLAIN tree plus the
/// flat per-operator rows. The fingerprint is the plain EXPLAIN
/// fingerprint — profiling never changes plan identity.
#[derive(Debug, Clone)]
pub struct AnalyzedPlan {
    pub explain: Explain,
    pub ops: Vec<OpProfile>,
}

/// A benchmarkable target system.
pub trait Dbms: Send + Sync {
    /// Product name, e.g. `"rowstore"`.
    fn name(&self) -> &str;
    /// Version string, e.g. `"2.0"`.
    fn version(&self) -> &str;
    /// Execute one SQL query.
    fn execute(&self, sql: &str) -> EngineResult<ResultSet>;

    /// Render the rewritten logical plan and its canonical fingerprint
    /// without executing. Systems without a plan inspector keep the
    /// default error.
    fn explain(&self, sql: &str) -> EngineResult<Explain> {
        let _ = sql;
        Err(EngineError::Unsupported(
            "EXPLAIN not supported by this system".into(),
        ))
    }

    /// Execute `sql` with the profiler on and render the EXPLAIN tree
    /// annotated with per-operator metrics. Systems without a profiler
    /// keep the default error.
    fn explain_analyze(&self, sql: &str) -> EngineResult<AnalyzedPlan> {
        let _ = sql;
        Err(EngineError::Unsupported(
            "EXPLAIN ANALYZE not supported by this system".into(),
        ))
    }

    /// Execute with prepared-statement semantics: if the system has a
    /// plan cache and `fingerprint` names a cached plan, parse/bind/
    /// rewrite are skipped and the cached [`BoundQuery`] runs directly.
    /// The returned [`FpExecution`] always carries the authoritative
    /// fingerprint of the plan that ran — on a miss, that is the key the
    /// caller should reuse to hit next time. Systems without a cache
    /// fall through to plain [`Dbms::execute`] and report
    /// [`CacheOutcome::Bypass`].
    fn execute_by_fingerprint(
        &self,
        sql: &str,
        fingerprint: Option<u64>,
    ) -> EngineResult<FpExecution> {
        let _ = fingerprint;
        let fp = self.explain(sql).map(|e| e.fingerprint).unwrap_or(0);
        Ok(FpExecution {
            result: self.execute(sql)?,
            fingerprint: fp,
            cache: CacheOutcome::Bypass,
        })
    }

    /// `name-version` label used in reports.
    fn label(&self) -> String {
        format!("{}-{}", self.name(), self.version())
    }
}

/// The shared hit/miss/reoptimize/bypass protocol of
/// `execute_by_fingerprint`, parameterized over how a store binds SQL
/// (optionally with cardinality hints) and runs a bound plan so both
/// engines get identical cache semantics.
///
/// The adaptive loop closes here: when profiled runs have recorded
/// actual cardinalities newer than the cached plan (see
/// [`PlanCache::record_feedback`]), the query is re-planned with those
/// actuals as hints, the stale entry is replaced in place, and the call
/// reports [`CacheOutcome::Reoptimized`].
fn cached_execute(
    cache: Option<&Arc<PlanCache>>,
    fingerprint: Option<u64>,
    bind: impl Fn(Option<&ir::cost::CardHints>) -> EngineResult<BoundQuery>,
    run: impl Fn(&BoundQuery) -> EngineResult<ResultSet>,
) -> EngineResult<FpExecution> {
    let Some(cache) = cache else {
        let bound = bind(None)?;
        let fp = ir::explain(&bound).fingerprint;
        return Ok(FpExecution {
            result: run(&bound)?,
            fingerprint: fp,
            cache: CacheOutcome::Bypass,
        });
    };
    if let Some(fp) = fingerprint {
        if let Some(bound) = cache.get(fp) {
            if let Some((hints, generation)) = cache.stale_hints(fp) {
                // Fresh actuals arrived since this plan was built:
                // re-search the join order with corrected cardinalities
                // and replace the cached entry.
                let rebound = Arc::new(bind(Some(&hints))?);
                let new_fp = ir::explain(&rebound).fingerprint;
                cache.insert(new_fp, rebound.clone());
                cache.mark_planned(fp, generation);
                cache.count_reoptimized();
                return Ok(FpExecution {
                    result: run(&rebound)?,
                    fingerprint: new_fp,
                    cache: CacheOutcome::Reoptimized,
                });
            }
            return Ok(FpExecution {
                result: run(&bound)?,
                fingerprint: fp,
                cache: CacheOutcome::Hit,
            });
        }
    } else {
        cache.count_miss();
    }
    // Miss: build the plan, insert it under its *authoritative*
    // fingerprint (a stale or wrong client key must not poison the
    // cache), then execute the plan we just cached. If feedback is
    // already waiting for this fingerprint (entry evicted, actuals
    // kept), re-plan with it immediately rather than caching a plan
    // known to be built on bad estimates.
    let plain = bind(None)?;
    let fp = ir::explain(&plain).fingerprint;
    if let Some((hints, generation)) = cache.stale_hints(fp) {
        let rebound = Arc::new(bind(Some(&hints))?);
        let new_fp = ir::explain(&rebound).fingerprint;
        cache.insert(new_fp, rebound.clone());
        cache.mark_planned(fp, generation);
        cache.count_reoptimized();
        return Ok(FpExecution {
            result: run(&rebound)?,
            fingerprint: new_fp,
            cache: CacheOutcome::Reoptimized,
        });
    }
    let bound = Arc::new(plain);
    let evicted = cache.insert(fp, bound.clone());
    Ok(FpExecution {
        result: run(&bound)?,
        fingerprint: fp,
        cache: CacheOutcome::Miss { evicted },
    })
}

/// Bind (and, unless disabled, rewrite and optimize) `sql` against `db`,
/// then render the plan. Both engines share the binder, rewriter and
/// optimizer, so their EXPLAIN output — and therefore their fingerprints
/// — are identical by construction.
fn explain_sql(db: &Database, sql: &str, rewrite: bool, optimize: bool) -> EngineResult<Explain> {
    let q = sqalpel_sql::parse_query(sql)?;
    let bound = Planner::new(db)
        .with_rewrite(rewrite)
        .with_optimize(optimize)
        .bind(&q)?;
    Ok(ir::explain(&bound))
}

/// The row engine as a target system.
#[derive(Clone)]
pub struct RowStore {
    db: Arc<Database>,
    budget: u64,
    version: &'static str,
    hash_joins: bool,
    threads: usize,
    rewrite: bool,
    optimize: bool,
    plan_cache: Option<Arc<PlanCache>>,
}

impl RowStore {
    /// RowStore 2.0: hash joins on equality predicates.
    pub fn new(db: Arc<Database>) -> Self {
        RowStore {
            db,
            budget: DEFAULT_BUDGET,
            version: "2.0",
            hash_joins: true,
            threads: morsel::default_threads(),
            rewrite: true,
            optimize: true,
            plan_cache: None,
        }
    }

    /// RowStore 1.4: the version before the hash-join upgrade — every
    /// join is a nested loop. Discriminative benchmarking against 2.0
    /// shows identical single-table queries and wildly slower joins.
    pub fn legacy(db: Arc<Database>) -> Self {
        RowStore {
            db,
            budget: DEFAULT_BUDGET,
            version: "1.4",
            hash_joins: false,
            threads: morsel::default_threads(),
            rewrite: true,
            optimize: true,
            plan_cache: None,
        }
    }

    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Cap the morsel workers per query. `1` forces fully sequential
    /// execution; results are identical at every setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Toggle the logical rewriter (on by default). The equivalence
    /// suites diff rewritten against raw plans with this.
    pub fn with_rewriter(mut self, on: bool) -> Self {
        self.rewrite = on;
        self
    }

    /// Toggle the cost-based join-order optimizer (on by default). The
    /// equivalence suites diff optimized against syntactic-order plans
    /// with this.
    pub fn with_optimizer(mut self, on: bool) -> Self {
        self.optimize = on;
        self
    }

    /// Attach a shared plan cache: `execute_by_fingerprint` hits skip
    /// parse/bind/rewrite entirely.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    fn bind_sql(
        &self,
        sql: &str,
        hints: Option<&ir::cost::CardHints>,
    ) -> EngineResult<BoundQuery> {
        let q = sqalpel_sql::parse_query(sql)?;
        let mut p = Planner::new(&self.db)
            .with_rewrite(self.rewrite)
            .with_optimize(self.optimize);
        if let Some(h) = hints {
            p = p.with_hints(h.clone());
        }
        p.bind(&q)
    }

    fn run_bound(&self, bound: &BoundQuery) -> EngineResult<ResultSet> {
        let exec = RowExec::with_threads(&self.db, self.budget, self.hash_joins, self.threads)
            .with_rewrite(self.rewrite);
        let rows = exec.run_query(bound, None)?;
        Ok(ResultSet::new(bound.output_names(), rows))
    }

    /// Execute with the profiler on, returning both the result set and
    /// the annotated plan. The invariance suite checks the rows are
    /// byte-identical to a profiler-off `execute`. When a plan cache is
    /// attached, the observed per-operator cardinalities are recorded as
    /// feedback so the next `execute_by_fingerprint` re-optimizes with
    /// actuals.
    pub fn execute_analyzed(&self, sql: &str) -> EngineResult<(ResultSet, AnalyzedPlan)> {
        let bound = self.bind_sql(sql, None)?;
        let exec = RowExec::with_threads(&self.db, self.budget, self.hash_joins, self.threads)
            .with_rewrite(self.rewrite)
            .with_profiler();
        let rows = exec.run_query(&bound, None)?;
        let profile = exec.take_profile();
        let plan = AnalyzedPlan {
            explain: ir::explain_analyze(&bound, &profile),
            ops: ir::profile_ops(&bound, &profile)
                .into_iter()
                .map(|(op, metrics)| OpProfile { op, metrics })
                .collect(),
        };
        if let Some(cache) = &self.plan_cache {
            let hints = crate::profile::extract_feedback(&bound, &profile);
            cache.record_feedback(plan.explain.fingerprint, hints);
        }
        Ok((ResultSet::new(bound.output_names(), rows), plan))
    }

    /// Two-pass adaptive EXPLAIN: run the cold (stats-only) plan with
    /// the profiler on and render `est_rows` next to the actuals, then
    /// re-plan with the observed cardinalities as hints and render the
    /// reoptimized plan the same way. The pair is what the plan goldens
    /// pin — the second pass shows both any join-order change and the
    /// estimates converging on the actuals.
    pub fn explain_adaptive(&self, sql: &str) -> EngineResult<(Explain, Explain)> {
        let profiled_run = |bound: &BoundQuery| -> EngineResult<crate::profile::ProfileShard> {
            let exec = RowExec::with_threads(&self.db, self.budget, self.hash_joins, self.threads)
                .with_rewrite(self.rewrite)
                .with_profiler();
            exec.run_query(bound, None)?;
            Ok(exec.take_profile())
        };
        let cold_bound = self.bind_sql(sql, None)?;
        let cold_profile = profiled_run(&cold_bound)?;
        let cold = ir::explain_estimates(
            &cold_bound,
            &cold_profile,
            &ir::cost::CardHints::default(),
        );
        let hints = crate::profile::extract_feedback(&cold_bound, &cold_profile);
        let warm_bound = self.bind_sql(sql, Some(&hints))?;
        let warm_profile = profiled_run(&warm_bound)?;
        let warm = ir::explain_estimates(&warm_bound, &warm_profile, &hints);
        Ok((cold, warm))
    }
}

impl Dbms for RowStore {
    fn name(&self) -> &str {
        "rowstore"
    }

    fn version(&self) -> &str {
        self.version
    }

    fn execute(&self, sql: &str) -> EngineResult<ResultSet> {
        let exec = RowExec::with_threads(&self.db, self.budget, self.hash_joins, self.threads)
            .with_rewrite(self.rewrite);
        let (columns, rows) = exec.run_sql(sql)?;
        Ok(ResultSet::new(columns, rows))
    }

    fn explain(&self, sql: &str) -> EngineResult<Explain> {
        explain_sql(&self.db, sql, self.rewrite, self.optimize)
    }

    fn explain_analyze(&self, sql: &str) -> EngineResult<AnalyzedPlan> {
        self.execute_analyzed(sql).map(|(_, plan)| plan)
    }

    fn execute_by_fingerprint(
        &self,
        sql: &str,
        fingerprint: Option<u64>,
    ) -> EngineResult<FpExecution> {
        cached_execute(
            self.plan_cache.as_ref(),
            fingerprint,
            |hints| self.bind_sql(sql, hints),
            |bound| self.run_bound(bound),
        )
    }
}

/// The column engine as a target system.
#[derive(Clone)]
pub struct ColStore {
    db: Arc<Database>,
    budget: u64,
    threads: usize,
    rewrite: bool,
    optimize: bool,
    zone_maps: bool,
    plan_cache: Option<Arc<PlanCache>>,
}

impl ColStore {
    pub fn new(db: Arc<Database>) -> Self {
        ColStore {
            db,
            budget: DEFAULT_BUDGET,
            threads: morsel::default_threads(),
            rewrite: true,
            optimize: true,
            zone_maps: true,
            plan_cache: None,
        }
    }

    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Cap the morsel workers per query. `1` forces fully sequential
    /// execution; results are identical at every setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Toggle the logical rewriter (on by default). The equivalence
    /// suites diff rewritten against raw plans with this.
    pub fn with_rewriter(mut self, on: bool) -> Self {
        self.rewrite = on;
        self
    }

    /// Toggle the cost-based join-order optimizer (on by default). The
    /// equivalence suites diff optimized against syntactic-order plans
    /// with this.
    pub fn with_optimizer(mut self, on: bool) -> Self {
        self.optimize = on;
        self
    }

    /// Toggle zone-map scan skipping (on by default). Results are
    /// identical either way; the benches use this to measure how much
    /// of a selective scan the zone maps let the engine skip.
    pub fn with_zone_maps(mut self, on: bool) -> Self {
        self.zone_maps = on;
        self
    }

    /// Attach a shared plan cache: `execute_by_fingerprint` hits skip
    /// parse/bind/rewrite entirely.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    fn bind_sql(
        &self,
        sql: &str,
        hints: Option<&ir::cost::CardHints>,
    ) -> EngineResult<BoundQuery> {
        let q = sqalpel_sql::parse_query(sql)?;
        let mut p = Planner::new(&self.db)
            .with_rewrite(self.rewrite)
            .with_optimize(self.optimize);
        if let Some(h) = hints {
            p = p.with_hints(h.clone());
        }
        p.bind(&q)
    }

    fn run_bound(&self, bound: &BoundQuery) -> EngineResult<ResultSet> {
        let exec = ColExec::with_threads(&self.db, self.budget, self.threads)
            .with_rewrite(self.rewrite)
            .with_zone_maps(self.zone_maps);
        let rows = exec.run_query(bound, None)?;
        Ok(ResultSet::new(bound.output_names(), rows))
    }

    /// Execute with the profiler on, returning both the result set and
    /// the annotated plan. The invariance suite checks the rows are
    /// byte-identical to a profiler-off `execute`. When a plan cache is
    /// attached, the observed per-operator cardinalities are recorded as
    /// feedback so the next `execute_by_fingerprint` re-optimizes with
    /// actuals.
    pub fn execute_analyzed(&self, sql: &str) -> EngineResult<(ResultSet, AnalyzedPlan)> {
        let bound = self.bind_sql(sql, None)?;
        let exec = ColExec::with_threads(&self.db, self.budget, self.threads)
            .with_rewrite(self.rewrite)
            .with_zone_maps(self.zone_maps)
            .with_profiler();
        let rows = exec.run_query(&bound, None)?;
        let profile = exec.take_profile();
        let plan = AnalyzedPlan {
            explain: ir::explain_analyze(&bound, &profile),
            ops: ir::profile_ops(&bound, &profile)
                .into_iter()
                .map(|(op, metrics)| OpProfile { op, metrics })
                .collect(),
        };
        if let Some(cache) = &self.plan_cache {
            let hints = crate::profile::extract_feedback(&bound, &profile);
            cache.record_feedback(plan.explain.fingerprint, hints);
        }
        Ok((ResultSet::new(bound.output_names(), rows), plan))
    }
}

impl Dbms for ColStore {
    fn name(&self) -> &str {
        "colstore"
    }

    fn version(&self) -> &str {
        "5.1"
    }

    fn execute(&self, sql: &str) -> EngineResult<ResultSet> {
        let exec = ColExec::with_threads(&self.db, self.budget, self.threads)
            .with_rewrite(self.rewrite)
            .with_zone_maps(self.zone_maps);
        let (columns, rows) = exec.run_sql(sql)?;
        Ok(ResultSet::new(columns, rows))
    }

    fn explain(&self, sql: &str) -> EngineResult<Explain> {
        explain_sql(&self.db, sql, self.rewrite, self.optimize)
    }

    fn explain_analyze(&self, sql: &str) -> EngineResult<AnalyzedPlan> {
        self.execute_analyzed(sql).map(|(_, plan)| plan)
    }

    fn execute_by_fingerprint(
        &self,
        sql: &str,
        fingerprint: Option<u64>,
    ) -> EngineResult<FpExecution> {
        cached_execute(
            self.plan_cache.as_ref(),
            fingerprint,
            |hints| self.bind_sql(sql, hints),
            |bound| self.run_bound(bound),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpch() -> Arc<Database> {
        Arc::new(Database::tpch(0.001, 42))
    }

    #[test]
    fn labels() {
        let db = tpch();
        assert_eq!(RowStore::new(db.clone()).label(), "rowstore-2.0");
        assert_eq!(RowStore::legacy(db.clone()).label(), "rowstore-1.4");
        assert_eq!(ColStore::new(db).label(), "colstore-5.1");
    }

    #[test]
    fn engines_agree_on_simple_query() {
        let db = tpch();
        let sql = "select n_regionkey, count(*) from nation group by n_regionkey order by n_regionkey";
        let a = RowStore::new(db.clone()).execute(sql).unwrap();
        let b = ColStore::new(db).execute(sql).unwrap();
        assert!(a.approx_eq(&b, 1e-9), "\n{a}\nvs\n{b}");
    }

    #[test]
    fn legacy_rowstore_gives_same_answers() {
        let db = tpch();
        let sql = "select n_name from nation, region \
                   where n_regionkey = r_regionkey and r_name = 'ASIA' order by n_name";
        let new = RowStore::new(db.clone()).execute(sql).unwrap();
        let old = RowStore::legacy(db).execute(sql).unwrap();
        assert!(new.approx_eq(&old, 0.0));
    }

    #[test]
    fn errors_surface_as_results() {
        let db = tpch();
        let err = RowStore::new(db).execute("select nope from nowhere").unwrap_err();
        assert!(err.to_string().contains("unknown table"));
    }

    #[test]
    fn thread_counts_agree_exactly() {
        // SF 0.01 puts lineitem well past the parallel threshold.
        let db = Arc::new(Database::tpch(0.01, 42));
        let sql = "select l_returnflag, count(*), sum(l_quantity), min(l_shipdate) \
                   from lineitem where l_quantity < 24 \
                   group by l_returnflag order by l_returnflag";
        let row1 = RowStore::new(db.clone()).with_threads(1).execute(sql).unwrap();
        let row4 = RowStore::new(db.clone()).with_threads(4).execute(sql).unwrap();
        assert!(row1.approx_eq(&row4, 0.0), "\n{row1}\nvs\n{row4}");
        let col1 = ColStore::new(db.clone()).with_threads(1).execute(sql).unwrap();
        let col4 = ColStore::new(db).with_threads(4).execute(sql).unwrap();
        assert!(col1.approx_eq(&col4, 0.0), "\n{col1}\nvs\n{col4}");
    }

    #[test]
    fn explain_analyze_agrees_across_engines_and_keeps_the_fingerprint() {
        let db = tpch();
        let sql = "select l_returnflag, count(*) from lineitem \
                   where l_quantity < 24 group by l_returnflag order by l_returnflag";
        let row = RowStore::new(db.clone()).with_threads(1);
        let col = ColStore::new(db).with_threads(1);
        let (r_rows, r_plan) = row.execute_analyzed(sql).unwrap();
        let (c_rows, c_plan) = col.execute_analyzed(sql).unwrap();
        // Profiling changes no result bytes.
        assert!(r_rows.approx_eq(&row.execute(sql).unwrap(), 0.0));
        assert!(c_rows.approx_eq(&col.execute(sql).unwrap(), 0.0));
        // ANALYZE never changes plan identity.
        let plain = row.explain(sql).unwrap();
        assert_eq!(r_plan.explain.fingerprint, plain.fingerprint);
        assert_eq!(c_plan.explain.fingerprint, plain.fingerprint);
        // Rows and batches agree across engines at threads=1; only the
        // timings are engine-specific.
        let strip = |ops: &[OpProfile]| {
            ops.iter()
                .map(|o| {
                    (
                        o.op.clone(),
                        o.metrics.rows_in,
                        o.metrics.rows_out,
                        o.metrics.batches,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&r_plan.ops), strip(&c_plan.ops));
        assert!(r_plan.explain.text.contains("rows_in="), "{}", r_plan.explain.text);
        assert!(!plain.text.contains("rows_in="));
    }

    #[test]
    fn dbms_is_object_safe() {
        let db = tpch();
        let systems: Vec<Box<dyn Dbms>> = vec![
            Box::new(RowStore::new(db.clone())),
            Box::new(ColStore::new(db)),
        ];
        for s in &systems {
            let r = s.execute("select count(*) from region").unwrap();
            assert_eq!(r.rows[0][0].to_string(), "5");
        }
    }
}
