//! Differential v1-vs-v2 wire suite: the same [`SqalpelServer`] served
//! simultaneously over JSON/HTTP ([`WireServer`]) and the framed binary
//! protocol ([`V2Server`]), driven through both transports and required
//! to produce **identical decoded values** — replies, typed errors, CSV
//! bytes, result records, execution outcomes. Plus the v2-specific
//! guarantees: pipelined batches equal serial calls, injected mid-frame
//! connection drops never double-report, and a warm plan cache shows its
//! hits at `GET /v1/metrics` while returning byte-identical results.

use sqalpel_core::wire::Request;
use sqalpel_core::{
    DbmsEntry, DriverConfig, ExecBackend, ExperimentDriver, MockConnector, PlatformError, Proto,
    ProjectId, RetryPolicy, SqalpelServer, UserId, V2Config, V2Server, Visibility, WireClient,
    WireConfig, WireServer,
};
use sqalpel_engine::{Database, PlanCache, RowStore};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const DBMS: &str = "rowstore-2.0";
const HOST: &str = "bench-server";
const SQL: &str =
    "select n_name, n_regionkey from nation where n_regionkey = 1 and n_name = 'BRAZIL'";

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 8,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
    }
}

/// One server, both protocols, an engine backend with a warm-able plan
/// cache. Returns the two wire servers (kept alive by the caller) and a
/// client per protocol.
fn both_wires(server: &Arc<SqalpelServer>) -> (WireServer, V2Server, WireClient, WireClient) {
    let backend = ExecBackend::new(Arc::new(
        RowStore::new(Arc::new(Database::tpch(0.001, 42)))
            .with_plan_cache(Arc::new(PlanCache::new(16))),
    ));
    let v1 = WireServer::start_with_backend(
        Arc::clone(server),
        Some(backend.clone()),
        "127.0.0.1:0",
        WireConfig::default(),
    )
    .expect("bind v1");
    let v2 = V2Server::start(
        Arc::clone(server),
        Some(backend),
        "127.0.0.1:0",
        V2Config::default(),
    )
    .expect("bind v2");
    let c1 = WireClient::builder(v1.local_addr()).retry(fast_retry()).build();
    let c2 = WireClient::builder(v2.local_addr())
        .transport(Proto::V2Framed)
        .retry(fast_retry())
        .build();
    (v1, v2, c1, c2)
}

fn driver() -> ExperimentDriver<MockConnector> {
    ExperimentDriver::new(
        MockConnector {
            label: DBMS.into(),
            fail_pattern: None,
            spin: 0,
            rows: 1,
        },
        DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 1").unwrap(),
    )
}

/// Every op family crosses both transports; whenever both protocols ask
/// the same question of the same state, the decoded replies must be
/// equal. Mutating setup runs over v2 (so the binary codec carries the
/// whole management surface at least once) and is checked against the
/// deterministic values the in-process server produces.
#[test]
fn same_state_answers_identically_on_both_transports() {
    let server = Arc::new(SqalpelServer::new());
    let (_w1, _w2, v1, v2) = both_wires(&server);

    // -------- mutating surface over the binary protocol
    let owner = v2.register_user("mlk", "mlk@cwi.nl").unwrap();
    let contrib = v2.register_user("pk", "pk@monetdb.com").unwrap();
    let project = v2
        .create_project(owner, "diff", "differential suite", Visibility::Public)
        .unwrap();
    v2.add_dbms(DbmsEntry {
        name: "diffstore".into(),
        version: "1.0".into(),
        vendor: "cwi".into(),
        settings: BTreeMap::from([("threads".into(), "4".into())]),
        visibility: Visibility::Public,
    })
    .unwrap();
    v2.set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
        .unwrap();
    v2.invite(project, owner, contrib).unwrap();
    v2.comment(project, owner, "over frames").unwrap();
    let exp = v2
        .add_experiment(
            project,
            owner,
            "fig1",
            SQL,
            Some(sqalpel_grammar::FIG1_GRAMMAR),
            1000,
            100,
        )
        .unwrap();
    assert_eq!(v2.seed_pool(project, exp, owner, 5, 42).unwrap(), 6);
    v2.morph_pool(project, exp, owner, None, 8, 3).unwrap();
    let total = v2.enqueue_experiment(project, exp, owner).unwrap();
    assert!(total >= 6);

    // -------- read-only surface: v1 and v2 against the same state
    assert_eq!(v1.dbms_labels().unwrap(), v2.dbms_labels().unwrap());
    assert_eq!(
        v1.role_of(project, contrib).unwrap(),
        v2.role_of(project, contrib).unwrap()
    );
    assert_eq!(v1.queue_summary().unwrap(), v2.queue_summary().unwrap());

    // -------- contribute over alternating transports
    let key = v1.issue_key(contrib).unwrap();
    let d = driver();
    let mut turn = 0usize;
    loop {
        let client = if turn.is_multiple_of(2) { &v1 } else { &v2 };
        turn += 1;
        let Some(task) = client.request_task(&key, DBMS, HOST).unwrap() else {
            break;
        };
        client.report_result(&key, task.id, &d.run(&task.sql)).unwrap();
    }

    // The full result table and its CSV export, decoded through both
    // protocols, must be *equal values* — columnar binary vs JSON rows
    // is a transport difference only.
    let r1 = v1.results_for_key(project, &key).unwrap();
    let r2 = v2.results_for_key(project, &key).unwrap();
    assert_eq!(r1.len(), total);
    assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    assert_eq!(
        v1.export_csv(project, contrib).unwrap(),
        v2.export_csv(project, contrib).unwrap()
    );
    assert_eq!(v1.queue_summary().unwrap(), v2.queue_summary().unwrap());

    // Moderation over v2, observed over v1.
    v2.hide_result(project, owner, 0, true).unwrap();
    let reader = v2.register_user("reader", "r@x.io").unwrap();
    assert_eq!(
        v1.export_csv(project, reader).unwrap(),
        v2.export_csv(project, reader).unwrap()
    );
}

/// Typed errors must decode to the *same variant with the same payload*
/// on both transports, even though one travels as an HTTP status + JSON
/// body and the other as a status byte + binary detail.
#[test]
fn typed_errors_are_transport_invariant() {
    let server = Arc::new(SqalpelServer::new());
    let (_w1, _w2, v1, v2) = both_wires(&server);

    let cases: Vec<(PlatformError, PlatformError)> = vec![
        (
            v1.register_user("", "bad").unwrap_err(),
            v2.register_user("", "bad").unwrap_err(),
        ),
        (
            v1.take_down(ProjectId(99)).unwrap_err(),
            v2.take_down(ProjectId(99)).unwrap_err(),
        ),
        (
            v1.issue_key(UserId(42)).unwrap_err(),
            v2.issue_key(UserId(42)).unwrap_err(),
        ),
        (
            v1.execute("select definitely not sql", None).unwrap_err(),
            v2.execute("select definitely not sql", None).unwrap_err(),
        ),
    ];
    for (e1, e2) in cases {
        assert_eq!(e1, e2, "same typed error on both transports");
    }
    // Sanity: the variants really are the interesting ones.
    assert!(matches!(v2.take_down(ProjectId(99)), Err(PlatformError::UnknownProject(99))));
}

/// A pipelined batch must return exactly what the same ops return when
/// sent serially — same order, same values — and interleaves cheap and
/// fallible ops so per-frame errors stay correlated by tag.
#[test]
fn pipelined_batches_equal_serial_calls() {
    let server = Arc::new(SqalpelServer::new());
    let (_w1, _w2, _v1, v2) = both_wires(&server);

    let user = v2.register_user("mlk", "mlk@cwi.nl").unwrap();
    let project = v2
        .create_project(user, "pipe", "pipelining", Visibility::Public)
        .unwrap();

    let ops = vec![
        Request::QueueSummary,
        Request::DbmsLabels,
        Request::RoleOf { project, user },
        // A failing op mid-batch: the error must land at *this* slot.
        Request::RoleOf { project: ProjectId(77), user },
        Request::QueueSummary,
    ];
    let pipelined = v2.pipeline(&ops).unwrap();
    assert_eq!(pipelined.len(), ops.len());
    let serial: Vec<_> = ops.iter().map(|op| v2.call(op)).collect();
    for (i, (p, s)) in pipelined.iter().zip(serial.iter()).enumerate() {
        assert_eq!(format!("{p:?}"), format!("{s:?}"), "op #{i} diverged");
    }
    assert!(matches!(pipelined[3], Err(PlatformError::UnknownProject(77))));
}

/// The v2 drop-injection drill: a client that writes half a frame and
/// slams the connection on a fixed schedule must still drain the queue
/// with zero double-reports — a half-written frame is never dispatched,
/// so the retry is the only delivery.
#[test]
fn v2_mid_frame_drops_never_double_report() {
    let server = Arc::new(SqalpelServer::new());
    let (_w1, _w2, v1, _v2) = both_wires(&server);
    let v2_addr = _w2.local_addr();

    let owner = v1.register_user("mlk", "mlk@cwi.nl").unwrap();
    let project = v1
        .create_project(owner, "drops", "v2 drop drill", Visibility::Public)
        .unwrap();
    v1.set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
        .unwrap();
    let exp = v1
        .add_experiment(project, owner, "nation", SQL, None, 1000, 100)
        .unwrap();
    v1.seed_pool(project, exp, owner, 5, 42).unwrap();
    let total = v1.enqueue_experiment(project, exp, owner).unwrap();
    assert!(total >= 4);

    let key = v1.issue_key(owner).unwrap();
    let flaky = WireClient::builder(v2_addr)
        .transport(Proto::V2Framed)
        .retry(fast_retry())
        .inject_drop_every(3)
        .build();
    let d = driver();
    let mut completed = 0usize;
    while let Some(task) = flaky.request_task(&key, DBMS, HOST).unwrap() {
        flaky.report_result(&key, task.id, &d.run(&task.sql)).unwrap();
        completed += 1;
    }
    assert_eq!(completed, total);
    assert_eq!(
        v1.results_for_key(project, &key).unwrap().len(),
        total,
        "zero double-reported tasks under v2 drop injection"
    );
    let summary = v1.queue_summary().unwrap();
    assert_eq!((summary.queued, summary.running, summary.finished), (0, 0, total));
}

/// The plan cache behind `Execute`: a cold miss then warm
/// fingerprint-keyed hits, byte-identical results either way, and the
/// `plan_cache.*` counters visible through the ordinary v1
/// `GET /v1/metrics` endpoint.
#[test]
fn warm_plan_cache_hits_show_at_v1_metrics_with_identical_results() {
    let server = Arc::new(SqalpelServer::new());
    let (_w1, _w2, v1, v2) = both_wires(&server);

    let sql = "select count(*) from lineitem where l_quantity < 24";
    let cold = v2.execute(sql, None).unwrap();
    assert_eq!(cold.cache.as_str(), "miss");

    // Warm hits over BOTH transports; every decoded execution must equal
    // the cold one except for its cache flag.
    for client in [&v2, &v1, &v2] {
        let warm = client.execute(sql, Some(cold.fingerprint)).unwrap();
        assert_eq!(warm.cache.as_str(), "hit");
        assert_eq!(warm.fingerprint, cold.fingerprint);
        assert_eq!(
            format!("{:?}", warm.result),
            format!("{:?}", cold.result),
            "hit result must be byte-identical to the miss result"
        );
    }

    let snap = v1.metrics().unwrap();
    assert!(snap.counter("plan_cache.hits").unwrap_or(0) >= 3, "hits > 0 at /v1/metrics");
    assert_eq!(snap.counter("plan_cache.misses"), Some(1));

    // A lying fingerprint is not trusted: the server re-derives the
    // authoritative one, so results stay correct (miss, not poison).
    let lied = v2.execute(sql, Some(cold.fingerprint ^ 0xdead)).unwrap();
    assert_eq!(format!("{:?}", lied.result), format!("{:?}", cold.result));
}

/// The generic worker pool runs unchanged over the framed transport —
/// the `Platform` impl is transport-agnostic by construction.
#[test]
fn worker_pool_drains_over_v2() {
    use sqalpel_core::{run_worker_pool, Worker};
    let server = Arc::new(SqalpelServer::new());
    let (_w1, _w2, v1, v2) = both_wires(&server);

    let owner = v2.register_user("mlk", "mlk@cwi.nl").unwrap();
    let project = v2
        .create_project(owner, "pool-v2", "pool over frames", Visibility::Public)
        .unwrap();
    v2.set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
        .unwrap();
    let exp = v2
        .add_experiment(project, owner, "nation", SQL, None, 1000, 100)
        .unwrap();
    v2.seed_pool(project, exp, owner, 3, 7).unwrap();
    let total = v2.enqueue_experiment(project, exp, owner).unwrap();

    let workers = (0..4)
        .map(|_| Worker::new(v2.issue_key(owner).unwrap(), driver()))
        .collect();
    let report = run_worker_pool(&v2, workers);
    assert_eq!(report.completed(), total);
    assert_eq!(report.rejected(), 0);
    let summary = v1.queue_summary().unwrap();
    assert_eq!((summary.queued, summary.running), (0, 0));
    assert_eq!(summary.terminal(), total);
}
