//! Property tests for the metrics registry's histogram algebra.
//!
//! Histograms are merged across registry shards when a snapshot is cut,
//! so the merge must be associative and commutative and must conserve
//! counts and sums; quantiles must be monotone in `q` and bound every
//! recorded sample they claim to bound.

use proptest::prelude::*;
use sqalpel_core::Histogram;

/// Deterministically expand a seed into `len` samples spanning many
/// orders of magnitude (log₂ buckets make uniform draws uninteresting).
fn samples_from_seed(seed: u64, len: usize) -> Vec<u64> {
    let mut x = seed | 1;
    let mut next = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 33
    };
    (0..len)
        .map(|_| {
            let magnitude = next() % 30;
            next() % (1u64 << magnitude).max(1)
        })
        .collect()
}

fn histogram_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

fn arb_samples2() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    (any::<u64>(), any::<u64>(), 0usize..200, 0usize..200).prop_map(|(s1, s2, l1, l2)| {
        (samples_from_seed(s1, l1), samples_from_seed(s2, l2))
    })
}

fn arb_samples3() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, Vec<u64>)> {
    (any::<u64>(), any::<u64>(), any::<u64>(), 0usize..200).prop_map(|(s1, s2, s3, len)| {
        (
            samples_from_seed(s1, len),
            samples_from_seed(s2, len / 2 + 1),
            samples_from_seed(s3, len / 3 + 2),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// a ⊕ b == b ⊕ a.
    #[test]
    fn merge_is_commutative(samples in arb_samples2()) {
        let (xs, ys) = samples;
        let (a, b) = (histogram_of(&xs), histogram_of(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), and both equal recording every
    /// sample into one histogram.
    #[test]
    fn merge_is_associative_and_equals_single_pass(samples in arb_samples3()) {
        let (xs, ys, zs) = samples;
        let (a, b, c) = (histogram_of(&xs), histogram_of(&ys), histogram_of(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(left, histogram_of(&all));
    }

    /// Merging conserves count and sum exactly.
    #[test]
    fn merge_conserves_count_and_sum(samples in arb_samples2()) {
        let (xs, ys) = samples;
        let (a, b) = (histogram_of(&xs), histogram_of(&ys));
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.count(), a.count() + b.count());
        prop_assert_eq!(merged.sum(), a.sum() + b.sum());
        prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
        prop_assert_eq!(merged.sum(), xs.iter().chain(&ys).sum::<u64>());
    }

    /// quantile is monotone in q, and the reported bound really bounds
    /// at least ⌈q·count⌉ of the recorded samples.
    #[test]
    fn quantiles_are_monotone_and_sound(input in (arb_samples2(), 1u32..101, 1u32..101)) {
        let ((xs, _), a, b) = input;
        let h = histogram_of(&xs);
        let (lo, hi) = (a.min(b) as f64 / 100.0, a.max(b) as f64 / 100.0);
        prop_assert!(h.quantile(lo) <= h.quantile(hi));

        if !xs.is_empty() {
            let bound = h.quantile(lo);
            let target = (lo * xs.len() as f64).ceil() as usize;
            let covered = xs.iter().filter(|&&v| v <= bound).count();
            prop_assert!(
                covered >= target.clamp(1, xs.len()),
                "quantile({}) = {} covers {} of {} samples, needs {}",
                lo, bound, covered, xs.len(), target
            );
        }
    }
}
