//! Property tests for admission control.
//!
//! The per-user in-flight bound is the platform's defense against a
//! contributor script stuck in a crash loop checking out the whole
//! queue. Two layers are exercised: the [`AdmissionControl`] ledger
//! against a reference model under arbitrary interleavings, and the
//! full [`SqalpelServer`] hand-out/report/reap cycle, where every
//! release path (ok report, error report, reaper) must return the slot.

use proptest::prelude::*;
use sqalpel_core::{
    AdmissionConfig, AdmissionControl, ContributorKey, LoadAvg, PlatformError, RunOutcome,
    SqalpelServer, Task, TaskId, UserId, Visibility,
};
use std::collections::HashMap;
use std::time::Duration;

const USERS: usize = 3;
const KEYS: usize = 2;

/// Deterministically expand a seed into `len` op tuples (the vendored
/// proptest has no collection strategies; same idiom as metrics_props).
fn ops_from_seed(seed: u64, len: usize) -> Vec<(u8, u8, u8, u8)> {
    let mut x = seed | 1;
    let mut next = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (x >> 33) as u8
    };
    (0..len).map(|_| (next(), next(), next(), next())).collect()
}

fn fake_outcome(error: Option<String>) -> RunOutcome {
    RunOutcome {
        times_ms: vec![1.0],
        rows: 1,
        error,
        load_before: LoadAvg::default(),
        load_after: LoadAvg::default(),
        extras: serde_json::Value::Null,
        fingerprint: None,
        profile: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of reserve/confirm/cancel, release by
    /// key, and release by task (the reaper's path) against a reference
    /// model: per-user counts track exactly, never exceed the bound,
    /// and `try_reserve` fails precisely at the bound.
    #[test]
    fn bound_is_exact_under_arbitrary_interleavings(
        bound in 1usize..4,
        seed in any::<u64>(),
        len in 1usize..120,
    ) {
        let ops = ops_from_seed(seed, len);
        let adm = AdmissionControl::new(AdmissionConfig {
            max_inflight_per_user: bound,
            max_queued_per_project: 1_000,
        });
        let key_of = |u: usize, k: usize| ContributorKey(format!("ck_{u}_{k}"));
        let mut held: HashMap<(usize, usize), Vec<TaskId>> = HashMap::new();
        let count = |held: &HashMap<(usize, usize), Vec<TaskId>>, u: usize| -> usize {
            (0..KEYS).map(|k| held.get(&(u, k)).map_or(0, Vec::len)).sum()
        };
        let mut next_task = 0u64;
        for (action, u, k, x) in ops {
            let (u, k) = (u as usize % USERS, k as usize % KEYS);
            let user = UserId(u as u64 + 1);
            match action % 4 {
                // Claim: reserve, then confirm (x even) or cancel (the
                // shard sweep found nothing).
                0 | 1 => {
                    let res = adm.try_reserve(user);
                    if count(&held, u) >= bound {
                        prop_assert!(matches!(res, Err(PlatformError::Throttled(_))));
                    } else {
                        prop_assert!(res.is_ok());
                        if x % 2 == 0 {
                            next_task += 1;
                            let t = TaskId(next_task);
                            adm.confirm(&key_of(u, k), user, t, None);
                            held.entry((u, k)).or_default().push(t);
                        } else {
                            adm.cancel(user);
                        }
                    }
                }
                // Release by key: a held task if any, else a bogus id.
                2 => {
                    let slot = held.entry((u, k)).or_default();
                    if slot.is_empty() {
                        prop_assert!(!adm.release(&key_of(u, k), TaskId(u64::MAX)));
                    } else {
                        let t = slot.remove(x as usize % slot.len());
                        prop_assert!(adm.release(&key_of(u, k), t));
                        // Double release is a no-op.
                        prop_assert!(!adm.release(&key_of(u, k), t));
                    }
                }
                // Release by task alone: the reaper does not know the
                // holding key.
                _ => {
                    let mut all: Vec<((usize, usize), TaskId)> = held
                        .iter()
                        .flat_map(|(&uk, ts)| ts.iter().map(move |&t| (uk, t)))
                        .collect();
                    all.sort_by_key(|&(_, t)| t.0);
                    if all.is_empty() {
                        prop_assert!(!adm.release_any(TaskId(u64::MAX)));
                    } else {
                        let (uk, t) = all[x as usize % all.len()];
                        prop_assert!(adm.release_any(t));
                        held.get_mut(&uk).unwrap().retain(|&h| h != t);
                    }
                }
            }
            for u in 0..USERS {
                let c = count(&held, u);
                prop_assert_eq!(adm.inflight_of(UserId(u as u64 + 1)), c);
                prop_assert!(c <= bound);
            }
        }
    }

    /// Driving the whole server: claims beyond the bound are throttled
    /// (even through a fresh key of the same user), re-hand-out of an
    /// open claim consumes no extra slot, and every release path — ok
    /// report, error report, the reaper — returns the slot, so a
    /// drained walk always ends with zero in-flight.
    #[test]
    fn server_releases_every_slot(
        bound in 1usize..3,
        n_contrib in 1usize..3,
        seed in any::<u64>(),
        len in 1usize..60,
    ) {
        let ops = ops_from_seed(seed, len);
        let server = SqalpelServer::with_admission(AdmissionConfig {
            max_inflight_per_user: bound,
            max_queued_per_project: 100_000,
        });
        let owner = server.register_user("owner", "o@x.test").unwrap();
        let project = server
            .create_project(owner, "props", "admission walk", Visibility::Public)
            .unwrap();
        server
            .set_targets(project, owner, vec!["rowstore-2.0".into()], vec!["bench-server".into()])
            .unwrap();
        let exp = server
            .add_experiment(
                project,
                owner,
                "nation",
                "select count(*) from nation where n_name = 'BRAZIL'",
                None,
                1_000,
                100,
            )
            .unwrap();
        server.seed_pool(project, exp, owner, 10, 7).unwrap();
        let total = server.enqueue_experiment(project, exp, owner).unwrap();

        let users: Vec<UserId> = (0..n_contrib)
            .map(|i| {
                let u = server
                    .register_user(&format!("c{i}"), &format!("c{i}@x.test"))
                    .unwrap();
                server.invite(project, owner, u).unwrap();
                u
            })
            .collect();
        // bound+1 keys per user: the bound spans a user's keys, and the
        // spare key proves a fresh key cannot sidestep it.
        let keys: Vec<Vec<ContributorKey>> = users
            .iter()
            .map(|&u| (0..bound + 1).map(|_| server.issue_key(u).unwrap()).collect())
            .collect();

        let mut ready = total;
        let mut held: HashMap<(usize, usize), Vec<Task>> = HashMap::new();
        let held_count = |held: &HashMap<(usize, usize), Vec<Task>>, u: usize| -> usize {
            (0..bound + 1).map(|k| held.get(&(u, k)).map_or(0, Vec::len)).sum()
        };
        for (action, ub, kb, _) in ops {
            let u = ub as usize % users.len();
            let k = kb as usize % (bound + 1);
            let user = users[u];
            let key = &keys[u][k];
            match action % 8 {
                // Claim (the most frequent op).
                0..=3 => {
                    let open = held.get(&(u, k)).and_then(|v| v.first().map(|t| t.id));
                    let res = server.request_task(key, "rowstore-2.0", "bench-server");
                    if let Some(open) = open {
                        // Idempotent re-hand-out: same task, no new slot.
                        prop_assert_eq!(res.unwrap().unwrap().id, open);
                    } else if held_count(&held, u) >= bound {
                        prop_assert!(matches!(res, Err(PlatformError::Throttled(_))));
                    } else if ready == 0 {
                        prop_assert!(res.unwrap().is_none());
                    } else {
                        let t = res.unwrap().unwrap();
                        ready -= 1;
                        held.entry((u, k)).or_default().push(t);
                    }
                }
                // Report, ok and error outcomes: both release.
                4 | 5 => {
                    if let Some(t) = held.entry((u, k)).or_default().pop() {
                        let err = (action == 5).then(|| "synthetic failure".to_string());
                        server.report_result(key, t.id, fake_outcome(err)).unwrap();
                    }
                }
                // Reap everything in flight (zero timeout).
                6 => {
                    let reaped = server.reap_stuck(Duration::ZERO);
                    let in_flight: usize = held.values().map(Vec::len).sum();
                    prop_assert_eq!(reaped.len(), in_flight);
                    held.clear();
                }
                // A brand-new key of a saturated user is still throttled.
                _ => {
                    if held_count(&held, u) >= bound {
                        let fresh = server.issue_key(user).unwrap();
                        let res = server.request_task(&fresh, "rowstore-2.0", "bench-server");
                        prop_assert!(matches!(res, Err(PlatformError::Throttled(_))));
                    }
                }
            }
            for (i, &user) in users.iter().enumerate() {
                let c = held_count(&held, i);
                prop_assert_eq!(server.admission().inflight_of(user), c);
                prop_assert!(c <= bound);
            }
        }
        // Drain whatever is still open; every slot must come back.
        let open: Vec<((usize, usize), Vec<Task>)> = held.drain().collect();
        for ((u, k), tasks) in open {
            for t in tasks {
                server.report_result(&keys[u][k], t.id, fake_outcome(None)).unwrap();
            }
        }
        for &user in &users {
            prop_assert_eq!(server.admission().inflight_of(user), 0);
        }
    }
}
