//! Loopback end-to-end tests of the wire layer: a real [`WireServer`] on
//! an OS-assigned port, real TCP sockets, concurrent [`WireClient`]s —
//! including clients that deliberately drop connections after sending a
//! request, so the response is lost and the retry/idempotency pair is
//! exercised under fire.

use sqalpel_core::{
    run_worker_pool, ContributorKey, DriverConfig, ExperimentDriver, MockConnector,
    PlatformError, ProjectId, QueueSummary, RetryPolicy, ResultRecord, SqalpelServer, UserId,
    Visibility, WireClient, WireConfig, WireServer, Worker,
};
use std::sync::Arc;
use std::time::Duration;

const DBMS: &str = "rowstore-2.0";
const HOST: &str = "bench-server";
const SQL: &str =
    "select n_name, n_regionkey from nation where n_regionkey = 1 and n_name = 'BRAZIL'";

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 8,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
    }
}

fn start_wire(server: &Arc<SqalpelServer>) -> WireServer {
    WireServer::start(Arc::clone(server), "127.0.0.1:0", WireConfig::default())
        .expect("bind loopback")
}

fn driver() -> ExperimentDriver<MockConnector> {
    ExperimentDriver::new(
        MockConnector {
            label: DBMS.into(),
            fail_pattern: None,
            spin: 500,
            rows: 1,
        },
        DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 2").unwrap(),
    )
}

/// Order- and contributor-independent digest of a result set: one
/// `(query, dbms, host, rows, errored, repetitions)` row per record.
type Fingerprint = Vec<(u64, String, String, usize, bool, usize)>;

fn fingerprint(records: &[ResultRecord]) -> Fingerprint {
    let mut fp: Vec<_> = records
        .iter()
        .map(|r| {
            (
                r.query,
                r.dbms_label.clone(),
                r.host.clone(),
                r.rows,
                r.error.is_some(),
                r.times_ms.len(),
            )
        })
        .collect();
    fp.sort();
    fp
}

/// The reference: the identical scenario executed entirely in-process.
fn in_process_reference() -> (Fingerprint, QueueSummary, usize) {
    let server = SqalpelServer::new();
    let owner = server.register_user("mlk", "mlk@cwi.nl").unwrap();
    let contrib = server.register_user("pk", "pk@monetdb.com").unwrap();
    let project = server
        .create_project(owner, "wire-study", "loopback parity", Visibility::Public)
        .unwrap();
    server
        .set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
        .unwrap();
    server.invite(project, owner, contrib).unwrap();
    let exp = server
        .add_experiment(project, owner, "nation filter", SQL, None, 1000, 100)
        .unwrap();
    server.seed_pool(project, exp, owner, 5, 42).unwrap();
    server.morph_pool(project, exp, owner, None, 12, 3).unwrap();
    let total = server.enqueue_experiment(project, exp, owner).unwrap();

    let workers = (0..4)
        .map(|_| Worker::new(server.issue_key(contrib).unwrap(), driver()))
        .collect();
    let report = run_worker_pool(&server, workers);
    assert_eq!(report.completed(), total);

    let records = server.results_for(project, contrib).unwrap();
    (fingerprint(&records), server.queue_summary(), total)
}

/// The tentpole scenario: four concurrent wire clients — every one of
/// them dropping its connection after each 7th request so the response is
/// lost — drain the queue over real sockets. The outcome must be
/// *identical* to the in-process run: same result fingerprint, same
/// queue summary, zero double-reported tasks.
#[test]
fn concurrent_flaky_wire_clients_match_the_in_process_run() {
    let (reference_fp, reference_summary, reference_total) = in_process_reference();

    let server = Arc::new(SqalpelServer::new());
    let wire = start_wire(&server);
    let addr = wire.local_addr();

    // The entire management surface runs over the wire too (through a
    // clean client: management calls are not idempotent by design).
    let admin = WireClient::builder(addr).retry(fast_retry()).build();
    let owner = admin.register_user("mlk", "mlk@cwi.nl").unwrap();
    let contrib = admin.register_user("pk", "pk@monetdb.com").unwrap();
    let project = admin
        .create_project(owner, "wire-study", "loopback parity", Visibility::Public)
        .unwrap();
    admin
        .set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
        .unwrap();
    admin.invite(project, owner, contrib).unwrap();
    let exp = admin
        .add_experiment(project, owner, "nation filter", SQL, None, 1000, 100)
        .unwrap();
    assert_eq!(admin.seed_pool(project, exp, owner, 5, 42).unwrap(), 6);
    admin.morph_pool(project, exp, owner, None, 12, 3).unwrap();
    let total = admin.enqueue_experiment(project, exp, owner).unwrap();
    assert_eq!(total, reference_total);
    assert!(total >= 4, "enough tasks to keep four clients busy");

    // Four threads, each with its OWN flaky client and contributor key,
    // running the driver loop concurrently.
    let completed: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let key = admin.issue_key(contrib).unwrap();
                scope.spawn(move || {
                    let client = WireClient::builder(addr)
                        .retry(fast_retry())
                        .inject_drop_every(7)
                        .build();
                    let d = driver();
                    let mut completed = 0usize;
                    while let Some(task) = client.request_task(&key, DBMS, HOST).unwrap() {
                        let outcome = d.run(&task.sql);
                        client.report_result(&key, task.id, &outcome).unwrap();
                        completed += 1;
                    }
                    completed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    // Lost responses make a client re-claim the task it already holds, so
    // a task can be counted once per *claim*, never reported twice. The
    // server-side record count is the double-report detector.
    assert_eq!(completed, total);
    let records = admin
        .results_for_key(project, &admin.issue_key(contrib).unwrap())
        .unwrap();
    assert_eq!(records.len(), total, "zero double-reported tasks");
    assert_eq!(fingerprint(&records), reference_fp);
    assert_eq!(admin.queue_summary().unwrap(), reference_summary);
}

/// Deterministic lost-response schedule: a single client that drops every
/// second connection after writing the request. The server processes each
/// dropped request (it was fully sent), the client never sees the answer
/// and retries — so every retried claim must re-hand the same task and
/// every retried report must return the original record index.
#[test]
fn lost_responses_are_absorbed_by_idempotent_retries() {
    let server = Arc::new(SqalpelServer::new());
    let wire = start_wire(&server);

    let admin = WireClient::builder(wire.local_addr()).retry(fast_retry()).build();
    let owner = admin.register_user("mlk", "mlk@cwi.nl").unwrap();
    let project = admin
        .create_project(owner, "drops", "lost responses", Visibility::Public)
        .unwrap();
    admin
        .set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
        .unwrap();
    let exp = admin
        .add_experiment(project, owner, "nation", SQL, None, 1000, 100)
        .unwrap();
    admin.seed_pool(project, exp, owner, 1, 5).unwrap();
    let total = admin.enqueue_experiment(project, exp, owner).unwrap();
    assert_eq!(total, 2);

    let key = admin.issue_key(owner).unwrap();
    let flaky = WireClient::builder(wire.local_addr())
        .retry(fast_retry())
        .inject_drop_every(2)
        .build();
    let d = driver();
    let mut indices = Vec::new();
    let mut calls = 0u64;
    while let Some(task) = flaky.request_task(&key, DBMS, HOST).unwrap() {
        calls += 1;
        indices.push(flaky.report_result(&key, task.id, &d.run(&task.sql)).unwrap());
        calls += 1;
    }
    calls += 1; // the final empty claim

    // Both tasks landed exactly once, under distinct record indices.
    indices.sort_unstable();
    indices.dedup();
    assert_eq!(indices.len(), total, "every report filed exactly one record");
    assert_eq!(
        admin.results_for_key(project, &key).unwrap().len(),
        total,
        "zero double-reported tasks"
    );
    // The drop schedule is deterministic: request 1 sails through, and
    // every call after it needs exactly one retry (2 requests per call).
    assert_eq!(flaky.requests_sent(), 2 * calls - 1);
    let summary = admin.queue_summary().unwrap();
    assert_eq!((summary.queued, summary.running, summary.finished), (0, 0, total));
}

/// The generic worker pool drains a remote platform through a single
/// shared client — the same code path as the in-process pool tests.
#[test]
fn worker_pool_runs_unchanged_against_a_wire_client() {
    let server = Arc::new(SqalpelServer::new());
    let wire = start_wire(&server);

    let admin = WireClient::builder(wire.local_addr()).retry(fast_retry()).build();
    let owner = admin.register_user("mlk", "mlk@cwi.nl").unwrap();
    let project = admin
        .create_project(owner, "pool-over-wire", "generic pool", Visibility::Public)
        .unwrap();
    admin
        .set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
        .unwrap();
    let exp = admin
        .add_experiment(project, owner, "nation", SQL, None, 1000, 100)
        .unwrap();
    admin.seed_pool(project, exp, owner, 3, 7).unwrap();
    let total = admin.enqueue_experiment(project, exp, owner).unwrap();

    let pool_client = WireClient::builder(wire.local_addr())
        .retry(fast_retry())
        .inject_drop_every(9)
        .build();
    let workers = (0..4)
        .map(|_| Worker::new(admin.issue_key(owner).unwrap(), driver()))
        .collect();
    let report = run_worker_pool(&pool_client, workers);
    assert_eq!(report.completed(), total);
    assert_eq!(report.rejected(), 0);

    let summary = admin.queue_summary().unwrap();
    assert_eq!((summary.queued, summary.running), (0, 0));
    assert_eq!(summary.terminal(), total);
}

/// `GET /v1/metrics` after a contribute run: the snapshot carries the
/// wire/server instrumentation, every counter and histogram is monotone
/// across requests, and an injected-drop retry storm never
/// double-counts an accepted report — retried reports land in the
/// `duplicate` counter, not in `accepted`.
#[test]
fn metrics_endpoint_is_monotone_and_drop_safe_over_the_wire() {
    let server = Arc::new(SqalpelServer::new());
    let wire = start_wire(&server);

    let admin = WireClient::builder(wire.local_addr()).retry(fast_retry()).build();
    let owner = admin.register_user("mlk", "mlk@cwi.nl").unwrap();
    let project = admin
        .create_project(owner, "metered", "metrics over wire", Visibility::Public)
        .unwrap();
    admin
        .set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
        .unwrap();
    let exp = admin
        .add_experiment(project, owner, "nation", SQL, None, 1000, 100)
        .unwrap();
    admin.seed_pool(project, exp, owner, 1, 5).unwrap();
    let total = admin.enqueue_experiment(project, exp, owner).unwrap();

    // Drain with a flaky client: every second connection drops after the
    // request is written, so the server processes it, the client never
    // hears back and retries — claims get re-handed, reports go through
    // the idempotent duplicate path.
    let key = admin.issue_key(owner).unwrap();
    let flaky = WireClient::builder(wire.local_addr())
        .retry(fast_retry())
        .inject_drop_every(2)
        .build();
    let d = driver();
    while let Some(task) = flaky.request_task(&key, DBMS, HOST).unwrap() {
        flaky.report_result(&key, task.id, &d.run(&task.sql)).unwrap();
    }

    let snap = flaky.metrics().unwrap();

    // The retry storm reached the server, but every task was accepted
    // exactly once; the replays are all accounted for as duplicates.
    assert_eq!(
        snap.counter("server.report_result.accepted"),
        Some(total as u64),
        "accepted reports must equal tasks despite retries"
    );
    assert!(snap.counter("server.report_result.duplicate").unwrap_or(0) >= 1);
    let claims = snap.counter("server.request_task").unwrap();
    assert!(claims > total as u64, "dropped claims were replayed");

    // Wire-level instrumentation is present for the routes we exercised,
    // with latency histograms to match.
    assert!(snap.counter("wire.requests").unwrap() >= claims);
    assert!(snap.counter("wire.route.POST /v1/task/request").is_some());
    assert!(snap.counter("wire.route.POST /v1/result/report").is_some());
    assert!(snap.counter("wire.status.2xx").is_some());
    let lat = snap.histogram("wire.latency.POST /v1/result/report").unwrap();
    assert!(lat.count >= total as u64 && lat.sum > 0);
    assert!(snap.histogram("server.report_result_nanos").unwrap().count >= total as u64);

    // Monotonicity: more traffic can only grow every counter and
    // histogram — and must grow the request counter.
    admin.queue_summary().unwrap();
    let later = flaky.metrics().unwrap();
    for (name, n) in &snap.counters {
        assert!(
            later.counter(name).unwrap_or(0) >= *n,
            "counter {name} went backwards"
        );
    }
    for (name, h) in &snap.histograms {
        let grown = later.histogram(name).unwrap();
        assert!(grown.count >= h.count, "histogram {name} lost samples");
        assert!(grown.sum >= h.sum, "histogram {name} lost time");
    }
    assert!(later.counter("wire.requests").unwrap() > snap.counter("wire.requests").unwrap());
}

/// Every error family crosses the wire as its exact typed variant, and
/// the moderation/catalog surface works end to end remotely.
#[test]
fn typed_errors_and_moderation_over_the_wire() {
    let server = Arc::new(SqalpelServer::new());
    let wire = start_wire(&server);
    let client = WireClient::builder(wire.local_addr()).retry(fast_retry()).build();

    // invalid → 400 → PlatformError::Invalid
    assert!(matches!(
        client.register_user("", "bad"),
        Err(PlatformError::Invalid(_))
    ));
    // unknown_project → 404 → UnknownProject, id preserved
    assert_eq!(
        client.take_down(ProjectId(99)),
        Err(PlatformError::UnknownProject(99))
    );
    // access_denied → 403
    assert!(matches!(
        client.request_task(&ContributorKey("ck_bogus".into()), DBMS, HOST),
        Err(PlatformError::AccessDenied(_))
    ));
    // unknown_user behind a valid route → UnknownUser
    assert_eq!(
        client.issue_key(UserId(42)),
        Err(PlatformError::UnknownUser(42))
    );

    let owner = client.register_user("mlk", "mlk@cwi.nl").unwrap();
    let project = client
        .create_project(owner, "modding", "moderation over wire", Visibility::Public)
        .unwrap();
    client
        .set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
        .unwrap();
    client.comment(project, owner, "first!").unwrap();

    // grammar → 422: source text is parsed server-side.
    assert!(matches!(
        client.add_experiment(project, owner, "bad", SQL, Some("% not a grammar %"), 10, 10),
        Err(PlatformError::Grammar(_))
    ));
    // A valid grammar travels as text and parses remotely.
    let exp = client
        .add_experiment(
            project,
            owner,
            "fig1",
            SQL,
            Some(sqalpel_grammar::FIG1_GRAMMAR),
            1000,
            100,
        )
        .unwrap();

    // Catalog round trip: the bootstrap labels are served, duplicates are
    // refused remotely with the same typed error as locally.
    let labels = client.dbms_labels().unwrap();
    assert!(labels.contains(&DBMS.to_string()));
    assert_eq!(
        client.role_of(project, owner).unwrap(),
        sqalpel_core::Role::Owner
    );

    // One contributed result, then moderation + reap/requeue remotely.
    client.seed_pool(project, exp, owner, 0, 1).unwrap();
    let total = client.enqueue_experiment(project, exp, owner).unwrap();
    assert!(total >= 1);
    let key = client.issue_key(owner).unwrap();
    let task = client.request_task(&key, DBMS, HOST).unwrap().unwrap();

    // The running task gets reaped over the wire, requeued over the wire,
    // and the stale report is refused with a typed error.
    let reaped = client.reap_stuck(Duration::ZERO).unwrap();
    assert_eq!(reaped, vec![task.id]);
    client.requeue(task.id).unwrap();
    let outcome = driver().run(&task.sql);
    assert!(matches!(
        client.report_result(&key, task.id, &outcome),
        Err(PlatformError::Invalid(_))
    ));

    // Re-claim properly and finish.
    let again = client.request_task(&key, DBMS, HOST).unwrap().unwrap();
    assert_eq!(again.id, task.id);
    let idx = client
        .report_result(&key, again.id, &driver().run(&again.sql))
        .unwrap();

    // Moderation: hide the record, readers lose it, the owner still sees
    // it, and CSV export honors the viewer.
    client.hide_result(project, owner, idx, true).unwrap();
    let reader = client.register_user("reader", "r@x.io").unwrap();
    let csv = client.export_csv(project, reader).unwrap();
    assert_eq!(csv.lines().count(), 1, "header only for the reader");
    let records = client.results_for_key(project, &key).unwrap();
    assert_eq!(records.len(), 1, "the owner's key still sees hidden rows");

    // publication → 451 → Publication after a takedown.
    client.take_down(project).unwrap();
    assert!(matches!(
        client.results_for_key(project, &key),
        Err(PlatformError::Publication(_))
    ));
}
