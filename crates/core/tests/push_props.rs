//! Property and e2e tests for server-push notifications.
//!
//! The delivery contract under test: every enqueue that adds work while
//! a subscription is parked yields **exactly one** `QueueReady` per live
//! subscription — never to closed or never-subscribed connections — and
//! that contract holds under arbitrary interleavings with claims and
//! reports. On top of the hub, the worker-pool e2e proves the point of
//! it all: push-subscribed workers never empty-poll (`queue.empty_polls`
//! stays flat at zero) and drain late work no slower than pollers.

use proptest::prelude::*;
use sqalpel_core::{
    AdmissionConfig, ContributorKey, DriverConfig, ExperimentDriver, LoadAvg, MockConnector,
    Notification, PlatformError, PollPolicy, ProjectId, PushHub, RunOutcome, SqalpelServer,
    Visibility, Worker,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

const DBMS: &str = "rowstore-2.0";
const HOST: &str = "bench-server";
const SQL: &str = "select count(*) from nation where n_name = 'BRAZIL'";

/// Deterministically expand a seed into op tuples (the vendored
/// proptest has no collection strategies; same idiom as metrics_props).
fn ops_from_seed(seed: u64, len: usize) -> Vec<(u8, u8)> {
    let mut x = seed | 1;
    let mut next = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (x >> 33) as u8
    };
    (0..len).map(|_| (next(), next())).collect()
}

fn fake_outcome() -> RunOutcome {
    RunOutcome {
        times_ms: vec![1.0],
        rows: 1,
        error: None,
        load_before: LoadAvg::default(),
        load_after: LoadAvg::default(),
        extras: serde_json::Value::Null,
        fingerprint: None,
        profile: None,
    }
}

fn driver() -> ExperimentDriver<MockConnector> {
    ExperimentDriver::new(
        MockConnector {
            label: DBMS.into(),
            fail_pattern: None,
            spin: 0,
            rows: 1,
        },
        DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 1").unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The hub against a reference model under arbitrary interleavings
    /// of subscribe / unsubscribe / notify / drain: every publish lands
    /// exactly once on every subscription live at publish time, closed
    /// subscriptions receive (and drain) nothing, and re-subscribing
    /// starts from a clean slate.
    #[test]
    fn hub_fanout_matches_reference_model(seed in any::<u64>(), len in 1usize..150) {
        let ops = ops_from_seed(seed, len);
        let hub = PushHub::new();
        let mut live: Vec<u64> = Vec::new();
        let mut closed: Vec<u64> = Vec::new();
        let mut expected: HashMap<u64, Vec<Notification>> = HashMap::new();
        let mut published = 0u64;
        for (action, x) in ops {
            match action % 5 {
                0 => {
                    let id = hub.subscribe(&format!("ck_{}", x % 3));
                    prop_assert!(!expected.contains_key(&id), "ids are never reused");
                    live.push(id);
                    expected.insert(id, Vec::new());
                }
                1 => {
                    if !live.is_empty() {
                        let id = live.remove(x as usize % live.len());
                        hub.unsubscribe(id);
                        expected.remove(&id);
                        closed.push(id);
                    }
                }
                2 | 3 => {
                    published += 1;
                    let n = Notification::QueueReady { project: ProjectId(published) };
                    hub.notify(&n);
                    for id in &live {
                        expected.get_mut(id).unwrap().push(n.clone());
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let id = live[x as usize % live.len()];
                        prop_assert_eq!(
                            hub.drain(id),
                            std::mem::take(expected.get_mut(&id).unwrap())
                        );
                    }
                }
            }
            // A closed subscription never accumulates anything.
            for id in &closed {
                prop_assert_eq!(hub.drain(*id), Vec::new());
            }
            prop_assert_eq!(hub.subscriber_count(), live.len());
        }
        // Final drain: exactly what the model says is pending, in order.
        for id in &live {
            prop_assert_eq!(&hub.drain(*id), expected.get(id).unwrap());
        }
    }

    /// The full server: enqueues and requeues interleaved with claims,
    /// reports and subscription churn. Every enqueue that added tasks
    /// must deliver exactly one `QueueReady` to each subscription parked
    /// at that moment; claims and reports deliver none (reports may add
    /// `ExperimentFinished`, counted separately and never attributed to
    /// closed subscriptions).
    #[test]
    fn enqueues_notify_each_parked_subscription_exactly_once(
        seed in any::<u64>(),
        len in 1usize..60,
    ) {
        let ops = ops_from_seed(seed, len);
        let server = SqalpelServer::with_admission(AdmissionConfig {
            max_inflight_per_user: 1_000,
            max_queued_per_project: 100_000,
        });
        let owner = server.register_user("owner", "o@x.test").unwrap();
        let project = server
            .create_project(owner, "push", "push props", Visibility::Public)
            .unwrap();
        server
            .set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
            .unwrap();
        let exp = server
            .add_experiment(project, owner, "nation", SQL, None, 1_000, 100)
            .unwrap();
        server.seed_pool(project, exp, owner, 3, 7).unwrap();
        let key = server.issue_key(owner).unwrap();
        let hub = server.push_hub();

        // Reference model: per live subscription, how many QueueReady
        // copies it must have been sent.
        let mut live: Vec<u64> = Vec::new();
        let mut sent_ready: HashMap<u64, u64> = HashMap::new();
        let mut claimed: Vec<sqalpel_core::Task> = Vec::new();
        for (action, x) in ops {
            match action % 8 {
                0 | 1 => {
                    let id = hub.subscribe(&format!("sub_{}", x % 4));
                    live.push(id);
                    sent_ready.insert(id, 0);
                }
                2 => {
                    if !live.is_empty() {
                        let id = live.remove(x as usize % live.len());
                        hub.unsubscribe(id);
                        sent_ready.remove(&id);
                    }
                }
                // Enqueue: iff it added tasks (re-enqueueing an already
                // fully queued pool adds none and must stay silent),
                // every parked subscription gets exactly one QueueReady.
                3 | 4 => {
                    let n = server.enqueue_experiment(project, exp, owner).unwrap();
                    if n > 0 {
                        for id in &live {
                            *sent_ready.get_mut(id).unwrap() += 1;
                        }
                    }
                }
                // Claim: delivers nothing.
                5 => {
                    if let Ok(Some(t)) = server.request_task(&key, DBMS, HOST) {
                        claimed.push(t);
                    }
                }
                // Report: may add ExperimentFinished, never QueueReady.
                6 => {
                    if let Some(t) = claimed.pop() {
                        server.report_result(&key, t.id, fake_outcome()).unwrap();
                    }
                }
                // Requeue of a claimed task: also a QueueReady to every
                // parked subscription (and the task goes back to Queued,
                // releasing our claim).
                _ => {
                    if let Some(t) = claimed.pop() {
                        match server.requeue(t.id) {
                            Ok(()) => {
                                for id in &live {
                                    *sent_ready.get_mut(id).unwrap() += 1;
                                }
                            }
                            Err(PlatformError::Invalid(_)) => {}
                            Err(e) => panic!("requeue: {e}"),
                        }
                    }
                }
            }
        }
        for id in &live {
            let got = hub.drain(*id);
            let ready = got
                .iter()
                .filter(|n| matches!(n, Notification::QueueReady { .. }))
                .count() as u64;
            prop_assert_eq!(
                ready,
                sent_ready[id],
                "subscription {} QueueReady count diverged",
                id
            );
            // Whatever else arrived can only be ExperimentFinished.
            for n in got {
                prop_assert!(matches!(
                    n,
                    Notification::QueueReady { .. } | Notification::ExperimentFinished { .. }
                ));
            }
        }
    }
}

fn experiment_on(server: &SqalpelServer) -> usize {
    let owner = server.register_user("owner", "o@x.test").unwrap();
    let project = server
        .create_project(owner, "e2e", "push e2e", Visibility::Public)
        .unwrap();
    server
        .set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
        .unwrap();
    let exp = server
        .add_experiment(project, owner, "nation", SQL, None, 1_000, 100)
        .unwrap();
    server.seed_pool(project, exp, owner, 6, 42).unwrap();
    server.enqueue_experiment(project, exp, owner).unwrap()
}

fn short_policy(push: bool) -> PollPolicy {
    PollPolicy {
        max_empty_polls: 3,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(100),
        jitter: 0.5,
        push,
    }
}

/// The e2e point of server push: workers subscribed before their first
/// poll never empty-poll — `queue.empty_polls` stays flat at zero while
/// they drain work enqueued *after* they parked — and their misses show
/// up as `queue.parked_polls` instead.
#[test]
fn pushed_workers_never_empty_poll() {
    use sqalpel_core::run_worker_pool_with;
    let server = SqalpelServer::new();
    let owner = server.register_user("owner", "o@x.test").unwrap();
    let project = server
        .create_project(owner, "late", "late work", Visibility::Public)
        .unwrap();
    server
        .set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
        .unwrap();
    let exp = server
        .add_experiment(project, owner, "nation", SQL, None, 1_000, 100)
        .unwrap();
    server.seed_pool(project, exp, owner, 6, 42).unwrap();
    let keys: Vec<ContributorKey> = (0..3).map(|_| server.issue_key(owner).unwrap()).collect();

    let total = std::thread::scope(|scope| {
        let enqueue = scope.spawn(|| {
            // Enqueue only after the workers have parked.
            std::thread::sleep(Duration::from_millis(30));
            server.enqueue_experiment(project, exp, owner).unwrap()
        });
        let workers = keys
            .iter()
            .map(|k| Worker::new(k.clone(), driver()))
            .collect();
        let report = run_worker_pool_with(&server, workers, short_policy(true));
        let total = enqueue.join().unwrap();
        assert_eq!(report.completed(), total, "late work fully drained over push");
        total
    });

    let m = server.metrics();
    assert_eq!(
        m.counter("queue.empty_polls"),
        0,
        "push-subscribed workers must never count as empty-pollers"
    );
    assert!(
        m.counter("queue.parked_polls") > 0,
        "their misses land on queue.parked_polls instead"
    );
    assert!(m.counter("pool.parks") > 0, "workers actually parked");
    assert_eq!(m.counter("pool.backoffs"), 0, "no jittered backoff sleeps on the push path");
    let _ = total;
}

/// Push must not be slower than polling at draining the same workload —
/// the subscribed pool's wall clock stays within a generous factor of
/// the polling pool's (generous because CI timing is noisy; the real
/// claim is "no pathological regression", not a microbenchmark).
#[test]
fn pushed_drain_latency_no_worse_than_polling() {
    use sqalpel_core::run_worker_pool_with;
    let run = |push: bool| -> Duration {
        let server = SqalpelServer::new();
        let total = experiment_on(&server);
        let owner = sqalpel_core::UserId(1);
        let keys: Vec<ContributorKey> =
            (0..3).map(|_| server.issue_key(owner).unwrap()).collect();
        let workers = keys
            .iter()
            .map(|k| Worker::new(k.clone(), driver()))
            .collect();
        let started = Instant::now();
        let report = run_worker_pool_with(&server, workers, short_policy(push));
        assert_eq!(report.completed(), total);
        started.elapsed()
    };
    let polled = run(false);
    let pushed = run(true);
    assert!(
        pushed <= polled * 4 + Duration::from_secs(1),
        "pushed drain ({pushed:?}) pathologically slower than polling ({polled:?})"
    );
}
