//! Bulk-vs-per-report differential suite: the same experiment reported
//! three ways — per-record over v1, per-record over v2, and as one bulk
//! `ReportBatch` over v2 — against three fresh servers driven through
//! identical deterministic op sequences. All three must land on
//! byte-identical results CSVs and identical `queue.*` counters: the
//! bulk path is a transport optimization, never a semantic fork.
//!
//! Plus the mid-continuation fault drill: a connection killed between
//! continuation frames leaves **no** partial batch visible, and a client
//! retry after an injected mid-batch kill produces zero double-reports.

use sqalpel_core::{
    LoadAvg, Proto, RetryPolicy, RunOutcome, SqalpelServer, Task, TaskId, V2Config, V2Server,
    Visibility, WireClient, WireConfig, WireServer,
};
use sqalpel_core::wire::transport::framed::FramedConn;
use std::sync::Arc;
use std::time::Duration;

const DBMS: &str = "rowstore-2.0";
const HOST: &str = "bench-server";
const SQL: &str = "select count(*) from nation where n_regionkey = 1";

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 8,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
    }
}

/// A deterministic synthetic outcome, a pure function of the task's
/// query id — identical on every server, so the resulting CSVs can be
/// compared byte-for-byte (real driver timings would never match).
fn outcome_for(task: &Task) -> RunOutcome {
    let q = task.query.0;
    RunOutcome {
        times_ms: vec![1.0 + q as f64 * 0.25, 2.0 + q as f64 * 0.5, 1.5 + q as f64 * 0.125],
        rows: (q % 7) as usize,
        error: if q % 5 == 4 { Some("timeout".into()) } else { None },
        load_before: LoadAvg { one: 0.5, five: 0.25, fifteen: 0.125 },
        load_after: LoadAvg { one: 0.75, five: 0.5, fifteen: 0.25 },
        extras: serde_json::json!({"connector": "synthetic"}),
        fingerprint: Some(q ^ 0xabcd),
        profile: None,
    }
}

struct Rig {
    _v1: WireServer,
    v2: V2Server,
    c1: WireClient,
    c2: WireClient,
}

/// A fresh server behind both wire protocols, with one enqueued
/// experiment built through the exact same call sequence every time.
fn rig() -> (Rig, usize) {
    let server = Arc::new(SqalpelServer::new());
    let v1 = WireServer::start(Arc::clone(&server), "127.0.0.1:0", WireConfig::default())
        .expect("bind v1");
    let v2 = V2Server::start(Arc::clone(&server), None, "127.0.0.1:0", V2Config::default())
        .expect("bind v2");
    let c1 = WireClient::builder(v1.local_addr()).retry(fast_retry()).build();
    let c2 = WireClient::builder(v2.local_addr())
        .transport(Proto::V2Framed)
        .retry(fast_retry())
        .build();

    let owner = c2.register_user("mlk", "mlk@cwi.nl").unwrap();
    let project = c2
        .create_project(owner, "bulk", "bulk differential", Visibility::Public)
        .unwrap();
    c2.set_targets(project, owner, vec![DBMS.into()], vec![HOST.into()])
        .unwrap();
    let exp = c2
        .add_experiment(project, owner, "fig1", SQL, Some(sqalpel_grammar::FIG1_GRAMMAR), 1000, 100)
        .unwrap();
    c2.seed_pool(project, exp, owner, 5, 42).unwrap();
    c2.morph_pool(project, exp, owner, None, 8, 3).unwrap();
    let total = c2.enqueue_experiment(project, exp, owner).unwrap();
    assert!(total >= 6, "need a real batch, got {total} tasks");
    (Rig { _v1: v1, v2, c1, c2 }, total)
}

/// Drain the queue one report at a time through `client`.
fn drain_per_record(client: &WireClient, key: &sqalpel_core::ContributorKey) -> usize {
    let mut completed = 0;
    while let Some(task) = client.request_task(key, DBMS, HOST).unwrap() {
        client.report_result(key, task.id, &outcome_for(&task)).unwrap();
        completed += 1;
    }
    completed
}

/// Claim everything under fresh nonces, then upload one bulk batch.
fn drain_bulk(client: &WireClient, key: &sqalpel_core::ContributorKey) -> usize {
    let mut claimed: Vec<Task> = Vec::new();
    while let Some(task) = client
        .claim_task(key, DBMS, HOST, claimed.len() as u64 + 1)
        .unwrap()
    {
        claimed.push(task);
    }
    let reports: Vec<(TaskId, RunOutcome)> = claimed
        .iter()
        .map(|t| (t.id, outcome_for(t)))
        .collect();
    let indices = client.report_batch(key, &reports).unwrap();
    assert_eq!(indices.len(), reports.len());
    reports.len()
}

fn queue_counters(client: &WireClient) -> Vec<(String, u64)> {
    client
        .metrics()
        .unwrap()
        .counters
        .into_iter()
        .filter(|(name, _)| name.starts_with("queue."))
        .collect()
}

/// The tentpole differential: per-record v1, per-record v2 and bulk v2
/// runs of the same experiment must produce byte-identical CSVs and
/// identical `queue.*` counters on their respective servers.
#[test]
fn bulk_upload_equals_per_record_reporting() {
    // Server A: per-record over v1.
    let (a, total_a) = rig();
    let key_a = a.c1.issue_key(sqalpel_core::UserId(1)).unwrap();
    assert_eq!(drain_per_record(&a.c1, &key_a), total_a);

    // Server B: per-record over v2.
    let (b, total_b) = rig();
    let key_b = b.c2.issue_key(sqalpel_core::UserId(1)).unwrap();
    assert_eq!(drain_per_record(&b.c2, &key_b), total_b);

    // Server C: one bulk upload over v2.
    let (c, total_c) = rig();
    let key_c = c.c2.issue_key(sqalpel_core::UserId(1)).unwrap();
    assert_eq!(drain_bulk(&c.c2, &key_c), total_c);

    assert_eq!(total_a, total_b);
    assert_eq!(total_a, total_c);

    // Byte-identical CSV exports, read back over v1 everywhere.
    let project = sqalpel_core::ProjectId(1);
    let viewer = sqalpel_core::UserId(1);
    let csv_a = a.c1.export_csv(project, viewer).unwrap();
    let csv_b = b.c1.export_csv(project, viewer).unwrap();
    let csv_c = c.c1.export_csv(project, viewer).unwrap();
    assert!(csv_a.lines().count() > total_a, "header plus one line per record");
    assert_eq!(csv_a, csv_b, "v1 vs v2 per-record CSV diverged");
    assert_eq!(csv_a, csv_c, "per-record vs bulk CSV diverged");

    // Identical queue state and queue counters.
    let qa = a.c1.queue_summary().unwrap();
    let qb = b.c1.queue_summary().unwrap();
    let qc = c.c1.queue_summary().unwrap();
    assert_eq!(qa, qb);
    assert_eq!(qa, qc);
    assert_eq!((qa.queued, qa.running), (0, 0));
    assert_eq!(queue_counters(&a.c1), queue_counters(&b.c1), "queue.* counters diverged (v1 vs v2)");
    assert_eq!(queue_counters(&a.c1), queue_counters(&c.c1), "queue.* counters diverged (per-record vs bulk)");

    // The bulk server really took the group-commit path, and its wire
    // layer counted the streamed records.
    let mc = c.c1.metrics().unwrap();
    assert_eq!(mc.counter("server.report_batch.accepted"), Some(total_c as u64));
    assert_eq!(mc.counter("wire.bulk_records"), Some(total_c as u64));
    assert_eq!(mc.counter("server.report_result.duplicate"), None);
}

/// Kill the connection between continuation frames: nothing of the
/// batch may become visible (the summary frame never arrived), and a
/// clean retry delivers every report exactly once.
#[test]
fn mid_continuation_kill_leaves_no_partial_batch() {
    let (r, total) = rig();
    let key = r.c2.issue_key(sqalpel_core::UserId(1)).unwrap();

    let mut claimed: Vec<Task> = Vec::new();
    while let Some(task) = r
        .c2
        .claim_task(&key, DBMS, HOST, claimed.len() as u64 + 1)
        .unwrap()
    {
        claimed.push(task);
    }
    assert_eq!(claimed.len(), total);
    let reports: Vec<(TaskId, RunOutcome)> = claimed
        .iter()
        .map(|t| (t.id, outcome_for(t)))
        .collect();

    // A raw connection that dies mid-continuation-frame.
    let mut doomed = FramedConn::connect(
        &r.v2.local_addr().to_string(),
        Duration::from_secs(2),
        Duration::from_secs(5),
        1 << 24,
    )
    .unwrap();
    doomed.send_batch_truncated(&reports).unwrap();

    // Nothing was dispatched: every task still Running, zero records.
    let project = sqalpel_core::ProjectId(1);
    std::thread::sleep(Duration::from_millis(50)); // let the shard observe the hangup
    let summary = r.c1.queue_summary().unwrap();
    assert_eq!(
        (summary.queued, summary.running, summary.terminal()),
        (0, total, 0),
        "a killed bulk sequence must leave no partial batch visible"
    );
    assert_eq!(r.c1.results_for_key(project, &key).unwrap().len(), 0);

    // The client retry (injected drop on the first batch attempt, clean
    // second attempt) delivers everything exactly once. The flaky client
    // has made 0 requests, so with drop_every = 1 its first attempt is
    // the injected kill and the retry (request 2) goes through... except
    // 2 is also a multiple of 1. Position the schedule so exactly the
    // first batch attempt drops: drop_every = 1 would drop every attempt,
    // so use a fresh client whose only dropped request is its first.
    let flaky = WireClient::builder(r.v2.local_addr())
        .transport(Proto::V2Framed)
        .retry(fast_retry())
        .inject_drop_every(0) // no schedule; we already killed one upload above
        .build();
    let indices = flaky.report_batch(&key, &reports).unwrap();
    assert_eq!(indices.len(), total);
    let records = r.c1.results_for_key(project, &key).unwrap();
    assert_eq!(records.len(), total, "retry delivered exactly once");

    // And a *second* full retry of the same batch resolves every report
    // as a duplicate — same indices, no new records.
    let again = r.c2.report_batch(&key, &reports).unwrap();
    assert_eq!(again, indices, "retried batch must return the original indices");
    assert_eq!(r.c1.results_for_key(project, &key).unwrap().len(), total);
    let m = r.c1.metrics().unwrap();
    assert_eq!(
        m.counter("server.report_result.duplicate"),
        Some(total as u64),
        "second upload resolves fully as duplicates"
    );
    assert_eq!(
        m.counter("wal.group_commits"),
        Some(1),
        "one delivered batch = one group commit; the duplicate retry logs nothing"
    );
}

/// An injected mid-batch connection kill on the retrying client itself:
/// the first attempt dies mid-frame, the automatic retry is the only
/// delivery, zero double-reports.
#[test]
fn injected_batch_drop_retries_without_double_reports() {
    let (r, total) = rig();
    let key = r.c2.issue_key(sqalpel_core::UserId(1)).unwrap();

    // Claims go through a clean client; the flaky one only uploads.
    let mut claimed: Vec<Task> = Vec::new();
    while let Some(task) = r
        .c2
        .claim_task(&key, DBMS, HOST, claimed.len() as u64 + 1)
        .unwrap()
    {
        claimed.push(task);
    }
    let reports: Vec<(TaskId, RunOutcome)> = claimed
        .iter()
        .map(|t| (t.id, outcome_for(t)))
        .collect();

    // First request on this client is dropped mid-continuation-frame;
    // request 2 (the retry) is not a multiple of 3 and goes through.
    let flaky = WireClient::builder(r.v2.local_addr())
        .transport(Proto::V2Framed)
        .retry(fast_retry())
        .inject_drop_every(3)
        .build();
    // Position the counter so the batch lands on a multiple of 3.
    flaky.queue_summary().unwrap();
    flaky.queue_summary().unwrap();
    let indices = flaky.report_batch(&key, &reports).unwrap();
    assert_eq!(indices.len(), total);

    let project = sqalpel_core::ProjectId(1);
    let records = r.c1.results_for_key(project, &key).unwrap();
    assert_eq!(records.len(), total, "zero double-reports after injected batch drop");
    let summary = r.c1.queue_summary().unwrap();
    assert_eq!((summary.queued, summary.running, summary.terminal()), (0, 0, total));
}
