//! Multi-worker experiment dispatch.
//!
//! The paper's crowdsourced platform serves many contributors at once,
//! each running the driver loop — request a task, execute it, report the
//! result — against their own target system. This module packages that
//! loop as a reusable pool: scoped worker threads, each owning a
//! [`Connector`]-backed [`ExperimentDriver`] and a [`ContributorKey`],
//! drain the server's queue concurrently until no work is left for their
//! `(dbms, host)` target.
//!
//! The pool is honest about contention: if the moderator reaps a
//! worker's task as stuck and requeues it while the worker is still
//! executing, the eventual report is **rejected** by the server (the
//! re-claimed run owns the result now). Workers count the rejection and
//! move on — the queue's at-most-one-result-per-run invariant holds no
//! matter how the pool races.

use crate::driver::{Connector, ExperimentDriver};
use crate::error::PlatformError;
use crate::server::Platform;
use crate::user::ContributorKey;
use std::time::{Duration, Instant};

/// How a worker waits when the platform hands it nothing.
///
/// An empty poll no longer means the study is over — with per-project
/// sharding, queues refill as moderators enqueue and the reaper
/// requeues, and admission control can throttle a worker temporarily.
/// Instead of hammering `request_task` in a tight loop, a worker backs
/// off exponentially from `base` up to `cap`, with each sleep scaled by
/// a random factor in `[1 - jitter, 1]` so a fleet of workers does not
/// wake in lockstep. After `max_empty_polls` consecutive empty polls the
/// worker exits. The default budget is `0`: drain and terminate, the
/// original pool semantics.
#[derive(Debug, Clone)]
pub struct PollPolicy {
    /// Consecutive empty polls tolerated before the worker exits.
    pub max_empty_polls: u32,
    /// First backoff sleep.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`.
    pub jitter: f64,
    /// Park on server-push notifications instead of backoff sleeps. Each
    /// worker opens a [`crate::Platform::subscribe_push`] channel and
    /// blocks on it (up to `cap` per wait) whenever the queue hands it
    /// nothing; a notification re-polls immediately without spending the
    /// empty-poll budget. Falls back to the jittered backoff when the
    /// platform offers no push channel.
    pub push: bool,
}

impl Default for PollPolicy {
    fn default() -> Self {
        PollPolicy {
            max_empty_polls: 0,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(2),
            jitter: 0.5,
            push: false,
        }
    }
}

impl PollPolicy {
    /// A polling policy that retries `max_empty_polls` times before
    /// giving up, with the default backoff curve.
    pub fn polling(max_empty_polls: u32) -> Self {
        PollPolicy {
            max_empty_polls,
            ..Default::default()
        }
    }

    /// [`PollPolicy::polling`], but parked on server push: the budget is
    /// only spent on waits that time out with no notification.
    pub fn pushed(max_empty_polls: u32) -> Self {
        PollPolicy {
            max_empty_polls,
            push: true,
            ..Default::default()
        }
    }

    /// The jittered sleep before retry number `attempt` (0-based). `rng`
    /// is a caller-owned xorshift64* state, advanced per draw.
    pub fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX));
        let capped = exp.min(self.cap);
        let mut x = *rng | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *rng = x;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 - self.jitter * unit;
        Duration::from_nanos((capped.as_nanos() as f64 * scale) as u64)
    }
}

/// A per-worker jitter seed: worker index mixed with the clock, so
/// workers started together still draw different backoff schedules.
fn jitter_seed(idx: usize) -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0);
    (idx as u64 + 1)
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(nanos) | 1
}

/// One pool worker: a contributor identity plus the driver (owning its
/// connector) that executes tasks on that contributor's behalf.
pub struct Worker<C: Connector> {
    pub key: ContributorKey,
    pub driver: ExperimentDriver<C>,
}

impl<C: Connector> Worker<C> {
    pub fn new(key: ContributorKey, driver: ExperimentDriver<C>) -> Self {
        Worker { key, driver }
    }
}

/// Per-worker statistics from one pool run.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Index of the worker in the submitted pool.
    pub worker: usize,
    /// Tasks executed and successfully reported.
    pub completed: usize,
    /// Reports the server refused — the task was reaped as stuck and
    /// reassigned while this worker was still executing it.
    pub rejected: usize,
    /// Wall-clock from the worker's first request to its last report.
    pub wall: Duration,
}

/// Outcome of draining the queue with a worker pool.
#[derive(Debug, Clone)]
pub struct PoolReport {
    pub workers: Vec<WorkerReport>,
    /// Wall-clock of the whole drain.
    pub wall: Duration,
}

impl PoolReport {
    /// Tasks executed and successfully reported across all workers.
    pub fn completed(&self) -> usize {
        self.workers.iter().map(|w| w.completed).sum()
    }

    /// Reports the server refused across all workers.
    pub fn rejected(&self) -> usize {
        self.workers.iter().map(|w| w.rejected).sum()
    }
}

/// Drain a platform's queue with a pool of scoped worker threads.
///
/// Each worker loops request → execute → report against the `(dbms,
/// host)` named by its driver config until the platform hands it no more
/// work. Request errors (revoked key, taken-down project) stop that
/// worker; rejected reports are counted and skipped. Returns per-worker
/// and overall wall-clock so callers can measure dispatch speedup.
///
/// The pool is generic over [`Platform`], so the same loop drains an
/// in-process [`crate::SqalpelServer`] or a remote server through a
/// [`crate::wire::WireClient`] — the paper's actual deployment shape.
pub fn run_worker_pool<C: Connector, P: Platform + ?Sized>(
    server: &P,
    workers: Vec<Worker<C>>,
) -> PoolReport {
    run_worker_pool_with(server, workers, PollPolicy::default())
}

/// [`run_worker_pool`] with an explicit empty-queue [`PollPolicy`]:
/// empty polls (and `Throttled` rejections from admission control) back
/// off with jittered exponential sleeps and retry, up to the policy's
/// budget of consecutive empty polls.
pub fn run_worker_pool_with<C: Connector, P: Platform + ?Sized>(
    server: &P,
    workers: Vec<Worker<C>>,
    policy: PollPolicy,
) -> PoolReport {
    let start = Instant::now();
    let policy = &policy;
    let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(idx, w)| {
                scope.spawn(move || {
                    let began = Instant::now();
                    let mut completed = 0usize;
                    let mut rejected = 0usize;
                    let mut empty_polls = 0u32;
                    let mut rng = jitter_seed(idx);
                    let dbms = w.driver.config().dbms_label.clone();
                    let host = w.driver.config().host.clone();
                    // Subscribe before the first poll so no enqueue can
                    // slip between "queue looked empty" and "parked".
                    let mut waiter = if policy.push {
                        server.subscribe_push(&w.key)
                    } else {
                        None
                    };
                    loop {
                        let task = match server.request_task(&w.key, &dbms, &host) {
                            Ok(Some(t)) => {
                                empty_polls = 0;
                                t
                            }
                            Ok(None) | Err(PlatformError::Throttled(_)) => {
                                if empty_polls >= policy.max_empty_polls {
                                    break;
                                }
                                match waiter.as_mut() {
                                    Some(waiter) => {
                                        if let Some(metrics) = server.metrics() {
                                            metrics.incr("pool.parks");
                                        }
                                        match waiter.wait(policy.cap) {
                                            // Woken: re-poll right away;
                                            // a raced hand-out just parks
                                            // again, budget untouched.
                                            Ok(Some(_)) => {}
                                            // Timed out or the channel
                                            // broke: spend budget like an
                                            // empty poll.
                                            Ok(None) | Err(_) => empty_polls += 1,
                                        }
                                    }
                                    None => {
                                        if let Some(metrics) = server.metrics() {
                                            metrics.incr("pool.backoffs");
                                        }
                                        std::thread::sleep(
                                            policy.backoff(empty_polls, &mut rng),
                                        );
                                        empty_polls += 1;
                                    }
                                }
                                continue;
                            }
                            Err(_) => break,
                        };
                        let run_started = Instant::now();
                        let outcome = w.driver.run(&task.sql);
                        if let Some(metrics) = server.metrics() {
                            metrics.observe_nanos(
                                "pool.task_nanos",
                                run_started.elapsed().as_nanos() as u64,
                            );
                        }
                        let accepted = server.report_result(&w.key, task.id, outcome).is_ok();
                        if accepted {
                            completed += 1;
                        } else {
                            rejected += 1;
                        }
                        if let Some(metrics) = server.metrics() {
                            metrics.incr(if accepted {
                                "pool.tasks_completed"
                            } else {
                                "pool.tasks_rejected"
                            });
                        }
                    }
                    WorkerReport {
                        worker: idx,
                        completed,
                        rejected,
                        wall: began.elapsed(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    PoolReport {
        workers: reports,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Visibility;
    use crate::driver::{DriverConfig, MockConnector};
    use crate::project::{ExperimentId, ProjectId};
    use crate::server::SqalpelServer;
    use crate::user::UserId;

    fn setup() -> (SqalpelServer, UserId, UserId, ProjectId, ExperimentId) {
        let server = SqalpelServer::new();
        let owner = server.register_user("mlk", "mlk@cwi.nl").unwrap();
        let contrib = server.register_user("pk", "pk@monetdb.com").unwrap();
        let project = server
            .create_project(owner, "pool-study", "worker pool tests", Visibility::Public)
            .unwrap();
        server
            .set_targets(
                project,
                owner,
                vec!["rowstore-2.0".into()],
                vec!["bench-server".into()],
            )
            .unwrap();
        server.invite(project, owner, contrib).unwrap();
        let exp = server
            .add_experiment(
                project,
                owner,
                "nation filter",
                "select n_name, n_regionkey from nation \
                 where n_regionkey = 1 and n_name = 'BRAZIL'",
                None,
                1000,
                100,
            )
            .unwrap();
        server.seed_pool(project, exp, owner, 5, 42).unwrap();
        (server, owner, contrib, project, exp)
    }

    fn mock_worker(server: &SqalpelServer, contrib: UserId, spin: u64) -> Worker<MockConnector> {
        let key = server.issue_key(contrib).unwrap();
        let driver = ExperimentDriver::new(
            MockConnector {
                label: "rowstore-2.0".into(),
                fail_pattern: None,
                spin,
                rows: 1,
            },
            DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 2")
                .unwrap(),
        );
        Worker::new(key, driver)
    }

    #[test]
    fn pool_drains_the_queue() {
        let (server, owner, contrib, project, exp) = setup();
        server.morph_pool(project, exp, owner, None, 12, 3).unwrap();
        let total = server.enqueue_experiment(project, exp, owner).unwrap();
        assert!(total >= 4);

        let workers = (0..4)
            .map(|_| mock_worker(&server, contrib, 1000))
            .collect();
        let report = run_worker_pool(&server, workers);

        assert_eq!(report.completed(), total);
        assert_eq!(report.rejected(), 0);
        assert_eq!(report.workers.len(), 4);
        assert!(report.workers.iter().all(|w| w.wall <= report.wall));
        let s = server.queue_summary();
        assert_eq!((s.queued, s.running, s.timed_out), (0, 0, 0));
        assert_eq!(s.finished + s.failed, total);

        // The pool instrumented the server's registry as it drained.
        let snap = server.metrics().snapshot();
        assert_eq!(snap.counter("pool.tasks_completed"), Some(total as u64));
        assert_eq!(snap.counter("pool.tasks_rejected"), None);
        assert_eq!(snap.histogram("pool.task_nanos").unwrap().count, total as u64);
        assert_eq!(
            snap.counter("server.report_result.accepted"),
            Some(total as u64)
        );
    }

    #[test]
    fn polling_policy_backs_off_and_picks_up_late_work() {
        let (server, owner, contrib, project, exp) = setup();

        // An empty queue with a zero-retry policy: one poll, then out.
        let report = run_worker_pool(&server, vec![mock_worker(&server, contrib, 0)]);
        assert_eq!(report.completed(), 0);
        let empty_before = server
            .metrics()
            .snapshot()
            .counter("queue.empty_polls")
            .unwrap_or(0);
        assert!(empty_before >= 1);

        // With a retry budget, the worker sleeps through the gap and
        // drains work enqueued after it started polling.
        let policy = PollPolicy {
            max_empty_polls: 50,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(20),
            jitter: 0.5,
            push: false,
        };
        let total = std::thread::scope(|scope| {
            let enqueue = scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(30));
                server.enqueue_experiment(project, exp, owner).unwrap()
            });
            let report = run_worker_pool_with(
                &server,
                vec![mock_worker(&server, contrib, 0)],
                policy,
            );
            let total = enqueue.join().expect("enqueue thread panicked");
            assert_eq!(report.completed(), total);
            total
        });
        let s = server.queue_summary();
        assert_eq!((s.queued, s.running), (0, 0));
        assert_eq!(s.finished + s.failed, total);

        let snap = server.metrics().snapshot();
        assert!(
            snap.counter("pool.backoffs").unwrap_or(0) >= 1,
            "the worker waited at least once before the queue filled"
        );
        assert!(snap.counter("queue.empty_polls").unwrap_or(0) > empty_before);
    }

    #[test]
    fn backoff_grows_to_cap_and_jitters_below_it() {
        let policy = PollPolicy {
            max_empty_polls: 10,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            jitter: 0.5,
            push: false,
        };
        let mut rng = jitter_seed(0);
        for attempt in 0..12 {
            let d = policy.backoff(attempt, &mut rng);
            let ceiling = policy.cap.min(policy.base * 1u32.checked_shl(attempt).unwrap_or(u32::MAX));
            assert!(d <= ceiling, "attempt {attempt}: {d:?} > {ceiling:?}");
            let floor = ceiling
                .mul_f64(1.0 - policy.jitter)
                .saturating_sub(Duration::from_nanos(2));
            assert!(d >= floor, "attempt {attempt}: {d:?} under jitter floor");
        }
        // Distinct seeds draw distinct schedules (the whole point of
        // jitter: workers must not wake in lockstep).
        let (mut a, mut b) = (1u64, 2u64);
        let da: Vec<_> = (0..4).map(|i| policy.backoff(i, &mut a)).collect();
        let db: Vec<_> = (0..4).map(|i| policy.backoff(i, &mut b)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn reaped_task_is_requeued_and_late_report_rejected() {
        let (server, _owner, contrib, project, exp) = setup();
        let total = server.enqueue_experiment(project, exp, _owner).unwrap();

        // A "stuck" contributor claims a task and never reports back...
        let stuck = mock_worker(&server, contrib, 0);
        let task = server
            .request_task(&stuck.key, "rowstore-2.0", "bench-server")
            .unwrap()
            .expect("a task to get stuck on");

        // ...so the moderator reaps and requeues it.
        let reaped = server.reap_stuck(Duration::ZERO);
        assert_eq!(reaped, vec![task.id]);
        server.requeue(task.id).unwrap();

        // A healthy pool drains everything, the requeued task included.
        let report = run_worker_pool(&server, vec![mock_worker(&server, contrib, 0)]);
        assert_eq!(report.completed(), total);
        let s = server.queue_summary();
        assert_eq!((s.queued, s.running), (0, 0));

        // The stuck worker's report arrives too late: the re-claimed run
        // owns the result, so the server must refuse it.
        let outcome = stuck.driver.run(&task.sql);
        assert!(server.report_result(&stuck.key, task.id, outcome).is_err());
    }

    #[test]
    fn contended_pool_tolerates_mid_run_reaping() {
        let (server, owner, contrib, project, exp) = setup();
        server.morph_pool(project, exp, owner, None, 12, 5).unwrap();
        let total = server.enqueue_experiment(project, exp, owner).unwrap();

        // Reap with a zero timeout while workers are mid-task: claimed
        // tasks get yanked and requeued under the workers' feet.
        let report = std::thread::scope(|scope| {
            let reaper = scope.spawn(|| {
                let mut requeued = 0usize;
                for _ in 0..50 {
                    for id in server.reap_stuck(Duration::ZERO) {
                        if server.requeue(id).is_ok() {
                            requeued += 1;
                        }
                    }
                    std::thread::yield_now();
                }
                requeued
            });
            let workers = (0..3)
                .map(|_| mock_worker(&server, contrib, 20_000))
                .collect();
            let report = run_worker_pool(&server, workers);
            reaper.join().expect("reaper panicked");
            report
        });

        // A task reaped in the instant between a worker's exit check and
        // the requeue can be left queued with nobody to claim it; a final
        // uncontended pass sweeps any such stragglers.
        let sweep = run_worker_pool(&server, vec![mock_worker(&server, contrib, 0)]);

        // Whatever interleaving happened: every task ended terminal, each
        // terminal state came from exactly one accepted report, and
        // rejections are exactly the reaped-and-reassigned races.
        assert!(report.completed() + sweep.completed() >= total);
        let s = server.queue_summary();
        assert_eq!((s.queued, s.running, s.timed_out), (0, 0, 0));
        assert_eq!(s.finished + s.failed, total);
    }
}
