//! Multi-worker experiment dispatch.
//!
//! The paper's crowdsourced platform serves many contributors at once,
//! each running the driver loop — request a task, execute it, report the
//! result — against their own target system. This module packages that
//! loop as a reusable pool: scoped worker threads, each owning a
//! [`Connector`]-backed [`ExperimentDriver`] and a [`ContributorKey`],
//! drain the server's queue concurrently until no work is left for their
//! `(dbms, host)` target.
//!
//! The pool is honest about contention: if the moderator reaps a
//! worker's task as stuck and requeues it while the worker is still
//! executing, the eventual report is **rejected** by the server (the
//! re-claimed run owns the result now). Workers count the rejection and
//! move on — the queue's at-most-one-result-per-run invariant holds no
//! matter how the pool races.

use crate::driver::{Connector, ExperimentDriver};
use crate::server::Platform;
use crate::user::ContributorKey;
use std::time::{Duration, Instant};

/// One pool worker: a contributor identity plus the driver (owning its
/// connector) that executes tasks on that contributor's behalf.
pub struct Worker<C: Connector> {
    pub key: ContributorKey,
    pub driver: ExperimentDriver<C>,
}

impl<C: Connector> Worker<C> {
    pub fn new(key: ContributorKey, driver: ExperimentDriver<C>) -> Self {
        Worker { key, driver }
    }
}

/// Per-worker statistics from one pool run.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Index of the worker in the submitted pool.
    pub worker: usize,
    /// Tasks executed and successfully reported.
    pub completed: usize,
    /// Reports the server refused — the task was reaped as stuck and
    /// reassigned while this worker was still executing it.
    pub rejected: usize,
    /// Wall-clock from the worker's first request to its last report.
    pub wall: Duration,
}

/// Outcome of draining the queue with a worker pool.
#[derive(Debug, Clone)]
pub struct PoolReport {
    pub workers: Vec<WorkerReport>,
    /// Wall-clock of the whole drain.
    pub wall: Duration,
}

impl PoolReport {
    /// Tasks executed and successfully reported across all workers.
    pub fn completed(&self) -> usize {
        self.workers.iter().map(|w| w.completed).sum()
    }

    /// Reports the server refused across all workers.
    pub fn rejected(&self) -> usize {
        self.workers.iter().map(|w| w.rejected).sum()
    }
}

/// Drain a platform's queue with a pool of scoped worker threads.
///
/// Each worker loops request → execute → report against the `(dbms,
/// host)` named by its driver config until the platform hands it no more
/// work. Request errors (revoked key, taken-down project) stop that
/// worker; rejected reports are counted and skipped. Returns per-worker
/// and overall wall-clock so callers can measure dispatch speedup.
///
/// The pool is generic over [`Platform`], so the same loop drains an
/// in-process [`crate::SqalpelServer`] or a remote server through a
/// [`crate::wire::WireClient`] — the paper's actual deployment shape.
pub fn run_worker_pool<C: Connector, P: Platform + ?Sized>(
    server: &P,
    workers: Vec<Worker<C>>,
) -> PoolReport {
    let start = Instant::now();
    let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(idx, w)| {
                scope.spawn(move || {
                    let began = Instant::now();
                    let mut completed = 0usize;
                    let mut rejected = 0usize;
                    let dbms = w.driver.config().dbms_label.clone();
                    let host = w.driver.config().host.clone();
                    loop {
                        let task = match server.request_task(&w.key, &dbms, &host) {
                            Ok(Some(t)) => t,
                            Ok(None) => break,
                            Err(_) => break,
                        };
                        let run_started = Instant::now();
                        let outcome = w.driver.run(&task.sql);
                        if let Some(metrics) = server.metrics() {
                            metrics.observe_nanos(
                                "pool.task_nanos",
                                run_started.elapsed().as_nanos() as u64,
                            );
                        }
                        let accepted = server.report_result(&w.key, task.id, outcome).is_ok();
                        if accepted {
                            completed += 1;
                        } else {
                            rejected += 1;
                        }
                        if let Some(metrics) = server.metrics() {
                            metrics.incr(if accepted {
                                "pool.tasks_completed"
                            } else {
                                "pool.tasks_rejected"
                            });
                        }
                    }
                    WorkerReport {
                        worker: idx,
                        completed,
                        rejected,
                        wall: began.elapsed(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    PoolReport {
        workers: reports,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Visibility;
    use crate::driver::{DriverConfig, MockConnector};
    use crate::project::{ExperimentId, ProjectId};
    use crate::server::SqalpelServer;
    use crate::user::UserId;

    fn setup() -> (SqalpelServer, UserId, UserId, ProjectId, ExperimentId) {
        let server = SqalpelServer::new();
        let owner = server.register_user("mlk", "mlk@cwi.nl").unwrap();
        let contrib = server.register_user("pk", "pk@monetdb.com").unwrap();
        let project = server
            .create_project(owner, "pool-study", "worker pool tests", Visibility::Public)
            .unwrap();
        server
            .set_targets(
                project,
                owner,
                vec!["rowstore-2.0".into()],
                vec!["bench-server".into()],
            )
            .unwrap();
        server.invite(project, owner, contrib).unwrap();
        let exp = server
            .add_experiment(
                project,
                owner,
                "nation filter",
                "select n_name, n_regionkey from nation \
                 where n_regionkey = 1 and n_name = 'BRAZIL'",
                None,
                1000,
                100,
            )
            .unwrap();
        server.seed_pool(project, exp, owner, 5, 42).unwrap();
        (server, owner, contrib, project, exp)
    }

    fn mock_worker(server: &SqalpelServer, contrib: UserId, spin: u64) -> Worker<MockConnector> {
        let key = server.issue_key(contrib).unwrap();
        let driver = ExperimentDriver::new(
            MockConnector {
                label: "rowstore-2.0".into(),
                fail_pattern: None,
                spin,
                rows: 1,
            },
            DriverConfig::parse("dbms = rowstore-2.0\nhost = bench-server\nrepetitions = 2")
                .unwrap(),
        );
        Worker::new(key, driver)
    }

    #[test]
    fn pool_drains_the_queue() {
        let (server, owner, contrib, project, exp) = setup();
        server.morph_pool(project, exp, owner, None, 12, 3).unwrap();
        let total = server.enqueue_experiment(project, exp, owner).unwrap();
        assert!(total >= 4);

        let workers = (0..4)
            .map(|_| mock_worker(&server, contrib, 1000))
            .collect();
        let report = run_worker_pool(&server, workers);

        assert_eq!(report.completed(), total);
        assert_eq!(report.rejected(), 0);
        assert_eq!(report.workers.len(), 4);
        assert!(report.workers.iter().all(|w| w.wall <= report.wall));
        let s = server.queue_summary();
        assert_eq!((s.queued, s.running, s.timed_out), (0, 0, 0));
        assert_eq!(s.finished + s.failed, total);

        // The pool instrumented the server's registry as it drained.
        let snap = server.metrics().snapshot();
        assert_eq!(snap.counter("pool.tasks_completed"), Some(total as u64));
        assert_eq!(snap.counter("pool.tasks_rejected"), None);
        assert_eq!(snap.histogram("pool.task_nanos").unwrap().count, total as u64);
        assert_eq!(
            snap.counter("server.report_result.accepted"),
            Some(total as u64)
        );
    }

    #[test]
    fn reaped_task_is_requeued_and_late_report_rejected() {
        let (server, _owner, contrib, project, exp) = setup();
        let total = server.enqueue_experiment(project, exp, _owner).unwrap();

        // A "stuck" contributor claims a task and never reports back...
        let stuck = mock_worker(&server, contrib, 0);
        let task = server
            .request_task(&stuck.key, "rowstore-2.0", "bench-server")
            .unwrap()
            .expect("a task to get stuck on");

        // ...so the moderator reaps and requeues it.
        let reaped = server.reap_stuck(Duration::ZERO);
        assert_eq!(reaped, vec![task.id]);
        server.requeue(task.id).unwrap();

        // A healthy pool drains everything, the requeued task included.
        let report = run_worker_pool(&server, vec![mock_worker(&server, contrib, 0)]);
        assert_eq!(report.completed(), total);
        let s = server.queue_summary();
        assert_eq!((s.queued, s.running), (0, 0));

        // The stuck worker's report arrives too late: the re-claimed run
        // owns the result, so the server must refuse it.
        let outcome = stuck.driver.run(&task.sql);
        assert!(server.report_result(&stuck.key, task.id, outcome).is_err());
    }

    #[test]
    fn contended_pool_tolerates_mid_run_reaping() {
        let (server, owner, contrib, project, exp) = setup();
        server.morph_pool(project, exp, owner, None, 12, 5).unwrap();
        let total = server.enqueue_experiment(project, exp, owner).unwrap();

        // Reap with a zero timeout while workers are mid-task: claimed
        // tasks get yanked and requeued under the workers' feet.
        let report = std::thread::scope(|scope| {
            let reaper = scope.spawn(|| {
                let mut requeued = 0usize;
                for _ in 0..50 {
                    for id in server.reap_stuck(Duration::ZERO) {
                        if server.requeue(id).is_ok() {
                            requeued += 1;
                        }
                    }
                    std::thread::yield_now();
                }
                requeued
            });
            let workers = (0..3)
                .map(|_| mock_worker(&server, contrib, 20_000))
                .collect();
            let report = run_worker_pool(&server, workers);
            reaper.join().expect("reaper panicked");
            report
        });

        // A task reaped in the instant between a worker's exit check and
        // the requeue can be left queued with nobody to claim it; a final
        // uncontended pass sweeps any such stragglers.
        let sweep = run_worker_pool(&server, vec![mock_worker(&server, contrib, 0)]);

        // Whatever interleaving happened: every task ended terminal, each
        // terminal state came from exactly one accepted report, and
        // rejections are exactly the reaped-and-reassigned races.
        assert!(report.completed() + sweep.completed() >= total);
        let s = server.queue_summary();
        assert_eq!((s.queued, s.running, s.timed_out), (0, 0, 0));
        assert_eq!(s.finished + s.failed, total);
    }
}
