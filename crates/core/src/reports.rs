//! Server-side page rendering — the text equivalents of the paper's demo
//! views: the TPC overview (Table 1), the experiment/grammar page
//! (Figure 5), the query-pool page (Figure 6) and the experiment history
//! (Figure 7). Pages are generated server-side, as in the Flask original.

use crate::analytics::{ComponentWeight, HistoryNode, SpeedupReport};
use crate::pool::QueryPool;
use crate::project::{Experiment, Project};
use std::fmt::Write as _;

/// One row of the paper's Table 1 (TPC benchmark adoption), quoted from
/// the tpc.org snapshot the paper tabulates. Literature data — the only
/// artifact of the paper that is not measurable.
pub struct TpcRow {
    pub benchmark: &'static str,
    pub reports: u32,
    pub systems: &'static str,
}

/// The paper's Table 1 contents.
pub fn tpc_table_data() -> Vec<TpcRow> {
    [
        ("TPC-C", 368, "Oracle, IBM DB2, MS SQLserver, Sybase, SymfoWARE"),
        ("TPC-DI", 0, ""),
        ("TPC-DS", 1, "Intel"),
        ("TPC-E", 77, "MS SQLserver"),
        (
            "TPC-H <= SF-300",
            252,
            "MS SQLserver, Oracle, EXASOL, Actian Vector 5.0, Sybase, IBM DB2, Informix, Teradata, Paraccel",
        ),
        ("TPC-H SF-1000", 4, "MS SQLserver"),
        ("TPC-H SF-3000", 6, "MS SQLserver, Actian Vector 5.0"),
        ("TPC-H SF-10000", 9, "MS SQLserver"),
        ("TPC-H SF-30000", 1, "MS SQLserver"),
        ("TPC-VMS", 0, ""),
        ("TPCx-BB", 4, "Cloudera"),
        ("TPCx-HCI", 0, ""),
        ("TPCx-HS", 0, ""),
        ("TPCx-IoT", 1, "Hbase"),
    ]
    .into_iter()
    .map(|(benchmark, reports, systems)| TpcRow {
        benchmark,
        reports,
        systems,
    })
    .collect()
}

/// Render Table 1.
pub fn tpc_table() -> String {
    let mut out = String::from("benchmark            reports  systems reported\n");
    out.push_str(&"-".repeat(78));
    out.push('\n');
    for row in tpc_table_data() {
        let _ = writeln!(out, "{:<20} {:>7}  {}", row.benchmark, row.reports, row.systems);
    }
    out
}

/// The experiment page (Figure 5): synopsis, baseline query, grammar.
pub fn experiment_page(project: &Project, experiment: &Experiment) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== project: {} ===", project.title);
    let _ = writeln!(out, "{}", project.synopsis);
    let _ = writeln!(
        out,
        "visibility: {:?} | contributors: {} | comments: {}",
        project.visibility,
        project.contributors.len(),
        project.comments.len()
    );
    let _ = writeln!(out, "\n--- experiment: {} ---", experiment.title);
    let _ = writeln!(out, "baseline query:\n{}\n", experiment.baseline_sql);
    let report = experiment
        .pool
        .grammar()
        .space_report(sqalpel_grammar::DEFAULT_TEMPLATE_CAP)
        .map(|r| r.to_string())
        .unwrap_or_else(|e| e.to_string());
    let _ = writeln!(out, "query space: {report}");
    let _ = writeln!(out, "\nsqalpel grammar:\n{}", experiment.pool.grammar());
    out
}

/// The query-pool page (Figure 6): entries, origins, guidance controls.
pub fn pool_page(pool: &QueryPool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== query pool: {} queries (templates: {}{}) ===",
        pool.len(),
        pool.templates().len(),
        if pool.templates_truncated { ", capped" } else { "" }
    );
    let g = &pool.guidance;
    let _ = writeln!(
        out,
        "guidance: exclude={:?} require={:?} weights(alter/expand/prune)={}/{}/{}",
        g.exclude, g.require, g.weights.alter, g.weights.expand, g.weights.prune
    );
    let _ = writeln!(out, "{:>4}  {:<22} {:>5}  sql", "id", "origin", "size");
    for e in pool.entries() {
        let origin = match e.origin {
            crate::pool::Origin::Baseline => "baseline".to_string(),
            crate::pool::Origin::Random => "random".to_string(),
            crate::pool::Origin::Morph { strategy, parent } => {
                format!("{} of #{}", strategy.name(), parent.0)
            }
        };
        let sql = if e.sql.len() > 70 {
            format!("{}…", &e.sql[..69])
        } else {
            e.sql.clone()
        };
        let _ = writeln!(out, "{:>4}  {:<22} {:>5}  {}", e.id.0, origin, e.components(), sql);
    }
    out
}

/// The experiment-history page (Figure 7): one line per node with step,
/// strategy color, node size and timings; errors show as yellow.
pub fn history_page(nodes: &[HistoryNode]) -> String {
    let mut out = String::from("step  query  color    size  times\n");
    for n in nodes {
        let times: Vec<String> = n
            .times_ms
            .iter()
            .map(|(sys, ms)| format!("{sys}={ms:.2}ms"))
            .collect();
        let _ = writeln!(
            out,
            "{:>4}  #{:<4}  {:<8} {:>4}  {}{}",
            n.step,
            n.query.0,
            n.color(),
            n.components,
            times.join(" "),
            if n.error { " [error]" } else { "" }
        );
    }
    out
}

/// Render the Figure 2 component ranking.
pub fn components_page(ranked: &[ComponentWeight], top: usize) -> String {
    let mut out = String::from("rank  weight_ms  support  class        term\n");
    for (i, c) in ranked.iter().take(top).enumerate() {
        let _ = writeln!(
            out,
            "{:>4}  {:>9.3}  {:>7}  {:<12} {}",
            i + 1,
            c.weight_ms,
            c.support,
            c.class,
            c.literal
        );
    }
    out
}

/// Render the Figure 3 speedup summary.
pub fn speedup_page(report: &SpeedupReport, label_a: &str, label_b: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "speedup {label_b} / {label_a}: min={:.2}x median={:.2}x max={:.2}x over {} queries",
        report.min,
        report.median,
        report.max,
        report.factors.len()
    );
    for (id, f) in &report.factors {
        let _ = writeln!(out, "  query #{:<4} {f:.2}x", id.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Visibility;
    use crate::project::{Project, ProjectId};
    use crate::user::UserId;

    #[test]
    fn tpc_table_matches_paper() {
        let data = tpc_table_data();
        assert_eq!(data.len(), 14);
        assert_eq!(data[0].benchmark, "TPC-C");
        assert_eq!(data[0].reports, 368);
        let total: u32 = data.iter().map(|r| r.reports).sum();
        assert_eq!(total, 368 + 1 + 77 + 252 + 4 + 6 + 9 + 1 + 4 + 1);
        let text = tpc_table();
        assert!(text.contains("TPC-H SF-30000"));
        assert!(text.contains("368"));
    }

    #[test]
    fn experiment_and_pool_pages_render() {
        let mut p = Project::new(
            ProjectId(1),
            "demo",
            "Figure 1 nation space",
            UserId(1),
            Visibility::Public,
        );
        let g = sqalpel_grammar::Grammar::parse(sqalpel_grammar::FIG1_GRAMMAR).unwrap();
        let id = p
            .add_experiment(
                UserId(1),
                "nation",
                "SELECT count(*) FROM nation WHERE n_name= 'BRAZIL'",
                Some(g),
                1000,
                100,
            )
            .unwrap();
        {
            let exp = p.experiment_mut(id).unwrap();
            exp.pool.seed_baseline().unwrap();
            let mut rng = sqalpel_grammar::seeded_rng(1);
            exp.pool.add_random(5, &mut rng).unwrap();
            exp.pool.morph_auto(&mut rng).unwrap();
        }
        let exp = p.experiment(id).unwrap();
        let page = experiment_page(&p, exp);
        assert!(page.contains("=== project: demo ==="));
        assert!(page.contains("sqalpel grammar:"));
        assert!(page.contains("query space: tags=7 templates=10 space=32"));

        let pool_text = pool_page(&exp.pool);
        assert!(pool_text.contains("baseline"));
        assert!(pool_text.contains("random"));
        assert!(pool_text.contains("query pool:"));
    }

    #[test]
    fn history_page_marks_errors() {
        use crate::analytics::HistoryNode;
        use crate::pool::QueryId;
        let nodes = vec![HistoryNode {
            step: 0,
            query: QueryId(0),
            strategy: None,
            parent: None,
            components: 3,
            error: true,
            times_ms: Default::default(),
        }];
        let page = history_page(&nodes);
        assert!(page.contains("yellow"));
        assert!(page.contains("[error]"));
    }
}
