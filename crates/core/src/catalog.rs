//! Global DBMS and platform (hardware) catalogs (paper §5.2).
//!
//! "The global DBMS catalog describes all database systems considered and
//! the platform catalog provides an overview of the hardware platforms
//! deployed." Entries can be public or private; a *public* project may not
//! reference private entries (§4.2) — that rule is enforced in
//! [`crate::project`].

use crate::error::{PlatformError, PlatformResult};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Visibility of catalog entries and projects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    Public,
    Private,
}

impl Serialize for Visibility {
    fn to_value(&self) -> Value {
        match self {
            Visibility::Public => "public".into(),
            Visibility::Private => "private".into(),
        }
    }
}

impl Deserialize for Visibility {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v.as_str().ok_or("visibility: expected a string")? {
            "public" => Ok(Visibility::Public),
            "private" => Ok(Visibility::Private),
            other => Err(format!("unknown visibility {other:?}")),
        }
    }
}

/// A database system description, including the configuration knobs whose
/// documentation the paper argues must accompany any measurement.
#[derive(Debug, Clone)]
pub struct DbmsEntry {
    pub name: String,
    pub version: String,
    pub vendor: String,
    /// Documented server settings (knob → value), e.g. buffer sizes,
    /// index use, partitioning, compression.
    pub settings: BTreeMap<String, String>,
    pub visibility: Visibility,
}

impl DbmsEntry {
    /// `name-version` label, matching [`sqalpel_engine::Dbms::label`].
    pub fn label(&self) -> String {
        format!("{}-{}", self.name, self.version)
    }
}

impl Serialize for DbmsEntry {
    fn to_value(&self) -> Value {
        let mut settings = serde_json::Map::new();
        for (k, v) in &self.settings {
            settings.insert(k.clone(), v.clone().into());
        }
        let mut m = serde_json::Map::new();
        m.insert("name".into(), self.name.clone().into());
        m.insert("version".into(), self.version.clone().into());
        m.insert("vendor".into(), self.vendor.clone().into());
        m.insert("settings".into(), Value::Object(settings));
        m.insert("visibility".into(), self.visibility.to_value());
        Value::Object(m)
    }
}

impl Deserialize for DbmsEntry {
    fn from_value(v: &Value) -> Result<Self, String> {
        let text = |k: &str| {
            v[k].as_str()
                .map(str::to_string)
                .ok_or(format!("dbms entry: missing {k}"))
        };
        let mut settings = BTreeMap::new();
        if let Some(map) = v["settings"].as_object() {
            for (k, val) in map {
                settings.insert(
                    k.clone(),
                    val.as_str().ok_or("dbms settings must be strings")?.to_string(),
                );
            }
        }
        Ok(DbmsEntry {
            name: text("name")?,
            version: text("version")?,
            vendor: text("vendor")?,
            settings,
            visibility: Visibility::from_value(&v["visibility"])?,
        })
    }
}

/// A hardware platform description ("ranging from a Raspberry Pi up to
/// Intel Xeon E5-4657L servers with 1TB RAM").
#[derive(Debug, Clone)]
pub struct HostEntry {
    pub name: String,
    pub cpu: String,
    pub cores: u32,
    pub ram_gb: u32,
    pub os: String,
    pub visibility: Visibility,
}

impl Serialize for HostEntry {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("name".into(), self.name.clone().into());
        m.insert("cpu".into(), self.cpu.clone().into());
        m.insert("cores".into(), self.cores.into());
        m.insert("ram_gb".into(), self.ram_gb.into());
        m.insert("os".into(), self.os.clone().into());
        m.insert("visibility".into(), self.visibility.to_value());
        Value::Object(m)
    }
}

impl Deserialize for HostEntry {
    fn from_value(v: &Value) -> Result<Self, String> {
        let text = |k: &str| {
            v[k].as_str()
                .map(str::to_string)
                .ok_or(format!("host entry: missing {k}"))
        };
        let num = |k: &str| {
            v[k].as_i64()
                .map(|x| x as u32)
                .ok_or(format!("host entry: missing {k}"))
        };
        Ok(HostEntry {
            name: text("name")?,
            cpu: text("cpu")?,
            cores: num("cores")?,
            ram_gb: num("ram_gb")?,
            os: text("os")?,
            visibility: Visibility::from_value(&v["visibility"])?,
        })
    }
}

/// The two global catalogs.
#[derive(Debug, Default)]
pub struct Catalogs {
    dbms: Vec<DbmsEntry>,
    hosts: Vec<HostEntry>,
}

impl Catalogs {
    pub fn new() -> Self {
        Self::default()
    }

    /// A catalog pre-loaded with the repo's built-in target systems and a
    /// pair of representative hosts.
    pub fn bootstrap() -> Self {
        let mut c = Self::new();
        for (name, version, vendor) in [
            ("rowstore", "2.0", "sqalpel-rs"),
            ("rowstore", "1.4", "sqalpel-rs"),
            ("colstore", "5.1", "sqalpel-rs"),
        ] {
            c.add_dbms(DbmsEntry {
                name: name.into(),
                version: version.into(),
                vendor: vendor.into(),
                settings: BTreeMap::from([
                    ("arithmetic".into(), if name == "colstore" { "guarded-decimal" } else { "float64" }.into()),
                    ("joins".into(), if version == "1.4" { "nested-loop" } else { "hash" }.into()),
                ]),
                visibility: Visibility::Public,
            })
            .expect("bootstrap dbms");
        }
        c.add_host(HostEntry {
            name: "bench-server".into(),
            cpu: "Xeon E5-4657L".into(),
            cores: 48,
            ram_gb: 1024,
            os: "Linux".into(),
            visibility: Visibility::Public,
        })
        .expect("bootstrap host");
        c.add_host(HostEntry {
            name: "raspberry-pi".into(),
            cpu: "ARM Cortex-A72".into(),
            cores: 4,
            ram_gb: 4,
            os: "Linux".into(),
            visibility: Visibility::Public,
        })
        .expect("bootstrap host");
        c
    }

    pub fn add_dbms(&mut self, entry: DbmsEntry) -> PlatformResult<()> {
        if self.dbms(&entry.label()).is_some() {
            return Err(PlatformError::Invalid(format!(
                "dbms {} already cataloged",
                entry.label()
            )));
        }
        self.dbms.push(entry);
        Ok(())
    }

    pub fn add_host(&mut self, entry: HostEntry) -> PlatformResult<()> {
        if self.host(&entry.name).is_some() {
            return Err(PlatformError::Invalid(format!(
                "host {} already cataloged",
                entry.name
            )));
        }
        self.hosts.push(entry);
        Ok(())
    }

    /// Look up a DBMS by `name-version` label.
    pub fn dbms(&self, label: &str) -> Option<&DbmsEntry> {
        self.dbms.iter().find(|d| d.label() == label)
    }

    pub fn host(&self, name: &str) -> Option<&HostEntry> {
        self.hosts.iter().find(|h| h.name == name)
    }

    pub fn dbms_entries(&self) -> &[DbmsEntry] {
        &self.dbms
    }

    pub fn host_entries(&self) -> &[HostEntry] {
        &self.hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_has_builtin_systems() {
        let c = Catalogs::bootstrap();
        assert!(c.dbms("rowstore-2.0").is_some());
        assert!(c.dbms("rowstore-1.4").is_some());
        assert!(c.dbms("colstore-5.1").is_some());
        assert_eq!(c.host_entries().len(), 2);
    }

    #[test]
    fn settings_documented() {
        let c = Catalogs::bootstrap();
        let col = c.dbms("colstore-5.1").unwrap();
        assert_eq!(col.settings["arithmetic"], "guarded-decimal");
        let legacy = c.dbms("rowstore-1.4").unwrap();
        assert_eq!(legacy.settings["joins"], "nested-loop");
    }

    #[test]
    fn duplicates_rejected() {
        let mut c = Catalogs::bootstrap();
        let dup = c.dbms("rowstore-2.0").unwrap().clone();
        assert!(c.add_dbms(dup).is_err());
        let host = c.host("raspberry-pi").unwrap().clone();
        assert!(c.add_host(host).is_err());
    }

    #[test]
    fn lookup_misses() {
        let c = Catalogs::bootstrap();
        assert!(c.dbms("oracle-23c").is_none());
        assert!(c.host("mainframe").is_none());
    }

    #[test]
    fn entries_round_trip_through_json() {
        let c = Catalogs::bootstrap();
        let d = c.dbms("colstore-5.1").unwrap();
        let back: DbmsEntry =
            serde_json::from_str(&serde_json::to_string(d).unwrap()).unwrap();
        assert_eq!(back.label(), d.label());
        assert_eq!(back.settings, d.settings);
        assert_eq!(back.visibility, d.visibility);

        let h = c.host("raspberry-pi").unwrap();
        let back: HostEntry =
            serde_json::from_str(&serde_json::to_string(h).unwrap()).unwrap();
        assert_eq!(back.name, h.name);
        assert_eq!(back.cores, h.cores);

        for vis in [Visibility::Public, Visibility::Private] {
            let back: Visibility =
                serde_json::from_str(&serde_json::to_string(&vis).unwrap()).unwrap();
            assert_eq!(back, vis);
        }
    }
}
