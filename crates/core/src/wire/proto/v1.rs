//! Protocol v1: the versioned `/v1` JSON-over-HTTP codec.
//!
//! Every operation of the in-process server is exposed as one endpoint.
//! Request and response bodies are JSON built from the same hand-written
//! serde impls the rest of the crate uses, so the wire format *is* the
//! documented DTO format. Errors are serialized [`PlatformError`]s
//! (`{"code", "message", "detail"}`) with the variant mapped to an HTTP
//! status by [`ErrorCode::http_status`] — the client reconstructs the
//! exact typed error from the body.
//!
//! Both directions of the codec live here: [`decode_http`]/
//! [`encode_reply`] are the server side, [`encode_request`]/
//! [`decode_reply`] the client side. Execution goes through the shared
//! [`dispatch`](crate::wire::dispatch::dispatch), same as v2.
//!
//! | Method & path                                      | Body → Response |
//! |----------------------------------------------------|-----------------|
//! | `POST /v1/user/register`                           | `{nickname, email}` → `{user}` |
//! | `POST /v1/user/key`                                | `{user}` → `{key}` |
//! | `GET  /v1/dbms`                                    | → `{labels}` |
//! | `POST /v1/dbms`                                    | `DbmsEntry` → `{}` |
//! | `POST /v1/host`                                    | `HostEntry` → `{}` |
//! | `POST /v1/project/create`                          | `{owner, title, synopsis, visibility}` → `{project}` |
//! | `POST /v1/project/{p}/invite`                      | `{owner, user}` → `{}` |
//! | `POST /v1/project/{p}/targets`                     | `{actor, dbms_labels, hosts}` → `{}` |
//! | `POST /v1/project/{p}/comment`                     | `{author, text}` → `{}` |
//! | `POST /v1/project/{p}/take_down`                   | `{}` → `{}` |
//! | `GET  /v1/project/{p}/role?user=`                  | → `{role}` |
//! | `POST /v1/project/{p}/experiment`                  | `{actor, title, baseline_sql, grammar?, template_cap, pool_cap}` → `{experiment}` |
//! | `POST /v1/project/{p}/experiment/{e}/seed`         | `{actor, n_random, seed}` → `{seeded}` |
//! | `POST /v1/project/{p}/experiment/{e}/morph`        | `{actor, strategy?, steps, seed}` → `{added}` |
//! | `POST /v1/project/{p}/experiment/{e}/enqueue`      | `{actor}` → `{enqueued}` |
//! | `GET  /v1/project/{p}/results?key=`                | → `{results}` |
//! | `GET  /v1/project/{p}/csv?viewer=`                 | → CSV text |
//! | `POST /v1/result/hide`                             | `{project, actor, index, hidden}` → `{}` |
//! | `POST /v1/task/request`                            | `{key, dbms_label, host, claim?}` → `{task}` (`task` may be null) |
//! | `POST /v1/result/report`                           | `{key, task, outcome}` → `{index}` |
//! | `POST /v1/result/report_batch`                     | `{key, reports: [{task, outcome}…]}` → `{indices}` |
//! | `GET  /v1/queue/summary`                           | → `QueueSummary` |
//! | `POST /v1/queue/reap`                              | `{timeout_ms}` → `{reaped}` |
//! | `POST /v1/task/{t}/requeue`                        | `{}` → `{}` |
//! | `GET  /v1/metrics`                                 | → `MetricsSnapshot` |
//! | `POST /v1/execute`                                 | `{sql, fingerprint?}` → `ExecOutcome` |
//!
//! Every request is counted into the server's
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry) under
//! `wire.requests`, a per-route counter (`wire.route.<METHOD /path>`,
//! with numeric segments normalized to `:id`), a status-class counter
//! (`wire.status.2xx` …) and a per-route latency histogram
//! (`wire.latency.<METHOD /path>`), all served back by `GET /v1/metrics`.

use super::{
    need, need_bool, need_str, need_strings, need_u64, obj, strings, ErrorCode, ExecOutcome,
    Reply, Request,
};
use crate::catalog::{DbmsEntry, HostEntry, Visibility};
use crate::driver::RunOutcome;
use crate::error::{PlatformError, PlatformResult};
use crate::metrics::MetricsSnapshot;
use crate::pool::QueryId;
use crate::project::{ExperimentId, ProjectId, Role};
use crate::queue::{QueueSummary, Task, TaskId};
use crate::results::ResultRecord;
use crate::server::SqalpelServer;
use crate::user::{ContributorKey, UserId};
use crate::wire::dispatch::{dispatch, ExecBackend};
use crate::wire::transport::http::{Request as WireRequest, Response as WireResponse};
use serde::{Deserialize, Serialize, Value};

/// The HTTP status carrying each error variant. Part of the v1 protocol.
pub fn status_of(err: &PlatformError) -> u16 {
    ErrorCode::of(err).http_status()
}

fn error_response(status: u16, err: &PlatformError) -> WireResponse {
    WireResponse::json(
        status,
        serde_json::to_string(err).expect("error serializes"),
    )
}

fn ok(value: Value) -> WireResponse {
    WireResponse::json(
        200,
        serde_json::to_string(&value).expect("value serializes"),
    )
}

fn seg_id(seg: &str, what: &str) -> PlatformResult<u64> {
    seg.parse()
        .map_err(|_| PlatformError::Invalid(format!("{what} id {seg:?} is not a number")))
}

fn query_u64(req: &WireRequest, key: &str) -> PlatformResult<u64> {
    req.query_param(key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| PlatformError::Invalid(format!("missing query parameter {key:?}")))
}

fn fingerprint_of(v: &Value) -> PlatformResult<Option<u64>> {
    match v {
        Value::Null => Ok(None),
        v => v
            .as_str()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .map(Some)
            .ok_or_else(|| {
                PlatformError::Invalid("fingerprint must be a hex string".into())
            }),
    }
}

fn hex_fp(fp: u64) -> Value {
    format!("{fp:016x}").into()
}

// --------------------------------------------------------------- serving

/// Dispatch one parsed HTTP request against the server. Never panics on
/// malformed input — every failure becomes a typed error response.
/// Every call is instrumented into the server's metrics registry.
pub fn handle(
    server: &SqalpelServer,
    backend: Option<&ExecBackend>,
    req: &WireRequest,
) -> WireResponse {
    let label = route_label(req);
    let start = std::time::Instant::now();
    let resp = match decode_http(req) {
        Ok(op) => encode_reply(&dispatch(server, backend, &op)),
        Err(resp) => resp,
    };
    let metrics = server.metrics();
    metrics.incr("wire.requests");
    metrics.incr(&format!("wire.route.{label}"));
    metrics.incr(&format!("wire.status.{}xx", resp.status / 100));
    metrics.observe_nanos(
        &format!("wire.latency.{label}"),
        start.elapsed().as_nanos() as u64,
    );
    resp
}

/// A bounded-cardinality metric label for a request: the method plus the
/// path with numeric segments normalized to `:id`, so `/v1/project/7` and
/// `/v1/project/9` share one counter.
fn route_label(req: &WireRequest) -> String {
    let parts: Vec<&str> = req
        .segments()
        .iter()
        .map(|seg| {
            if !seg.is_empty() && seg.chars().all(|c| c.is_ascii_digit()) {
                ":id"
            } else {
                *seg
            }
        })
        .collect();
    format!("{} /{}", req.method, parts.join("/"))
}

/// Decode one HTTP request into a typed [`Request`]. A failure is the
/// ready-to-send error response: unknown endpoints stay 404 (a routing
/// miss, not an invalid argument), everything else carries the status of
/// its typed error.
pub fn decode_http(req: &WireRequest) -> Result<Request, WireResponse> {
    let segments = req.segments();
    let route = decode_route(req, &segments);
    match route {
        Some(Ok(op)) => Ok(op),
        Some(Err(e)) => Err(error_response(status_of(&e), &e)),
        None => Err(error_response(
            404,
            &PlatformError::Invalid(format!("no endpoint {} {}", req.method, req.path)),
        )),
    }
}

/// `None` means "no such endpoint"; `Some(Err)` a recognized endpoint
/// with a bad body or path id.
fn decode_route(req: &WireRequest, segments: &[&str]) -> Option<PlatformResult<Request>> {
    // Wrap the fallible part so `?` works inside.
    macro_rules! hit {
        ($e:expr) => {{
            #[allow(clippy::redundant_closure_call)]
            let decoded = (|| -> PlatformResult<Request> { $e })();
            Some(decoded)
        }};
    }
    let body = || -> PlatformResult<Value> {
        if req.body.is_empty() {
            return Ok(Value::Null);
        }
        let text = std::str::from_utf8(&req.body)
            .map_err(|_| PlatformError::Invalid("body is not UTF-8".into()))?;
        serde_json::from_str(text)
            .map_err(|e| PlatformError::Invalid(format!("body is not JSON: {e}")))
    };

    match (req.method.as_str(), segments) {
        ("POST", ["v1", "user", "register"]) => hit!({
            let body = body()?;
            Ok(Request::RegisterUser {
                nickname: need_str(&body, "nickname")?,
                email: need_str(&body, "email")?,
            })
        }),
        ("POST", ["v1", "user", "key"]) => hit!({
            let body = body()?;
            Ok(Request::IssueKey {
                user: UserId(need_u64(&body, "user")?),
            })
        }),
        ("GET", ["v1", "dbms"]) => hit!(Ok(Request::DbmsLabels)),
        ("POST", ["v1", "dbms"]) => hit!(Ok(Request::AddDbms {
            entry: need::<DbmsEntry>(&body()?, "dbms entry")?,
        })),
        ("POST", ["v1", "host"]) => hit!(Ok(Request::AddHost {
            entry: need::<HostEntry>(&body()?, "host entry")?,
        })),
        ("POST", ["v1", "project", "create"]) => hit!({
            let body = body()?;
            Ok(Request::CreateProject {
                owner: UserId(need_u64(&body, "owner")?),
                title: need_str(&body, "title")?,
                synopsis: need_str(&body, "synopsis")?,
                visibility: need::<Visibility>(&body["visibility"], "visibility")?,
            })
        }),
        ("POST", ["v1", "project", p, "invite"]) => hit!({
            let body = body()?;
            Ok(Request::Invite {
                project: ProjectId(seg_id(p, "project")?),
                owner: UserId(need_u64(&body, "owner")?),
                user: UserId(need_u64(&body, "user")?),
            })
        }),
        ("POST", ["v1", "project", p, "targets"]) => hit!({
            let body = body()?;
            Ok(Request::SetTargets {
                project: ProjectId(seg_id(p, "project")?),
                actor: UserId(need_u64(&body, "actor")?),
                dbms_labels: need_strings(&body, "dbms_labels")?,
                hosts: need_strings(&body, "hosts")?,
            })
        }),
        ("POST", ["v1", "project", p, "comment"]) => hit!({
            let body = body()?;
            Ok(Request::Comment {
                project: ProjectId(seg_id(p, "project")?),
                author: UserId(need_u64(&body, "author")?),
                text: need_str(&body, "text")?,
            })
        }),
        ("POST", ["v1", "project", p, "take_down"]) => hit!(Ok(Request::TakeDown {
            project: ProjectId(seg_id(p, "project")?),
        })),
        ("GET", ["v1", "project", p, "role"]) => hit!(Ok(Request::RoleOf {
            project: ProjectId(seg_id(p, "project")?),
            user: UserId(query_u64(req, "user")?),
        })),
        ("POST", ["v1", "project", p, "experiment"]) => hit!({
            let body = body()?;
            let grammar = match &body["grammar"] {
                Value::Null => None,
                v => Some(
                    v.as_str()
                        .ok_or_else(|| {
                            PlatformError::Invalid("grammar must be a string".into())
                        })?
                        .to_string(),
                ),
            };
            Ok(Request::AddExperiment {
                project: ProjectId(seg_id(p, "project")?),
                actor: UserId(need_u64(&body, "actor")?),
                title: need_str(&body, "title")?,
                baseline_sql: need_str(&body, "baseline_sql")?,
                grammar,
                template_cap: need_u64(&body, "template_cap")?,
                pool_cap: need_u64(&body, "pool_cap")?,
            })
        }),
        ("POST", ["v1", "project", p, "experiment", e, "seed"]) => hit!({
            let body = body()?;
            Ok(Request::SeedPool {
                project: ProjectId(seg_id(p, "project")?),
                experiment: ExperimentId(seg_id(e, "experiment")?),
                actor: UserId(need_u64(&body, "actor")?),
                n_random: need_u64(&body, "n_random")?,
                seed: need_u64(&body, "seed")?,
            })
        }),
        ("POST", ["v1", "project", p, "experiment", e, "morph"]) => hit!({
            let body = body()?;
            let strategy = match &body["strategy"] {
                Value::Null => None,
                v => Some(
                    v.as_str()
                        .ok_or_else(|| {
                            PlatformError::Invalid("strategy must be a string".into())
                        })?
                        .to_string(),
                ),
            };
            Ok(Request::MorphPool {
                project: ProjectId(seg_id(p, "project")?),
                experiment: ExperimentId(seg_id(e, "experiment")?),
                actor: UserId(need_u64(&body, "actor")?),
                strategy,
                steps: need_u64(&body, "steps")?,
                seed: need_u64(&body, "seed")?,
            })
        }),
        ("POST", ["v1", "project", p, "experiment", e, "enqueue"]) => hit!({
            let body = body()?;
            Ok(Request::EnqueueExperiment {
                project: ProjectId(seg_id(p, "project")?),
                experiment: ExperimentId(seg_id(e, "experiment")?),
                actor: UserId(need_u64(&body, "actor")?),
            })
        }),
        ("GET", ["v1", "project", p, "results"]) => hit!(Ok(Request::ResultsForKey {
            project: ProjectId(seg_id(p, "project")?),
            key: ContributorKey(
                req.query_param("key")
                    .ok_or_else(|| {
                        PlatformError::Invalid("missing query parameter \"key\"".into())
                    })?
                    .to_string(),
            ),
        })),
        ("GET", ["v1", "project", p, "csv"]) => hit!(Ok(Request::ExportCsv {
            project: ProjectId(seg_id(p, "project")?),
            viewer: UserId(query_u64(req, "viewer")?),
        })),
        ("POST", ["v1", "result", "hide"]) => hit!({
            let body = body()?;
            Ok(Request::HideResult {
                project: ProjectId(need_u64(&body, "project")?),
                actor: UserId(need_u64(&body, "actor")?),
                index: need_u64(&body, "index")?,
                hidden: need_bool(&body, "hidden")?,
            })
        }),
        ("POST", ["v1", "task", "request"]) => hit!({
            let body = body()?;
            let claim = match &body["claim"] {
                Value::Null => None,
                v => Some(v.as_i64().filter(|n| *n >= 0).map(|n| n as u64).ok_or_else(
                    || PlatformError::Invalid("claim must be a number".into()),
                )?),
            };
            Ok(Request::RequestTask {
                key: ContributorKey(need_str(&body, "key")?),
                dbms_label: need_str(&body, "dbms_label")?,
                host: need_str(&body, "host")?,
                claim,
            })
        }),
        ("POST", ["v1", "result", "report"]) => hit!({
            let body = body()?;
            Ok(Request::ReportResult {
                key: ContributorKey(need_str(&body, "key")?),
                task: TaskId(need_u64(&body, "task")?),
                outcome: need::<RunOutcome>(&body["outcome"], "run outcome")?,
            })
        }),
        ("POST", ["v1", "result", "report_batch"]) => hit!({
            let body = body()?;
            let reports = body["reports"]
                .as_array()
                .ok_or_else(|| {
                    PlatformError::Invalid("missing array field \"reports\"".into())
                })?
                .iter()
                .map(|entry| {
                    Ok((
                        TaskId(need_u64(entry, "task")?),
                        need::<RunOutcome>(&entry["outcome"], "run outcome")?,
                    ))
                })
                .collect::<PlatformResult<Vec<_>>>()?;
            Ok(Request::ReportBatch {
                key: ContributorKey(need_str(&body, "key")?),
                reports,
            })
        }),
        ("GET", ["v1", "queue", "summary"]) => hit!(Ok(Request::QueueSummary)),
        ("POST", ["v1", "queue", "reap"]) => hit!(Ok(Request::ReapStuck {
            timeout_ms: need_u64(&body()?, "timeout_ms")?,
        })),
        ("POST", ["v1", "task", t, "requeue"]) => hit!(Ok(Request::Requeue {
            task: TaskId(seg_id(t, "task")?),
        })),
        ("GET", ["v1", "metrics"]) => hit!(Ok(Request::Metrics)),
        ("POST", ["v1", "execute"]) => hit!({
            let body = body()?;
            Ok(Request::Execute {
                sql: need_str(&body, "sql")?,
                fingerprint: fingerprint_of(&body["fingerprint"])?,
            })
        }),
        _ => None,
    }
}

/// Encode one dispatched outcome as the v1 HTTP response. The JSON
/// shapes here are the crate's original `/v1` contract, unchanged.
pub fn encode_reply(outcome: &PlatformResult<Reply>) -> WireResponse {
    let reply = match outcome {
        Ok(reply) => reply,
        Err(e) => return error_response(status_of(e), e),
    };
    match reply {
        Reply::Unit => ok(obj(vec![])),
        Reply::User(u) => ok(obj(vec![("user", u.0.into())])),
        Reply::Key(k) => ok(obj(vec![("key", k.0.clone().into())])),
        Reply::Labels(labels) => ok(obj(vec![("labels", strings(labels))])),
        Reply::Project(p) => ok(obj(vec![("project", p.0.into())])),
        Reply::Role(role) => ok(obj(vec![("role", role.to_value())])),
        Reply::Experiment(e) => ok(obj(vec![("experiment", e.0.into())])),
        Reply::Seeded(n) => ok(obj(vec![("seeded", (*n).into())])),
        Reply::Added(ids) => ok(obj(vec![(
            "added",
            Value::Array(ids.iter().map(|q| q.0.into()).collect()),
        )])),
        Reply::Enqueued(n) => ok(obj(vec![("enqueued", (*n).into())])),
        Reply::Results(records) => ok(obj(vec![(
            "results",
            Value::Array(records.iter().map(|r| r.to_value()).collect()),
        )])),
        Reply::Csv(csv) => WireResponse::text(200, csv.clone()),
        Reply::Handout(task) => ok(obj(vec![(
            "task",
            match task {
                Some(t) => t.to_value(),
                None => Value::Null,
            },
        )])),
        Reply::Index(n) => ok(obj(vec![("index", (*n).into())])),
        Reply::Batch(indices) => ok(obj(vec![(
            "indices",
            Value::Array(indices.iter().map(|n| (*n).into()).collect()),
        )])),
        Reply::Queue(summary) => ok(summary.to_value()),
        Reply::Reaped(ids) => ok(obj(vec![(
            "reaped",
            Value::Array(ids.iter().map(|t| t.0.into()).collect()),
        )])),
        Reply::Metrics(snapshot) => ok(snapshot.to_value()),
        Reply::Execution(out) => ok(out.to_value()),
    }
}

// ------------------------------------------------------------ client side

/// Encode one typed request as the v1 HTTP request the server routes.
pub fn encode_request(op: &Request) -> WireRequest {
    fn get(path: String, query: Vec<(&str, String)>) -> WireRequest {
        WireRequest {
            method: "GET".into(),
            path,
            query: query.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            body: Vec::new(),
        }
    }
    fn post(path: String, body: Value) -> WireRequest {
        WireRequest {
            method: "POST".into(),
            path,
            query: Vec::new(),
            body: serde_json::to_string(&body)
                .expect("request body serializes")
                .into_bytes(),
        }
    }

    match op {
        Request::RegisterUser { nickname, email } => post(
            "/v1/user/register".into(),
            obj(vec![
                ("nickname", nickname.clone().into()),
                ("email", email.clone().into()),
            ]),
        ),
        Request::IssueKey { user } => post(
            "/v1/user/key".into(),
            obj(vec![("user", user.0.into())]),
        ),
        Request::AddDbms { entry } => post("/v1/dbms".into(), entry.to_value()),
        Request::AddHost { entry } => post("/v1/host".into(), entry.to_value()),
        Request::DbmsLabels => get("/v1/dbms".into(), vec![]),
        Request::CreateProject {
            owner,
            title,
            synopsis,
            visibility,
        } => post(
            "/v1/project/create".into(),
            obj(vec![
                ("owner", owner.0.into()),
                ("title", title.clone().into()),
                ("synopsis", synopsis.clone().into()),
                ("visibility", visibility.to_value()),
            ]),
        ),
        Request::Invite { project, owner, user } => post(
            format!("/v1/project/{}/invite", project.0),
            obj(vec![("owner", owner.0.into()), ("user", user.0.into())]),
        ),
        Request::SetTargets {
            project,
            actor,
            dbms_labels,
            hosts,
        } => post(
            format!("/v1/project/{}/targets", project.0),
            obj(vec![
                ("actor", actor.0.into()),
                ("dbms_labels", strings(dbms_labels)),
                ("hosts", strings(hosts)),
            ]),
        ),
        Request::Comment { project, author, text } => post(
            format!("/v1/project/{}/comment", project.0),
            obj(vec![
                ("author", author.0.into()),
                ("text", text.clone().into()),
            ]),
        ),
        Request::TakeDown { project } => post(
            format!("/v1/project/{}/take_down", project.0),
            obj(vec![]),
        ),
        Request::RoleOf { project, user } => get(
            format!("/v1/project/{}/role", project.0),
            vec![("user", user.0.to_string())],
        ),
        Request::AddExperiment {
            project,
            actor,
            title,
            baseline_sql,
            grammar,
            template_cap,
            pool_cap,
        } => post(
            format!("/v1/project/{}/experiment", project.0),
            obj(vec![
                ("actor", actor.0.into()),
                ("title", title.clone().into()),
                ("baseline_sql", baseline_sql.clone().into()),
                (
                    "grammar",
                    match grammar {
                        Some(src) => src.clone().into(),
                        None => Value::Null,
                    },
                ),
                ("template_cap", (*template_cap).into()),
                ("pool_cap", (*pool_cap).into()),
            ]),
        ),
        Request::SeedPool {
            project,
            experiment,
            actor,
            n_random,
            seed,
        } => post(
            format!("/v1/project/{}/experiment/{}/seed", project.0, experiment.0),
            obj(vec![
                ("actor", actor.0.into()),
                ("n_random", (*n_random).into()),
                ("seed", (*seed).into()),
            ]),
        ),
        Request::MorphPool {
            project,
            experiment,
            actor,
            strategy,
            steps,
            seed,
        } => post(
            format!("/v1/project/{}/experiment/{}/morph", project.0, experiment.0),
            obj(vec![
                ("actor", actor.0.into()),
                (
                    "strategy",
                    match strategy {
                        Some(name) => name.clone().into(),
                        None => Value::Null,
                    },
                ),
                ("steps", (*steps).into()),
                ("seed", (*seed).into()),
            ]),
        ),
        Request::EnqueueExperiment {
            project,
            experiment,
            actor,
        } => post(
            format!(
                "/v1/project/{}/experiment/{}/enqueue",
                project.0, experiment.0
            ),
            obj(vec![("actor", actor.0.into())]),
        ),
        Request::ResultsForKey { project, key } => get(
            format!("/v1/project/{}/results", project.0),
            vec![("key", key.0.clone())],
        ),
        Request::ExportCsv { project, viewer } => get(
            format!("/v1/project/{}/csv", project.0),
            vec![("viewer", viewer.0.to_string())],
        ),
        Request::HideResult {
            project,
            actor,
            index,
            hidden,
        } => post(
            "/v1/result/hide".into(),
            obj(vec![
                ("project", project.0.into()),
                ("actor", actor.0.into()),
                ("index", (*index).into()),
                ("hidden", (*hidden).into()),
            ]),
        ),
        Request::RequestTask {
            key,
            dbms_label,
            host,
            claim,
        } => post(
            "/v1/task/request".into(),
            obj(vec![
                ("key", key.0.clone().into()),
                ("dbms_label", dbms_label.clone().into()),
                ("host", host.clone().into()),
                (
                    "claim",
                    match claim {
                        Some(n) => (*n).into(),
                        None => Value::Null,
                    },
                ),
            ]),
        ),
        Request::ReportResult { key, task, outcome } => post(
            "/v1/result/report".into(),
            obj(vec![
                ("key", key.0.clone().into()),
                ("task", task.0.into()),
                ("outcome", outcome.to_value()),
            ]),
        ),
        Request::ReportBatch { key, reports } => post(
            "/v1/result/report_batch".into(),
            obj(vec![
                ("key", key.0.clone().into()),
                (
                    "reports",
                    Value::Array(
                        reports
                            .iter()
                            .map(|(task, outcome)| {
                                obj(vec![
                                    ("task", task.0.into()),
                                    ("outcome", outcome.to_value()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        Request::QueueSummary => get("/v1/queue/summary".into(), vec![]),
        Request::ReapStuck { timeout_ms } => post(
            "/v1/queue/reap".into(),
            obj(vec![("timeout_ms", (*timeout_ms).into())]),
        ),
        Request::Requeue { task } => post(
            format!("/v1/task/{}/requeue", task.0),
            obj(vec![]),
        ),
        Request::Metrics => get("/v1/metrics".into(), vec![]),
        Request::Execute { sql, fingerprint } => post(
            "/v1/execute".into(),
            obj(vec![
                ("sql", sql.clone().into()),
                (
                    "fingerprint",
                    match fingerprint {
                        Some(fp) => hex_fp(*fp),
                        None => Value::Null,
                    },
                ),
            ]),
        ),
    }
}

/// Decode the v1 HTTP response to `op` back into a typed outcome. Error
/// statuses reconstruct the exact [`PlatformError`]; malformed success
/// bodies are [`PlatformError::Transport`] (the peer misbehaved).
pub fn decode_reply(op: &Request, status: u16, body: &[u8]) -> PlatformResult<Reply> {
    let text = std::str::from_utf8(body)
        .map_err(|_| PlatformError::Transport("response body is not UTF-8".into()))?;
    if !(200..300).contains(&status) {
        let value: Value = serde_json::from_str(text).map_err(|e| {
            PlatformError::Transport(format!("undecodable error body (status {status}): {e}"))
        })?;
        let err = PlatformError::from_value(&value)
            .map_err(|e| PlatformError::Transport(format!("unrecognized error body: {e}")))?;
        return Err(err);
    }
    // CSV is the one raw-text response.
    if let Request::ExportCsv { .. } = op {
        return Ok(Reply::Csv(text.to_string()));
    }
    let v: Value = serde_json::from_str(text)
        .map_err(|e| PlatformError::Transport(format!("response is not JSON: {e}")))?;
    let bad = |what: &str, e: String| PlatformError::Transport(format!("bad {what}: {e}"));
    Ok(match op {
        Request::RegisterUser { .. } => Reply::User(UserId(super::field_u64(&v, "user")?)),
        Request::IssueKey { .. } => Reply::Key(ContributorKey(super::field_str(&v, "key")?)),
        Request::AddDbms { .. }
        | Request::AddHost { .. }
        | Request::Invite { .. }
        | Request::SetTargets { .. }
        | Request::Comment { .. }
        | Request::TakeDown { .. }
        | Request::HideResult { .. }
        | Request::Requeue { .. } => Reply::Unit,
        Request::DbmsLabels => Reply::Labels(
            need_strings(&v, "labels").map_err(|e| {
                PlatformError::Transport(format!("response missing \"labels\": {e}"))
            })?,
        ),
        Request::CreateProject { .. } => {
            Reply::Project(ProjectId(super::field_u64(&v, "project")?))
        }
        Request::RoleOf { .. } => {
            Reply::Role(Role::from_value(&v["role"]).map_err(|e| bad("role", e))?)
        }
        Request::AddExperiment { .. } => {
            Reply::Experiment(ExperimentId(super::field_u64(&v, "experiment")?))
        }
        Request::SeedPool { .. } => Reply::Seeded(super::field_u64(&v, "seeded")?),
        Request::MorphPool { .. } => Reply::Added(
            super::u64_array(&v, "added")?.into_iter().map(QueryId).collect(),
        ),
        Request::EnqueueExperiment { .. } => Reply::Enqueued(super::field_u64(&v, "enqueued")?),
        Request::ResultsForKey { .. } => Reply::Results(
            v["results"]
                .as_array()
                .ok_or_else(|| PlatformError::Transport("response missing \"results\"".into()))?
                .iter()
                .map(ResultRecord::from_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| bad("result record", e))?,
        ),
        Request::ExportCsv { .. } => unreachable!("handled above"),
        Request::RequestTask { .. } => Reply::Handout(match &v["task"] {
            Value::Null => None,
            t => Some(Task::from_value(t).map_err(|e| bad("task", e))?),
        }),
        Request::ReportResult { .. } => Reply::Index(super::field_u64(&v, "index")?),
        Request::ReportBatch { .. } => Reply::Batch(super::u64_array(&v, "indices")?),
        Request::QueueSummary => Reply::Queue(
            QueueSummary::from_value(&v).map_err(|e| bad("queue summary", e))?,
        ),
        Request::ReapStuck { .. } => Reply::Reaped(
            super::u64_array(&v, "reaped")?.into_iter().map(TaskId).collect(),
        ),
        Request::Metrics => Reply::Metrics(
            MetricsSnapshot::from_value(&v).map_err(|e| bad("metrics snapshot", e))?,
        ),
        Request::Execute { .. } => Reply::Execution(
            ExecOutcome::from_value(&v).map_err(|e| bad("exec outcome", e))?,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueSummary;

    fn get(path: &str, query: Vec<(&str, &str)>) -> WireRequest {
        WireRequest {
            method: "GET".into(),
            path: path.into(),
            query: query
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &Value) -> WireRequest {
        WireRequest {
            method: "POST".into(),
            path: path.into(),
            query: Vec::new(),
            body: serde_json::to_string(body).unwrap().into_bytes(),
        }
    }

    fn body_of(resp: &WireResponse) -> Value {
        serde_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    #[test]
    fn management_surface_routes_end_to_end() {
        let server = SqalpelServer::new();
        let resp = handle(
            &server,
            None,
            &post(
                "/v1/user/register",
                &obj(vec![("nickname", "mlk".into()), ("email", "mlk@cwi.nl".into())]),
            ),
        );
        assert_eq!(resp.status, 200);
        let owner = body_of(&resp)["user"].as_i64().unwrap();

        let resp = handle(
            &server,
            None,
            &post(
                "/v1/project/create",
                &obj(vec![
                    ("owner", owner.into()),
                    ("title", "demo".into()),
                    ("synopsis", "api test".into()),
                    ("visibility", "public".into()),
                ]),
            ),
        );
        assert_eq!(resp.status, 200);
        let project = body_of(&resp)["project"].as_i64().unwrap();

        let resp = handle(
            &server,
            None,
            &get(
                &format!("/v1/project/{project}/role"),
                vec![("user", &owner.to_string())],
            ),
        );
        assert_eq!(body_of(&resp)["role"].as_str(), Some("owner"));

        let resp = handle(&server, None, &get("/v1/queue/summary", vec![]));
        let summary: QueueSummary = QueueSummary::from_value(&body_of(&resp)).unwrap();
        assert_eq!(summary.total(), 0);
    }

    #[test]
    fn metrics_endpoint_reports_instrumented_routes() {
        let server = SqalpelServer::new();
        handle(&server, None, &get("/v1/queue/summary", vec![]));
        // Numeric segments collapse to one :id label per route.
        handle(&server, None, &get("/v1/project/7/role", vec![("user", "1")]));
        handle(&server, None, &get("/v1/project/9/role", vec![("user", "1")]));
        let resp = handle(&server, None, &get("/v1/metrics", vec![]));
        assert_eq!(resp.status, 200);
        let snap = crate::metrics::MetricsSnapshot::from_value(&body_of(&resp)).unwrap();
        assert_eq!(snap.counter("wire.route.GET /v1/queue/summary"), Some(1));
        assert_eq!(snap.counter("wire.route.GET /v1/project/:id/role"), Some(2));
        assert_eq!(snap.counter("wire.requests"), Some(3));
        assert_eq!(
            snap.histogram("wire.latency.GET /v1/queue/summary")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn errors_map_to_statuses_and_typed_bodies() {
        let server = SqalpelServer::new();
        // Unknown project → 404, reconstructable as UnknownProject.
        let resp = handle(
            &server,
            None,
            &post("/v1/project/99/take_down", &obj(vec![])),
        );
        assert_eq!(resp.status, 404);
        let err = PlatformError::from_value(&body_of(&resp)).unwrap();
        assert_eq!(err, PlatformError::UnknownProject(99));

        // Malformed body → 400 invalid.
        let mut req = post("/v1/user/register", &obj(vec![]));
        req.body = b"not json".to_vec();
        let resp = handle(&server, None, &req);
        assert_eq!(resp.status, 400);
        assert_eq!(body_of(&resp)["code"].as_str(), Some("invalid"));

        // Unknown endpoint → 404.
        let resp = handle(&server, None, &get("/v1/no/such/thing", vec![]));
        assert_eq!(resp.status, 404);

        // Execute without a backend → 400 (recognized endpoint, no engine).
        let resp = handle(
            &server,
            None,
            &post("/v1/execute", &obj(vec![("sql", "select 1 from t".into())])),
        );
        assert_eq!(resp.status, 400);

        // Bad contributor key → 403.
        let resp = handle(
            &server,
            None,
            &post(
                "/v1/task/request",
                &obj(vec![
                    ("key", "ck_bogus".into()),
                    ("dbms_label", "rowstore-2.0".into()),
                    ("host", "bench-server".into()),
                ]),
            ),
        );
        assert_eq!(resp.status, 403);
        assert_eq!(body_of(&resp)["code"].as_str(), Some("access_denied"));
    }

    #[test]
    fn client_codec_round_trips_through_server_codec() {
        // encode_request → decode_http must be the identity on ops, and
        // encode_reply → decode_reply the identity on outcomes.
        let ops = vec![
            Request::RegisterUser { nickname: "a".into(), email: "b".into() },
            Request::RoleOf { project: ProjectId(7), user: UserId(3) },
            Request::QueueSummary,
            Request::Execute { sql: "select 1 from t".into(), fingerprint: Some(0xbeef) },
        ];
        for op in ops {
            let http = encode_request(&op);
            let back = decode_http(&http).unwrap();
            assert_eq!(format!("{back:?}"), format!("{op:?}"));
        }
        let resp = encode_reply(&Ok(Reply::Seeded(9)));
        match decode_reply(
            &Request::SeedPool {
                project: ProjectId(1),
                experiment: ExperimentId(0),
                actor: UserId(1),
                n_random: 1,
                seed: 1,
            },
            resp.status,
            &resp.body,
        )
        .unwrap()
        {
            Reply::Seeded(n) => assert_eq!(n, 9),
            other => panic!("{other:?}"),
        }
        let resp = encode_reply(&Err(PlatformError::PoolFull(3)));
        assert_eq!(resp.status, 409);
        let err = decode_reply(&Request::QueueSummary, resp.status, &resp.body).unwrap_err();
        assert_eq!(err, PlatformError::PoolFull(3));
    }
}
