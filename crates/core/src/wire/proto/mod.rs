//! The protocol "brain": pure, I/O-free codecs and versioned DTOs.
//!
//! Following the qail layering, everything that *decides bytes* lives
//! here — [`v1`] is the JSON-over-HTTP codec, [`v2`] the length-framed
//! binary codec — while everything that *moves bytes* lives in
//! [`crate::wire::transport`]. Both protocol versions encode the same
//! typed [`Request`]/[`Reply`] surface and are dispatched by the same
//! [`crate::wire::dispatch`] function, so their behavior is equivalent
//! by construction; the differential suite checks the decoded results
//! are byte-identical.
//!
//! Errors are unified across protocols by [`ErrorCode`]: one stable
//! numeric code per [`PlatformError`] variant, carried as an HTTP status
//! plus JSON body on v1 and as a status byte plus typed detail on v2 —
//! either transport reconstructs the exact typed error.

pub mod v1;
pub mod v2;

use crate::catalog::{DbmsEntry, HostEntry, Visibility};
use crate::driver::RunOutcome;
use crate::error::{PlatformError, PlatformResult};
use crate::metrics::MetricsSnapshot;
use crate::pool::QueryId;
use crate::project::{ExperimentId, ProjectId, Role};
use crate::queue::{QueueSummary, Task, TaskId};
use crate::results::ResultRecord;
use crate::user::{ContributorKey, UserId};
use serde::{Deserialize, Serialize, Value};

// ------------------------------------------------------------ error codes

/// The unified error-code enum shared by both protocols. Each variant
/// maps 1:1 to a [`PlatformError`] variant, a stable string code (the v1
/// JSON `"code"` field), an HTTP status (the v1 status line) and a wire
/// byte (the v2 response status byte). Codes never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    Invalid = 1,
    UnknownUser = 2,
    UnknownProject = 3,
    UnknownExperiment = 4,
    UnknownTask = 5,
    UnknownQuery = 6,
    AccessDenied = 7,
    Grammar = 8,
    PoolFull = 9,
    Publication = 10,
    Transport = 11,
    Throttled = 12,
}

impl ErrorCode {
    pub fn of(err: &PlatformError) -> ErrorCode {
        match err {
            PlatformError::Invalid(_) => ErrorCode::Invalid,
            PlatformError::UnknownUser(_) => ErrorCode::UnknownUser,
            PlatformError::UnknownProject(_) => ErrorCode::UnknownProject,
            PlatformError::UnknownExperiment(_) => ErrorCode::UnknownExperiment,
            PlatformError::UnknownTask(_) => ErrorCode::UnknownTask,
            PlatformError::UnknownQuery(_) => ErrorCode::UnknownQuery,
            PlatformError::AccessDenied(_) => ErrorCode::AccessDenied,
            PlatformError::Grammar(_) => ErrorCode::Grammar,
            PlatformError::PoolFull(_) => ErrorCode::PoolFull,
            PlatformError::Publication(_) => ErrorCode::Publication,
            PlatformError::Transport(_) => ErrorCode::Transport,
            PlatformError::Throttled(_) => ErrorCode::Throttled,
        }
    }

    /// The HTTP status carrying this error on v1. Part of the protocol.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::Invalid => 400,
            ErrorCode::UnknownUser
            | ErrorCode::UnknownProject
            | ErrorCode::UnknownExperiment
            | ErrorCode::UnknownTask
            | ErrorCode::UnknownQuery => 404,
            ErrorCode::AccessDenied => 403,
            ErrorCode::Grammar => 422,
            ErrorCode::PoolFull => 409,
            ErrorCode::Publication => 451,
            ErrorCode::Transport => 500,
            ErrorCode::Throttled => 429,
        }
    }

    /// The stable string code (identical to [`PlatformError::code`]).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Invalid => "invalid",
            ErrorCode::UnknownUser => "unknown_user",
            ErrorCode::UnknownProject => "unknown_project",
            ErrorCode::UnknownExperiment => "unknown_experiment",
            ErrorCode::UnknownTask => "unknown_task",
            ErrorCode::UnknownQuery => "unknown_query",
            ErrorCode::AccessDenied => "access_denied",
            ErrorCode::Grammar => "grammar",
            ErrorCode::PoolFull => "pool_full",
            ErrorCode::Publication => "publication",
            ErrorCode::Transport => "transport",
            ErrorCode::Throttled => "throttled",
        }
    }

    /// The v2 status byte (never 0 — that means OK).
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Invalid,
            2 => ErrorCode::UnknownUser,
            3 => ErrorCode::UnknownProject,
            4 => ErrorCode::UnknownExperiment,
            5 => ErrorCode::UnknownTask,
            6 => ErrorCode::UnknownQuery,
            7 => ErrorCode::AccessDenied,
            8 => ErrorCode::Grammar,
            9 => ErrorCode::PoolFull,
            10 => ErrorCode::Publication,
            11 => ErrorCode::Transport,
            12 => ErrorCode::Throttled,
            _ => return None,
        })
    }
}

// -------------------------------------------------------- typed requests

/// One platform operation, transport-agnostic. Each protocol version
/// encodes this enum its own way; [`crate::wire::dispatch::dispatch`]
/// executes it against the server, so v1 and v2 cannot drift apart.
#[derive(Debug, Clone)]
pub enum Request {
    RegisterUser { nickname: String, email: String },
    IssueKey { user: UserId },
    AddDbms { entry: DbmsEntry },
    AddHost { entry: HostEntry },
    DbmsLabels,
    CreateProject {
        owner: UserId,
        title: String,
        synopsis: String,
        visibility: Visibility,
    },
    Invite { project: ProjectId, owner: UserId, user: UserId },
    SetTargets {
        project: ProjectId,
        actor: UserId,
        dbms_labels: Vec<String>,
        hosts: Vec<String>,
    },
    Comment { project: ProjectId, author: UserId, text: String },
    TakeDown { project: ProjectId },
    RoleOf { project: ProjectId, user: UserId },
    AddExperiment {
        project: ProjectId,
        actor: UserId,
        title: String,
        baseline_sql: String,
        /// Grammar source text, parsed server-side.
        grammar: Option<String>,
        template_cap: u64,
        pool_cap: u64,
    },
    SeedPool {
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
        n_random: u64,
        seed: u64,
    },
    MorphPool {
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
        /// Strategy name, resolved server-side.
        strategy: Option<String>,
        steps: u64,
        seed: u64,
    },
    EnqueueExperiment {
        project: ProjectId,
        experiment: ExperimentId,
        actor: UserId,
    },
    ResultsForKey { project: ProjectId, key: ContributorKey },
    ExportCsv { project: ProjectId, viewer: UserId },
    HideResult {
        project: ProjectId,
        actor: UserId,
        index: u64,
        hidden: bool,
    },
    RequestTask {
        key: ContributorKey,
        dbms_label: String,
        host: String,
        /// Claim nonce. `None` keeps the legacy idempotent semantics:
        /// if the key already holds a task matching the target, that
        /// task is re-handed-out. `Some(n)` scopes the idempotency to
        /// this nonce, so a bulk client can hold several tasks of the
        /// same target at once — its retries reuse the nonce and still
        /// get the same task back, but a *fresh* nonce gets a fresh
        /// checkout.
        claim: Option<u64>,
    },
    ReportResult {
        key: ContributorKey,
        task: TaskId,
        outcome: RunOutcome,
    },
    /// COPY-style bulk report: a whole experiment's outcomes in one
    /// acknowledged exchange. On v2 the reports stream as columnar
    /// continuation frames terminated by a summary frame; on v1 they
    /// travel as one JSON body. The reply is [`Reply::Batch`] — the
    /// accepted record index per report, in input order.
    ReportBatch {
        key: ContributorKey,
        reports: Vec<(TaskId, RunOutcome)>,
    },
    QueueSummary,
    ReapStuck { timeout_ms: u64 },
    Requeue { task: TaskId },
    Metrics,
    /// Execute SQL on the server's attached target system. With a
    /// fingerprint, a plan-cache hit skips parse/bind/rewrite — the v2
    /// `ExecuteByFingerprint` fast path (also exposed on v1 as
    /// `POST /v1/execute` so the differential suite covers it).
    Execute { sql: String, fingerprint: Option<u64> },
}

impl Request {
    /// A bounded-cardinality metric label for this op.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::RegisterUser { .. } => "register_user",
            Request::IssueKey { .. } => "issue_key",
            Request::AddDbms { .. } => "add_dbms",
            Request::AddHost { .. } => "add_host",
            Request::DbmsLabels => "dbms_labels",
            Request::CreateProject { .. } => "create_project",
            Request::Invite { .. } => "invite",
            Request::SetTargets { .. } => "set_targets",
            Request::Comment { .. } => "comment",
            Request::TakeDown { .. } => "take_down",
            Request::RoleOf { .. } => "role_of",
            Request::AddExperiment { .. } => "add_experiment",
            Request::SeedPool { .. } => "seed_pool",
            Request::MorphPool { .. } => "morph_pool",
            Request::EnqueueExperiment { .. } => "enqueue_experiment",
            Request::ResultsForKey { .. } => "results_for_key",
            Request::ExportCsv { .. } => "export_csv",
            Request::HideResult { .. } => "hide_result",
            Request::RequestTask { .. } => "request_task",
            Request::ReportResult { .. } => "report_result",
            Request::ReportBatch { .. } => "report_batch",
            Request::QueueSummary => "queue_summary",
            Request::ReapStuck { .. } => "reap_stuck",
            Request::Requeue { .. } => "requeue",
            Request::Metrics => "metrics",
            Request::Execute { .. } => "execute",
        }
    }
}

// ---------------------------------------------------------- typed replies

/// The result of one dispatched [`Request`], transport-agnostic.
#[derive(Debug, Clone)]
pub enum Reply {
    Unit,
    User(UserId),
    Key(ContributorKey),
    Labels(Vec<String>),
    Project(ProjectId),
    Role(Role),
    Experiment(ExperimentId),
    Seeded(u64),
    Added(Vec<QueryId>),
    Enqueued(u64),
    Results(Vec<ResultRecord>),
    Csv(String),
    Handout(Option<Task>),
    Index(u64),
    /// Accepted record index per bulk report, in input order.
    Batch(Vec<u64>),
    Queue(QueueSummary),
    Reaped(Vec<TaskId>),
    Metrics(MetricsSnapshot),
    Execution(ExecOutcome),
}

// -------------------------------------------------- execution result DTOs

/// How an [`Request::Execute`] interacted with the server's plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    Hit,
    Miss,
    /// The cached plan was stale against newer cardinality feedback and
    /// was re-planned with observed actuals before executing.
    Reoptimized,
    Bypass,
}

impl CacheStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Reoptimized => "reoptimized",
            CacheStatus::Bypass => "bypass",
        }
    }

    pub fn parse(s: &str) -> Result<CacheStatus, String> {
        match s {
            "hit" => Ok(CacheStatus::Hit),
            "miss" => Ok(CacheStatus::Miss),
            "reoptimized" => Ok(CacheStatus::Reoptimized),
            "bypass" => Ok(CacheStatus::Bypass),
            other => Err(format!("unknown cache status {other:?}")),
        }
    }

    pub fn as_u8(self) -> u8 {
        match self {
            CacheStatus::Hit => 0,
            CacheStatus::Miss => 1,
            CacheStatus::Bypass => 2,
            CacheStatus::Reoptimized => 3,
        }
    }

    pub fn from_u8(b: u8) -> Result<CacheStatus, String> {
        match b {
            0 => Ok(CacheStatus::Hit),
            1 => Ok(CacheStatus::Miss),
            2 => Ok(CacheStatus::Bypass),
            3 => Ok(CacheStatus::Reoptimized),
            other => Err(format!("bad cache status byte {other}")),
        }
    }
}

/// A typed cell value in a wire result set — the engine's value domain,
/// encoded losslessly by both protocols (v1 uses tagged JSON arrays so
/// ints never collapse into floats; v2 uses typed binary vectors).
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    /// Fixed-point decimal: `raw / 10^scale`. The raw i128 travels as a
    /// decimal string on v1 and as 16 LE bytes on v2.
    Decimal { raw: i128, scale: u8 },
    Str(String),
    /// Days since the epoch (the engine's date representation).
    Date(i32),
    Interval { months: i32, days: i32 },
}

impl From<&sqalpel_engine::Value> for WireValue {
    fn from(v: &sqalpel_engine::Value) -> WireValue {
        use sqalpel_engine::Value as E;
        match v {
            E::Null => WireValue::Null,
            E::Bool(b) => WireValue::Bool(*b),
            E::Int(i) => WireValue::Int(*i),
            E::Float(f) => WireValue::Float(*f),
            E::Decimal { raw, scale } => WireValue::Decimal { raw: *raw, scale: *scale },
            E::Str(s) => WireValue::Str(s.clone()),
            E::Date(d) => WireValue::Date(*d),
            E::Interval { months, days } => WireValue::Interval { months: *months, days: *days },
        }
    }
}

impl From<&WireValue> for sqalpel_engine::Value {
    fn from(v: &WireValue) -> sqalpel_engine::Value {
        use sqalpel_engine::Value as E;
        match v {
            WireValue::Null => E::Null,
            WireValue::Bool(b) => E::Bool(*b),
            WireValue::Int(i) => E::Int(*i),
            WireValue::Float(f) => E::Float(*f),
            WireValue::Decimal { raw, scale } => E::Decimal { raw: *raw, scale: *scale },
            WireValue::Str(s) => E::Str(s.clone()),
            WireValue::Date(d) => E::Date(*d),
            WireValue::Interval { months, days } => E::Interval { months: *months, days: *days },
        }
    }
}

impl Serialize for WireValue {
    fn to_value(&self) -> Value {
        match self {
            WireValue::Null => Value::Null,
            WireValue::Bool(b) => Value::Array(vec!["b".into(), (*b).into()]),
            WireValue::Int(i) => Value::Array(vec!["i".into(), (*i).into()]),
            WireValue::Float(f) => Value::Array(vec!["f".into(), (*f).into()]),
            WireValue::Decimal { raw, scale } => Value::Array(vec![
                "d".into(),
                raw.to_string().into(),
                (*scale as i64).into(),
            ]),
            WireValue::Str(s) => Value::Array(vec!["s".into(), s.clone().into()]),
            WireValue::Date(d) => Value::Array(vec!["t".into(), (*d as i64).into()]),
            WireValue::Interval { months, days } => Value::Array(vec![
                "iv".into(),
                (*months as i64).into(),
                (*days as i64).into(),
            ]),
        }
    }
}

impl Deserialize for WireValue {
    fn from_value(v: &Value) -> Result<Self, String> {
        if v.is_null() {
            return Ok(WireValue::Null);
        }
        let arr = v.as_array().ok_or("wire value: expected tagged array")?;
        let tag = arr
            .first()
            .and_then(|t| t.as_str())
            .ok_or("wire value: missing tag")?;
        let at = |i: usize| arr.get(i).ok_or(format!("wire value {tag:?}: short array"));
        Ok(match tag {
            "b" => WireValue::Bool(at(1)?.as_bool().ok_or("bad bool")?),
            "i" => WireValue::Int(at(1)?.as_i64().ok_or("bad int")?),
            "f" => WireValue::Float(at(1)?.as_f64().ok_or("bad float")?),
            "d" => WireValue::Decimal {
                raw: at(1)?
                    .as_str()
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad decimal raw")?,
                scale: at(2)?.as_i64().filter(|s| (0..=255).contains(s)).ok_or("bad decimal scale")?
                    as u8,
            },
            "s" => WireValue::Str(at(1)?.as_str().ok_or("bad string")?.to_string()),
            "t" => WireValue::Date(at(1)?.as_i64().ok_or("bad date")? as i32),
            "iv" => WireValue::Interval {
                months: at(1)?.as_i64().ok_or("bad interval months")? as i32,
                days: at(2)?.as_i64().ok_or("bad interval days")? as i32,
            },
            other => return Err(format!("unknown value tag {other:?}")),
        })
    }
}

/// A result set in columnar wire form: named columns, each a typed
/// vector of cells. This is the shape both protocols ship — v2 encodes
/// each column as one typed run (tag + null bitmap + packed values)
/// instead of re-tagging every cell of every row the way JSON does.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireResultSet {
    pub columns: Vec<String>,
    /// One vector per column, all the same length.
    pub data: Vec<Vec<WireValue>>,
}

impl WireResultSet {
    pub fn rows(&self) -> usize {
        self.data.first().map_or(0, Vec::len)
    }

    /// Transpose the engine's row-major result into columnar wire form.
    pub fn from_result_set(rs: &sqalpel_engine::ResultSet) -> WireResultSet {
        let ncols = rs.columns.len();
        let mut data: Vec<Vec<WireValue>> = (0..ncols)
            .map(|_| Vec::with_capacity(rs.rows.len()))
            .collect();
        for row in &rs.rows {
            for (c, cell) in row.iter().enumerate() {
                data[c].push(WireValue::from(cell));
            }
        }
        WireResultSet {
            columns: rs.columns.clone(),
            data,
        }
    }

    /// Transpose back into the engine's row-major result.
    pub fn to_result_set(&self) -> sqalpel_engine::ResultSet {
        let nrows = self.rows();
        let rows = (0..nrows)
            .map(|r| self.data.iter().map(|col| (&col[r]).into()).collect())
            .collect();
        sqalpel_engine::ResultSet::new(self.columns.clone(), rows)
    }
}

impl Serialize for WireResultSet {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert(
            "columns".into(),
            Value::Array(self.columns.iter().map(|c| c.clone().into()).collect()),
        );
        m.insert(
            "data".into(),
            Value::Array(
                self.data
                    .iter()
                    .map(|col| Value::Array(col.iter().map(|v| v.to_value()).collect()))
                    .collect(),
            ),
        );
        Value::Object(m)
    }
}

impl Deserialize for WireResultSet {
    fn from_value(v: &Value) -> Result<Self, String> {
        let columns = v["columns"]
            .as_array()
            .ok_or("result set: missing columns")?
            .iter()
            .map(|c| c.as_str().map(str::to_string).ok_or("non-string column".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let data = v["data"]
            .as_array()
            .ok_or("result set: missing data")?
            .iter()
            .map(|col| {
                col.as_array()
                    .ok_or("result set: column is not an array".to_string())?
                    .iter()
                    .map(WireValue::from_value)
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        if data.len() != columns.len() {
            return Err("result set: column count mismatch".into());
        }
        Ok(WireResultSet { columns, data })
    }
}

/// The reply to [`Request::Execute`]: the columnar result, the
/// authoritative plan fingerprint (reusable as the cache key on the next
/// call), and how the plan cache was involved.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    pub result: WireResultSet,
    pub fingerprint: u64,
    pub cache: CacheStatus,
}

impl Serialize for ExecOutcome {
    fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert("result".into(), self.result.to_value());
        m.insert("fingerprint".into(), format!("{:016x}", self.fingerprint).into());
        m.insert("cache".into(), self.cache.as_str().into());
        Value::Object(m)
    }
}

impl Deserialize for ExecOutcome {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(ExecOutcome {
            result: WireResultSet::from_value(&v["result"])?,
            fingerprint: v["fingerprint"]
                .as_str()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or("exec outcome: missing fingerprint")?,
            cache: CacheStatus::parse(
                v["cache"].as_str().ok_or("exec outcome: missing cache")?,
            )?,
        })
    }
}

// ----------------------------------------- shared JSON helper functions
//
// The one home of the hand-written JSON plumbing that used to be
// duplicated between the server routing and the client: object
// construction on the encode side, checked field extraction on the
// decode side. Both directions of the v1 codec (and the JSON-payload
// fallbacks of v2) use these.

pub(crate) fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = serde_json::Map::new();
    for (k, v) in pairs {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

pub(crate) fn strings(items: &[String]) -> Value {
    Value::Array(items.iter().map(|s| s.clone().into()).collect())
}

pub(crate) fn need_str(body: &Value, key: &str) -> PlatformResult<String> {
    body[key]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| PlatformError::Invalid(format!("missing string field {key:?}")))
}

pub(crate) fn need_u64(body: &Value, key: &str) -> PlatformResult<u64> {
    body[key]
        .as_i64()
        .filter(|n| *n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| PlatformError::Invalid(format!("missing numeric field {key:?}")))
}

pub(crate) fn need_bool(body: &Value, key: &str) -> PlatformResult<bool> {
    body[key]
        .as_bool()
        .ok_or_else(|| PlatformError::Invalid(format!("missing bool field {key:?}")))
}

pub(crate) fn need_strings(body: &Value, key: &str) -> PlatformResult<Vec<String>> {
    body[key]
        .as_array()
        .ok_or_else(|| PlatformError::Invalid(format!("missing array field {key:?}")))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| PlatformError::Invalid(format!("{key:?} must hold strings")))
        })
        .collect()
}

pub(crate) fn need<T: Deserialize>(value: &Value, what: &str) -> PlatformResult<T> {
    T::from_value(value).map_err(|e| PlatformError::Invalid(format!("bad {what}: {e}")))
}

/// Decode-side field extraction where a missing field means the *peer*
/// misbehaved (a malformed response), not the caller.
pub(crate) fn field_u64(v: &Value, key: &str) -> PlatformResult<u64> {
    v[key]
        .as_i64()
        .filter(|n| *n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| PlatformError::Transport(format!("response missing {key:?}")))
}

pub(crate) fn field_str(v: &Value, key: &str) -> PlatformResult<String> {
    v[key]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| PlatformError::Transport(format!("response missing {key:?}")))
}

pub(crate) fn u64_array(v: &Value, key: &str) -> PlatformResult<Vec<u64>> {
    v[key]
        .as_array()
        .ok_or_else(|| PlatformError::Transport(format!("response missing {key:?}")))?
        .iter()
        .map(|n| {
            n.as_i64()
                .filter(|x| *x >= 0)
                .map(|x| x as u64)
                .ok_or_else(|| PlatformError::Transport(format!("non-numeric {key:?} entry")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_are_stable_and_bijective() {
        let all = [
            PlatformError::Invalid("x".into()),
            PlatformError::UnknownUser(1),
            PlatformError::UnknownProject(2),
            PlatformError::UnknownExperiment(3),
            PlatformError::UnknownTask(4),
            PlatformError::UnknownQuery(5),
            PlatformError::AccessDenied("y".into()),
            PlatformError::Grammar("z".into()),
            PlatformError::PoolFull(9),
            PlatformError::Publication("p".into()),
            PlatformError::Transport("t".into()),
        ];
        let mut seen = std::collections::HashSet::new();
        for err in &all {
            let code = ErrorCode::of(err);
            assert!(seen.insert(code.as_u8()), "duplicate byte for {code:?}");
            assert_eq!(ErrorCode::from_u8(code.as_u8()), Some(code));
            // The string codes agree with the error's own stable code.
            assert_eq!(code.as_str(), err.code());
            assert!(code.http_status() >= 400);
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(200), None);
    }

    #[test]
    fn wire_values_round_trip_through_tagged_json() {
        let cells = vec![
            WireValue::Null,
            WireValue::Bool(true),
            WireValue::Int(-42),
            WireValue::Float(2.5),
            WireValue::Decimal { raw: -123456789012345678901234567890i128, scale: 4 },
            WireValue::Str("O'Brien, \"quoted\"".into()),
            WireValue::Date(19000),
            WireValue::Interval { months: -3, days: 14 },
        ];
        for cell in &cells {
            let text = serde_json::to_string(cell).unwrap();
            let back: WireValue = serde_json::from_str(&text).unwrap();
            assert_eq!(&back, cell, "{text}");
        }
    }

    #[test]
    fn result_set_transposes_losslessly() {
        use sqalpel_engine::Value as E;
        let rs = sqalpel_engine::ResultSet::new(
            vec!["a".into(), "b".into()],
            vec![
                vec![E::Int(1), E::Str("x".into())],
                vec![E::Int(2), E::Null],
                vec![E::Int(3), E::Str("z".into())],
            ],
        );
        let wire = WireResultSet::from_result_set(&rs);
        assert_eq!(wire.rows(), 3);
        assert_eq!(wire.data.len(), 2);
        assert_eq!(wire.to_result_set().to_csv(), rs.to_csv());
        // And through JSON.
        let text = serde_json::to_string(&wire).unwrap();
        let back: WireResultSet = serde_json::from_str(&text).unwrap();
        assert_eq!(back.to_result_set().to_csv(), rs.to_csv());
    }
}
