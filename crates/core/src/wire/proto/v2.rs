//! Protocol v2: the length-framed binary codec. Pure — no I/O anywhere
//! in this module; transports move the byte vectors it produces.
//!
//! # Frame layout
//!
//! Every message (either direction) is one frame:
//!
//! ```text
//! [len: u32 LE] [tag: u32 LE] [body: len bytes]
//! request  body = [opcode: u8] [payload]
//! response body = [status: u8] [payload]
//! ```
//!
//! `len` counts the body only (opcode/status byte included), so a reader
//! needs exactly 8 header bytes to know the frame boundary. `tag` is an
//! opaque client-chosen correlation id echoed verbatim in the response —
//! a client may keep many frames in flight on one connection
//! (pipelining) and match responses by tag.
//!
//! `status` 0 means OK and the payload starts with a reply-kind byte
//! (responses are self-describing, so a pipelined client never needs
//! request context to decode). Any other status is an [`ErrorCode`] byte
//! and the payload is the typed error detail — the exact
//! [`PlatformError`] variant is reconstructed, same as v1's JSON bodies.
//!
//! Opcode 0 is `Hello`: sent once per connection with the protocol
//! version; the server answers with its own version (reply kind 0)
//! before any op is accepted. A version mismatch is a hard error.
//!
//! # Scalar encodings
//!
//! Little-endian fixed-width integers and floats; strings are a u32
//! length followed by UTF-8 bytes; options are a presence byte. Hot DTOs
//! (tasks, run outcomes, result records, queue summaries) are fully
//! binary; cold management DTOs (DBMS/host catalog entries, metrics
//! snapshots, the open-ended `extras` object) travel as JSON text inside
//! the frame — they are off the contributor hot path and the JSON serde
//! is already the documented format.
//!
//! # Columnar results
//!
//! `Vec<ResultRecord>` and [`WireResultSet`] are encoded as per-column
//! typed vectors rather than per-row tagged tuples: one type tag and one
//! null bitmap per column, then the packed values. A column of mixed
//! types (possible for `WireResultSet` cells in principle) falls back to
//! per-cell tags under the reserved tag `0xFF`.
//!
//! # Bulk frames
//!
//! A [`Request::ReportBatch`] may stream: the client sends any number of
//! continuation frames (`OP_BATCH_PART`, columnar `(task, outcome)`
//! pairs) followed by one summary frame (`OP_REPORT_BATCH` carrying the
//! contributor key, the expected total, and any inline tail of pairs),
//! **all under the same tag**. The server assembles parts per tag and
//! dispatches once the summary arrives, answering with a single
//! [`Reply::Batch`] ack. A connection dropped mid-sequence discards the
//! whole partial batch — nothing partial is ever dispatched.
//!
//! # Push frames
//!
//! A connection that sent `OP_SUBSCRIBE` (carrying its contributor key)
//! receives unsolicited notification frames on **tag 0** — a tag no
//! request ever uses (client tags start at 1) — with reply kind
//! `RK_NOTIFICATION`: `QueueReady` when work lands on a queue,
//! `ExperimentFinished` when an experiment's last task goes terminal.

use super::{CacheStatus, ErrorCode, ExecOutcome, Reply, Request, WireResultSet, WireValue};
use crate::push::Notification;
use crate::catalog::Visibility;
use crate::driver::{OperatorProfile, RunOutcome};
use crate::error::{PlatformError, PlatformResult};
use crate::pool::QueryId;
use crate::project::{ExperimentId, ProjectId, Role};
use crate::queue::{QueueSummary, Task, TaskId, TaskState};
use crate::results::{LoadAvg, ResultRecord};
use crate::user::{ContributorKey, UserId};
use serde::{Deserialize, Serialize};

/// The version this codec speaks, exchanged in the Hello handshake.
pub const PROTO_VERSION: u8 = 2;
/// Frame header: u32 length + u32 tag.
pub const HEADER_LEN: usize = 8;
/// Default cap on one frame body — matches the v1 client's response cap.
pub const DEFAULT_MAX_FRAME: usize = 1 << 24;

/// Opcode 0: the connection handshake.
const OP_HELLO: u8 = 0;

// Request opcodes 1..=25 follow the Request enum order.
const OP_REGISTER_USER: u8 = 1;
const OP_ISSUE_KEY: u8 = 2;
const OP_ADD_DBMS: u8 = 3;
const OP_ADD_HOST: u8 = 4;
const OP_DBMS_LABELS: u8 = 5;
const OP_CREATE_PROJECT: u8 = 6;
const OP_INVITE: u8 = 7;
const OP_SET_TARGETS: u8 = 8;
const OP_COMMENT: u8 = 9;
const OP_TAKE_DOWN: u8 = 10;
const OP_ROLE_OF: u8 = 11;
const OP_ADD_EXPERIMENT: u8 = 12;
const OP_SEED_POOL: u8 = 13;
const OP_MORPH_POOL: u8 = 14;
const OP_ENQUEUE_EXPERIMENT: u8 = 15;
const OP_RESULTS_FOR_KEY: u8 = 16;
const OP_EXPORT_CSV: u8 = 17;
const OP_HIDE_RESULT: u8 = 18;
const OP_REQUEST_TASK: u8 = 19;
const OP_REPORT_RESULT: u8 = 20;
const OP_QUEUE_SUMMARY: u8 = 21;
const OP_REAP_STUCK: u8 = 22;
const OP_REQUEUE: u8 = 23;
const OP_METRICS: u8 = 24;
const OP_EXECUTE: u8 = 25;
/// Bulk summary frame: key + expected total + inline tail of pairs.
const OP_REPORT_BATCH: u8 = 26;
/// Bulk continuation frame: columnar `(task, outcome)` pairs.
const OP_BATCH_PART: u8 = 27;
/// Subscribe this connection to server-push notifications.
const OP_SUBSCRIBE: u8 = 28;

// Reply kinds.
const RK_HELLO: u8 = 0;
const RK_UNIT: u8 = 1;
const RK_USER: u8 = 2;
const RK_KEY: u8 = 3;
const RK_LABELS: u8 = 4;
const RK_PROJECT: u8 = 5;
const RK_ROLE: u8 = 6;
const RK_EXPERIMENT: u8 = 7;
const RK_SEEDED: u8 = 8;
const RK_ADDED: u8 = 9;
const RK_ENQUEUED: u8 = 10;
const RK_RESULTS: u8 = 11;
const RK_CSV: u8 = 12;
const RK_HANDOUT: u8 = 13;
const RK_INDEX: u8 = 14;
const RK_QUEUE: u8 = 15;
const RK_REAPED: u8 = 16;
const RK_METRICS: u8 = 17;
const RK_EXECUTION: u8 = 18;
const RK_BATCH: u8 = 19;
/// Unsolicited server-push frame (always tag 0).
const RK_NOTIFICATION: u8 = 20;

/// Notification kind bytes inside an `RK_NOTIFICATION` payload.
const NK_QUEUE_READY: u8 = 0;
const NK_EXPERIMENT_FINISHED: u8 = 1;

// Cell type tags for columnar vectors. 0 marks an all-null column (no
// values follow); 0xFF marks a mixed column (per-cell tags).
const CT_ALL_NULL: u8 = 0;
const CT_BOOL: u8 = 1;
const CT_INT: u8 = 2;
const CT_FLOAT: u8 = 3;
const CT_DECIMAL: u8 = 4;
const CT_STR: u8 = 5;
const CT_DATE: u8 = 6;
const CT_INTERVAL: u8 = 7;
const CT_MIXED: u8 = 0xFF;

// ------------------------------------------------------------- writer

/// A growable little-endian byte writer. Infallible.
#[derive(Default)]
struct W {
    buf: Vec<u8>,
}

impl W {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
            None => self.u8(0),
        }
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
            None => self.u8(0),
        }
    }
    /// A presence bitmap: bit `i` set when `set(i)` is true.
    fn bitmap(&mut self, n: usize, set: impl Fn(usize) -> bool) {
        let mut byte = 0u8;
        for i in 0..n {
            if set(i) {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if !n.is_multiple_of(8) {
            self.buf.push(byte);
        }
    }
    /// JSON-text payload for cold DTOs.
    fn json<T: Serialize>(&mut self, v: &T) {
        self.str(&serde_json::to_string(v).expect("value serializes"));
    }
}

// ------------------------------------------------------------- reader

/// A checked little-endian byte reader over one frame body.
struct R<'a> {
    b: &'a [u8],
    pos: usize,
}

type D<T> = Result<T, String>;

impl<'a> R<'a> {
    fn new(b: &'a [u8]) -> R<'a> {
        R { b, pos: 0 }
    }
    fn take(&mut self, n: usize) -> D<&'a [u8]> {
        if self.b.len() - self.pos < n {
            return Err(format!(
                "truncated frame: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.b.len() - self.pos
            ));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> D<u8> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> D<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("bad bool byte {b}")),
        }
    }
    fn u32(&mut self) -> D<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> D<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> D<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> D<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> D<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i128(&mut self) -> D<i128> {
        Ok(i128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    fn str(&mut self) -> D<String> {
        let n = self.u32()? as usize;
        // The frame length already bounds n; take() re-checks.
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("non-UTF-8 string: {e}"))
    }
    fn opt_str(&mut self) -> D<Option<String>> {
        Ok(if self.bool()? { Some(self.str()?) } else { None })
    }
    fn opt_u64(&mut self) -> D<Option<u64>> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }
    fn bitmap(&mut self, n: usize) -> D<Vec<bool>> {
        let bytes = self.take(n.div_ceil(8))?;
        Ok((0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect())
    }
    fn json<T: Deserialize>(&mut self, what: &str) -> D<T> {
        let text = self.str()?;
        serde_json::from_str(&text).map_err(|e| format!("bad {what} JSON: {e}"))
    }
    fn done(&self) -> D<()> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after frame payload",
                self.b.len() - self.pos
            ))
        }
    }
}

// ---------------------------------------------------------- frame split

/// Try to split one complete frame off the front of `buf`. Returns
/// `Ok(None)` when more bytes are needed, `Ok(Some((tag, body)))` when a
/// frame was extracted (and drained from `buf`), and `Err` when the
/// header is malformed (oversized frame) — the connection should close.
pub fn take_frame(buf: &mut Vec<u8>, max_frame: usize) -> Result<Option<(u32, Vec<u8>)>, String> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if len == 0 || len > max_frame {
        return Err(format!("frame body of {len} bytes outside (0, {max_frame}]"));
    }
    if buf.len() < HEADER_LEN + len {
        return Ok(None);
    }
    let tag = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let body = buf[HEADER_LEN..HEADER_LEN + len].to_vec();
    buf.drain(..HEADER_LEN + len);
    Ok(Some((tag, body)))
}

fn frame(tag: u32, body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

// ------------------------------------------------------- request encode

/// Encode the connection handshake frame.
pub fn encode_hello_frame(tag: u32) -> Vec<u8> {
    frame(tag, vec![OP_HELLO, PROTO_VERSION])
}

/// Encode one request as a complete frame (header included).
pub fn encode_request_frame(tag: u32, req: &Request) -> Vec<u8> {
    let mut w = W::default();
    match req {
        Request::RegisterUser { nickname, email } => {
            w.u8(OP_REGISTER_USER);
            w.str(nickname);
            w.str(email);
        }
        Request::IssueKey { user } => {
            w.u8(OP_ISSUE_KEY);
            w.u64(user.0);
        }
        Request::AddDbms { entry } => {
            w.u8(OP_ADD_DBMS);
            w.json(entry);
        }
        Request::AddHost { entry } => {
            w.u8(OP_ADD_HOST);
            w.json(entry);
        }
        Request::DbmsLabels => w.u8(OP_DBMS_LABELS),
        Request::CreateProject {
            owner,
            title,
            synopsis,
            visibility,
        } => {
            w.u8(OP_CREATE_PROJECT);
            w.u64(owner.0);
            w.str(title);
            w.str(synopsis);
            w.u8(match visibility {
                Visibility::Public => 0,
                Visibility::Private => 1,
            });
        }
        Request::Invite { project, owner, user } => {
            w.u8(OP_INVITE);
            w.u64(project.0);
            w.u64(owner.0);
            w.u64(user.0);
        }
        Request::SetTargets {
            project,
            actor,
            dbms_labels,
            hosts,
        } => {
            w.u8(OP_SET_TARGETS);
            w.u64(project.0);
            w.u64(actor.0);
            write_strs(&mut w, dbms_labels);
            write_strs(&mut w, hosts);
        }
        Request::Comment { project, author, text } => {
            w.u8(OP_COMMENT);
            w.u64(project.0);
            w.u64(author.0);
            w.str(text);
        }
        Request::TakeDown { project } => {
            w.u8(OP_TAKE_DOWN);
            w.u64(project.0);
        }
        Request::RoleOf { project, user } => {
            w.u8(OP_ROLE_OF);
            w.u64(project.0);
            w.u64(user.0);
        }
        Request::AddExperiment {
            project,
            actor,
            title,
            baseline_sql,
            grammar,
            template_cap,
            pool_cap,
        } => {
            w.u8(OP_ADD_EXPERIMENT);
            w.u64(project.0);
            w.u64(actor.0);
            w.str(title);
            w.str(baseline_sql);
            w.opt_str(grammar.as_deref());
            w.u64(*template_cap);
            w.u64(*pool_cap);
        }
        Request::SeedPool {
            project,
            experiment,
            actor,
            n_random,
            seed,
        } => {
            w.u8(OP_SEED_POOL);
            w.u64(project.0);
            w.u64(experiment.0);
            w.u64(actor.0);
            w.u64(*n_random);
            w.u64(*seed);
        }
        Request::MorphPool {
            project,
            experiment,
            actor,
            strategy,
            steps,
            seed,
        } => {
            w.u8(OP_MORPH_POOL);
            w.u64(project.0);
            w.u64(experiment.0);
            w.u64(actor.0);
            w.opt_str(strategy.as_deref());
            w.u64(*steps);
            w.u64(*seed);
        }
        Request::EnqueueExperiment {
            project,
            experiment,
            actor,
        } => {
            w.u8(OP_ENQUEUE_EXPERIMENT);
            w.u64(project.0);
            w.u64(experiment.0);
            w.u64(actor.0);
        }
        Request::ResultsForKey { project, key } => {
            w.u8(OP_RESULTS_FOR_KEY);
            w.u64(project.0);
            w.str(&key.0);
        }
        Request::ExportCsv { project, viewer } => {
            w.u8(OP_EXPORT_CSV);
            w.u64(project.0);
            w.u64(viewer.0);
        }
        Request::HideResult {
            project,
            actor,
            index,
            hidden,
        } => {
            w.u8(OP_HIDE_RESULT);
            w.u64(project.0);
            w.u64(actor.0);
            w.u64(*index);
            w.bool(*hidden);
        }
        Request::RequestTask {
            key,
            dbms_label,
            host,
            claim,
        } => {
            w.u8(OP_REQUEST_TASK);
            w.str(&key.0);
            w.str(dbms_label);
            w.str(host);
            w.opt_u64(*claim);
        }
        Request::ReportResult { key, task, outcome } => {
            w.u8(OP_REPORT_RESULT);
            w.str(&key.0);
            w.u64(task.0);
            write_outcome(&mut w, outcome);
        }
        Request::ReportBatch { key, reports } => {
            // The single-frame form: total == inline count, no parts.
            // Streaming clients use `encode_batch_part_frame` +
            // `encode_batch_end_frame` under one tag instead.
            w.u8(OP_REPORT_BATCH);
            w.str(&key.0);
            w.u32(reports.len() as u32);
            write_report_pairs(&mut w, reports);
        }
        Request::QueueSummary => w.u8(OP_QUEUE_SUMMARY),
        Request::ReapStuck { timeout_ms } => {
            w.u8(OP_REAP_STUCK);
            w.u64(*timeout_ms);
        }
        Request::Requeue { task } => {
            w.u8(OP_REQUEUE);
            w.u64(task.0);
        }
        Request::Metrics => w.u8(OP_METRICS),
        Request::Execute { sql, fingerprint } => {
            w.u8(OP_EXECUTE);
            w.str(sql);
            w.opt_u64(*fingerprint);
        }
    }
    frame(tag, w.buf)
}

/// A decoded inbound frame body: either the handshake, a platform op
/// (boxed — [`Request`] is a wide enum, the handshake arm is two bytes),
/// or one of the connection-level bulk/push frames that never reach
/// dispatch on their own.
#[derive(Debug)]
pub enum DecodedRequest {
    Hello { version: u8 },
    Op(Box<Request>),
    /// A bulk continuation frame; the server buffers it under the
    /// frame's tag until the matching [`DecodedRequest::BatchEnd`].
    BatchPart(Vec<(TaskId, RunOutcome)>),
    /// The bulk summary frame. `total` is the expected pair count over
    /// the whole sequence (parts + `inline`); a mismatch after assembly
    /// is a protocol error.
    BatchEnd {
        key: ContributorKey,
        total: u32,
        inline: Vec<(TaskId, RunOutcome)>,
    },
    /// Subscribe this connection to server-push notifications.
    Subscribe { key: ContributorKey },
}

/// Encode a standalone bulk continuation frame.
pub fn encode_batch_part_frame(tag: u32, reports: &[(TaskId, RunOutcome)]) -> Vec<u8> {
    let mut w = W::default();
    w.u8(OP_BATCH_PART);
    write_report_pairs(&mut w, reports);
    frame(tag, w.buf)
}

/// Encode the bulk summary frame closing a streamed sequence: the
/// continuation frames already sent under `tag` carry the pairs, this
/// frame carries the key, the expected `total`, and an (often empty)
/// inline tail.
pub fn encode_batch_end_frame(
    tag: u32,
    key: &ContributorKey,
    total: u32,
    inline: &[(TaskId, RunOutcome)],
) -> Vec<u8> {
    let mut w = W::default();
    w.u8(OP_REPORT_BATCH);
    w.str(&key.0);
    w.u32(total);
    write_report_pairs(&mut w, inline);
    frame(tag, w.buf)
}

/// Encode the subscribe frame (acked with `RK_UNIT`).
pub fn encode_subscribe_frame(tag: u32, key: &ContributorKey) -> Vec<u8> {
    let mut w = W::default();
    w.u8(OP_SUBSCRIBE);
    w.str(&key.0);
    frame(tag, w.buf)
}

/// Decode one request frame body (everything after the 8-byte header).
pub fn decode_request(body: &[u8]) -> Result<DecodedRequest, String> {
    let mut r = R::new(body);
    let op = r.u8()?;
    let req = match op {
        OP_HELLO => {
            let version = r.u8()?;
            r.done()?;
            return Ok(DecodedRequest::Hello { version });
        }
        OP_REGISTER_USER => Request::RegisterUser {
            nickname: r.str()?,
            email: r.str()?,
        },
        OP_ISSUE_KEY => Request::IssueKey {
            user: UserId(r.u64()?),
        },
        OP_ADD_DBMS => Request::AddDbms {
            entry: r.json("dbms entry")?,
        },
        OP_ADD_HOST => Request::AddHost {
            entry: r.json("host entry")?,
        },
        OP_DBMS_LABELS => Request::DbmsLabels,
        OP_CREATE_PROJECT => Request::CreateProject {
            owner: UserId(r.u64()?),
            title: r.str()?,
            synopsis: r.str()?,
            visibility: match r.u8()? {
                0 => Visibility::Public,
                1 => Visibility::Private,
                b => return Err(format!("bad visibility byte {b}")),
            },
        },
        OP_INVITE => Request::Invite {
            project: ProjectId(r.u64()?),
            owner: UserId(r.u64()?),
            user: UserId(r.u64()?),
        },
        OP_SET_TARGETS => Request::SetTargets {
            project: ProjectId(r.u64()?),
            actor: UserId(r.u64()?),
            dbms_labels: read_strs(&mut r)?,
            hosts: read_strs(&mut r)?,
        },
        OP_COMMENT => Request::Comment {
            project: ProjectId(r.u64()?),
            author: UserId(r.u64()?),
            text: r.str()?,
        },
        OP_TAKE_DOWN => Request::TakeDown {
            project: ProjectId(r.u64()?),
        },
        OP_ROLE_OF => Request::RoleOf {
            project: ProjectId(r.u64()?),
            user: UserId(r.u64()?),
        },
        OP_ADD_EXPERIMENT => Request::AddExperiment {
            project: ProjectId(r.u64()?),
            actor: UserId(r.u64()?),
            title: r.str()?,
            baseline_sql: r.str()?,
            grammar: r.opt_str()?,
            template_cap: r.u64()?,
            pool_cap: r.u64()?,
        },
        OP_SEED_POOL => Request::SeedPool {
            project: ProjectId(r.u64()?),
            experiment: ExperimentId(r.u64()?),
            actor: UserId(r.u64()?),
            n_random: r.u64()?,
            seed: r.u64()?,
        },
        OP_MORPH_POOL => Request::MorphPool {
            project: ProjectId(r.u64()?),
            experiment: ExperimentId(r.u64()?),
            actor: UserId(r.u64()?),
            strategy: r.opt_str()?,
            steps: r.u64()?,
            seed: r.u64()?,
        },
        OP_ENQUEUE_EXPERIMENT => Request::EnqueueExperiment {
            project: ProjectId(r.u64()?),
            experiment: ExperimentId(r.u64()?),
            actor: UserId(r.u64()?),
        },
        OP_RESULTS_FOR_KEY => Request::ResultsForKey {
            project: ProjectId(r.u64()?),
            key: ContributorKey(r.str()?),
        },
        OP_EXPORT_CSV => Request::ExportCsv {
            project: ProjectId(r.u64()?),
            viewer: UserId(r.u64()?),
        },
        OP_HIDE_RESULT => Request::HideResult {
            project: ProjectId(r.u64()?),
            actor: UserId(r.u64()?),
            index: r.u64()?,
            hidden: r.bool()?,
        },
        OP_REQUEST_TASK => Request::RequestTask {
            key: ContributorKey(r.str()?),
            dbms_label: r.str()?,
            host: r.str()?,
            claim: r.opt_u64()?,
        },
        OP_REPORT_RESULT => Request::ReportResult {
            key: ContributorKey(r.str()?),
            task: TaskId(r.u64()?),
            outcome: read_outcome(&mut r)?,
        },
        OP_REPORT_BATCH => {
            let key = ContributorKey(r.str()?);
            let total = r.u32()?;
            let inline = read_report_pairs(&mut r)?;
            r.done()?;
            return Ok(DecodedRequest::BatchEnd { key, total, inline });
        }
        OP_BATCH_PART => {
            let pairs = read_report_pairs(&mut r)?;
            r.done()?;
            return Ok(DecodedRequest::BatchPart(pairs));
        }
        OP_SUBSCRIBE => {
            let key = ContributorKey(r.str()?);
            r.done()?;
            return Ok(DecodedRequest::Subscribe { key });
        }
        OP_QUEUE_SUMMARY => Request::QueueSummary,
        OP_REAP_STUCK => Request::ReapStuck { timeout_ms: r.u64()? },
        OP_REQUEUE => Request::Requeue {
            task: TaskId(r.u64()?),
        },
        OP_METRICS => Request::Metrics,
        OP_EXECUTE => Request::Execute {
            sql: r.str()?,
            fingerprint: r.opt_u64()?,
        },
        other => return Err(format!("unknown opcode {other}")),
    };
    r.done()?;
    Ok(DecodedRequest::Op(Box::new(req)))
}

// --------------------------------------------------------- reply encode

/// Encode the server's handshake answer.
pub fn encode_hello_ok_frame(tag: u32) -> Vec<u8> {
    frame(tag, vec![0, RK_HELLO, PROTO_VERSION])
}

/// Encode one dispatched outcome as a complete response frame.
pub fn encode_reply_frame(tag: u32, outcome: &PlatformResult<Reply>) -> Vec<u8> {
    let mut w = W::default();
    match outcome {
        Err(err) => {
            w.u8(ErrorCode::of(err).as_u8());
            write_error_detail(&mut w, err);
        }
        Ok(reply) => {
            w.u8(0);
            match reply {
                Reply::Unit => w.u8(RK_UNIT),
                Reply::User(u) => {
                    w.u8(RK_USER);
                    w.u64(u.0);
                }
                Reply::Key(k) => {
                    w.u8(RK_KEY);
                    w.str(&k.0);
                }
                Reply::Labels(ls) => {
                    w.u8(RK_LABELS);
                    write_strs(&mut w, ls);
                }
                Reply::Project(p) => {
                    w.u8(RK_PROJECT);
                    w.u64(p.0);
                }
                Reply::Role(role) => {
                    w.u8(RK_ROLE);
                    w.u8(match role {
                        Role::None => 0,
                        Role::Reader => 1,
                        Role::Contributor => 2,
                        Role::Owner => 3,
                    });
                }
                Reply::Experiment(e) => {
                    w.u8(RK_EXPERIMENT);
                    w.u64(e.0);
                }
                Reply::Seeded(n) => {
                    w.u8(RK_SEEDED);
                    w.u64(*n);
                }
                Reply::Added(ids) => {
                    w.u8(RK_ADDED);
                    w.u32(ids.len() as u32);
                    for id in ids {
                        w.u64(id.0);
                    }
                }
                Reply::Enqueued(n) => {
                    w.u8(RK_ENQUEUED);
                    w.u64(*n);
                }
                Reply::Results(records) => {
                    w.u8(RK_RESULTS);
                    write_records(&mut w, records);
                }
                Reply::Csv(text) => {
                    w.u8(RK_CSV);
                    w.str(text);
                }
                Reply::Handout(task) => {
                    w.u8(RK_HANDOUT);
                    match task {
                        Some(t) => {
                            w.u8(1);
                            write_task(&mut w, t);
                        }
                        None => w.u8(0),
                    }
                }
                Reply::Index(n) => {
                    w.u8(RK_INDEX);
                    w.u64(*n);
                }
                Reply::Batch(indices) => {
                    w.u8(RK_BATCH);
                    w.u32(indices.len() as u32);
                    for idx in indices {
                        w.u64(*idx);
                    }
                }
                Reply::Queue(q) => {
                    w.u8(RK_QUEUE);
                    w.u64(q.queued as u64);
                    w.u64(q.running as u64);
                    w.u64(q.finished as u64);
                    w.u64(q.failed as u64);
                    w.u64(q.timed_out as u64);
                }
                Reply::Reaped(ids) => {
                    w.u8(RK_REAPED);
                    w.u32(ids.len() as u32);
                    for id in ids {
                        w.u64(id.0);
                    }
                }
                Reply::Metrics(snap) => {
                    w.u8(RK_METRICS);
                    w.json(snap);
                }
                Reply::Execution(out) => {
                    w.u8(RK_EXECUTION);
                    write_result_set(&mut w, &out.result);
                    w.u64(out.fingerprint);
                    w.u8(out.cache.as_u8());
                }
            }
        }
    }
    frame(tag, w.buf)
}

/// A decoded response frame body.
#[derive(Debug)]
pub enum DecodedReply {
    Hello { version: u8 },
    Outcome(PlatformResult<Reply>),
    /// An unsolicited server-push frame (always tag 0).
    Notification(Notification),
}

/// Encode an unsolicited server-push frame. Always tag 0 — client
/// request tags start at 1, so a pipelining client can never confuse a
/// push frame with a response it is waiting for.
pub fn encode_notification_frame(n: &Notification) -> Vec<u8> {
    let mut w = W::default();
    w.u8(0);
    w.u8(RK_NOTIFICATION);
    match n {
        Notification::QueueReady { project } => {
            w.u8(NK_QUEUE_READY);
            w.u64(project.0);
        }
        Notification::ExperimentFinished { project, experiment } => {
            w.u8(NK_EXPERIMENT_FINISHED);
            w.u64(project.0);
            w.u64(experiment.0);
        }
    }
    frame(0, w.buf)
}

/// Decode one response frame body. Responses are self-describing: the
/// status byte selects OK vs a typed error, the kind byte selects the
/// reply variant — no request context needed (pipelining relies on it).
pub fn decode_reply(body: &[u8]) -> Result<DecodedReply, String> {
    let mut r = R::new(body);
    let status = r.u8()?;
    if status != 0 {
        let code = ErrorCode::from_u8(status).ok_or(format!("bad status byte {status}"))?;
        let err = read_error_detail(&mut r, code)?;
        r.done()?;
        return Ok(DecodedReply::Outcome(Err(err)));
    }
    let kind = r.u8()?;
    let reply = match kind {
        RK_HELLO => {
            let version = r.u8()?;
            r.done()?;
            return Ok(DecodedReply::Hello { version });
        }
        RK_UNIT => Reply::Unit,
        RK_USER => Reply::User(UserId(r.u64()?)),
        RK_KEY => Reply::Key(ContributorKey(r.str()?)),
        RK_LABELS => Reply::Labels(read_strs(&mut r)?),
        RK_PROJECT => Reply::Project(ProjectId(r.u64()?)),
        RK_ROLE => Reply::Role(match r.u8()? {
            0 => Role::None,
            1 => Role::Reader,
            2 => Role::Contributor,
            3 => Role::Owner,
            b => return Err(format!("bad role byte {b}")),
        }),
        RK_EXPERIMENT => Reply::Experiment(ExperimentId(r.u64()?)),
        RK_SEEDED => Reply::Seeded(r.u64()?),
        RK_ADDED => {
            let n = r.u32()? as usize;
            let mut ids = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                ids.push(QueryId(r.u64()?));
            }
            Reply::Added(ids)
        }
        RK_ENQUEUED => Reply::Enqueued(r.u64()?),
        RK_RESULTS => Reply::Results(read_records(&mut r)?),
        RK_CSV => Reply::Csv(r.str()?),
        RK_HANDOUT => Reply::Handout(if r.bool()? {
            Some(read_task(&mut r)?)
        } else {
            None
        }),
        RK_INDEX => Reply::Index(r.u64()?),
        RK_BATCH => {
            let n = r.u32()? as usize;
            let mut indices = Vec::with_capacity(n.min(1 << 22));
            for _ in 0..n {
                indices.push(r.u64()?);
            }
            Reply::Batch(indices)
        }
        RK_NOTIFICATION => {
            let n = match r.u8()? {
                NK_QUEUE_READY => Notification::QueueReady {
                    project: ProjectId(r.u64()?),
                },
                NK_EXPERIMENT_FINISHED => Notification::ExperimentFinished {
                    project: ProjectId(r.u64()?),
                    experiment: ExperimentId(r.u64()?),
                },
                b => return Err(format!("bad notification kind {b}")),
            };
            r.done()?;
            return Ok(DecodedReply::Notification(n));
        }
        RK_QUEUE => Reply::Queue(QueueSummary {
            queued: r.u64()? as usize,
            running: r.u64()? as usize,
            finished: r.u64()? as usize,
            failed: r.u64()? as usize,
            timed_out: r.u64()? as usize,
        }),
        RK_REAPED => {
            let n = r.u32()? as usize;
            let mut ids = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                ids.push(TaskId(r.u64()?));
            }
            Reply::Reaped(ids)
        }
        RK_METRICS => Reply::Metrics(r.json("metrics snapshot")?),
        RK_EXECUTION => {
            let result = read_result_set(&mut r)?;
            Reply::Execution(ExecOutcome {
                result,
                fingerprint: r.u64()?,
                cache: CacheStatus::from_u8(r.u8()?)?,
            })
        }
        other => return Err(format!("unknown reply kind {other}")),
    };
    r.done()?;
    Ok(DecodedReply::Outcome(Ok(reply)))
}

// ------------------------------------------------------- error details

fn write_error_detail(w: &mut W, err: &PlatformError) {
    match err {
        PlatformError::Invalid(m)
        | PlatformError::AccessDenied(m)
        | PlatformError::Grammar(m)
        | PlatformError::Publication(m)
        | PlatformError::Transport(m)
        | PlatformError::Throttled(m) => {
            w.u8(0);
            w.str(m);
        }
        PlatformError::UnknownUser(id)
        | PlatformError::UnknownProject(id)
        | PlatformError::UnknownExperiment(id)
        | PlatformError::UnknownTask(id)
        | PlatformError::UnknownQuery(id) => {
            w.u8(1);
            w.u64(*id);
        }
        PlatformError::PoolFull(cap) => {
            w.u8(1);
            w.u64(*cap as u64);
        }
    }
}

fn read_error_detail(r: &mut R<'_>, code: ErrorCode) -> D<PlatformError> {
    let detail = match r.u8()? {
        0 => serde::Value::from(r.str()?),
        1 => serde::Value::from(r.u64()? as i64),
        b => return Err(format!("bad error detail kind {b}")),
    };
    PlatformError::from_code(code.as_str(), &detail)
}

// --------------------------------------------------------- DTO helpers

fn write_strs(w: &mut W, items: &[String]) {
    w.u32(items.len() as u32);
    for s in items {
        w.str(s);
    }
}

fn read_strs(r: &mut R<'_>) -> D<Vec<String>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(r.str()?);
    }
    Ok(out)
}

fn write_task(w: &mut W, t: &Task) {
    w.u64(t.id.0);
    w.u64(t.project.0);
    w.u64(t.experiment.0);
    w.u64(t.query.0);
    w.str(&t.sql);
    w.str(&t.dbms_label);
    w.str(&t.host);
    match &t.state {
        TaskState::Queued => w.u8(0),
        TaskState::Running { contributor } => {
            w.u8(1);
            w.str(&contributor.0);
        }
        TaskState::Done => w.u8(2),
        TaskState::Failed(e) => {
            w.u8(3);
            w.str(e);
        }
        TaskState::TimedOut => w.u8(4),
    }
}

fn read_task(r: &mut R<'_>) -> D<Task> {
    Ok(Task {
        id: TaskId(r.u64()?),
        project: ProjectId(r.u64()?),
        experiment: ExperimentId(r.u64()?),
        query: QueryId(r.u64()?),
        sql: r.str()?,
        dbms_label: r.str()?,
        host: r.str()?,
        state: match r.u8()? {
            0 => TaskState::Queued,
            1 => TaskState::Running {
                contributor: ContributorKey(r.str()?),
            },
            2 => TaskState::Done,
            3 => TaskState::Failed(r.str()?),
            4 => TaskState::TimedOut,
            b => return Err(format!("bad task state byte {b}")),
        },
        // Hand-out time is server-side only, same as the JSON codec.
        started: None,
    })
}

fn write_profile(w: &mut W, ops: &[OperatorProfile]) {
    w.u32(ops.len() as u32);
    for op in ops {
        w.str(&op.op);
        w.u64(op.rows_in);
        w.u64(op.rows_out);
        w.u64(op.batches);
        w.u64(op.nanos);
        w.u64(op.chunks_scanned);
        w.u64(op.chunks_skipped);
    }
}

fn read_profile(r: &mut R<'_>) -> D<Vec<OperatorProfile>> {
    let n = r.u32()? as usize;
    let mut ops = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        ops.push(OperatorProfile {
            op: r.str()?,
            rows_in: r.u64()?,
            rows_out: r.u64()?,
            batches: r.u64()?,
            nanos: r.u64()?,
            chunks_scanned: r.u64()?,
            chunks_skipped: r.u64()?,
        });
    }
    Ok(ops)
}

fn write_outcome(w: &mut W, o: &RunOutcome) {
    w.u32(o.times_ms.len() as u32);
    for t in &o.times_ms {
        w.f64(*t);
    }
    w.u64(o.rows as u64);
    w.opt_str(o.error.as_deref());
    for l in [&o.load_before, &o.load_after] {
        w.f64(l.one);
        w.f64(l.five);
        w.f64(l.fifteen);
    }
    w.json(&o.extras);
    w.opt_u64(o.fingerprint);
    match &o.profile {
        Some(ops) => {
            w.u8(1);
            write_profile(w, ops);
        }
        None => w.u8(0),
    }
}

fn read_outcome(r: &mut R<'_>) -> D<RunOutcome> {
    let n = r.u32()? as usize;
    let mut times_ms = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        times_ms.push(r.f64()?);
    }
    let rows = r.u64()? as usize;
    let error = r.opt_str()?;
    let mut loads = [LoadAvg::default(); 2];
    for l in &mut loads {
        l.one = r.f64()?;
        l.five = r.f64()?;
        l.fifteen = r.f64()?;
    }
    Ok(RunOutcome {
        times_ms,
        rows,
        error,
        load_before: loads[0],
        load_after: loads[1],
        extras: r.json("extras")?,
        fingerprint: r.opt_u64()?,
        profile: if r.bool()? {
            Some(read_profile(r)?)
        } else {
            None
        },
    })
}

// -------------------------------------------------- bulk report pairs

/// Columnar `(task, outcome)` pairs: `[count][task ids][outcomes]` — the
/// fixed-width task-id vector packs densely up front, the variable-width
/// outcomes follow.
fn write_report_pairs(w: &mut W, pairs: &[(TaskId, RunOutcome)]) {
    w.u32(pairs.len() as u32);
    for (task, _) in pairs {
        w.u64(task.0);
    }
    for (_, outcome) in pairs {
        write_outcome(w, outcome);
    }
}

fn read_report_pairs(r: &mut R<'_>) -> D<Vec<(TaskId, RunOutcome)>> {
    let n = r.u32()? as usize;
    if n > (1 << 22) {
        return Err(format!("report pair count {n} too large"));
    }
    let mut tasks = Vec::with_capacity(n);
    for _ in 0..n {
        tasks.push(TaskId(r.u64()?));
    }
    let mut pairs = Vec::with_capacity(n);
    for task in tasks {
        pairs.push((task, read_outcome(r)?));
    }
    Ok(pairs)
}

// ------------------------------------------------ columnar: records

/// Result records as per-field columns: all the `task` ids, then all the
/// `project` ids, … so the repetitive numeric fields pack densely and
/// the per-record framing overhead of JSON objects disappears.
fn write_records(w: &mut W, records: &[ResultRecord]) {
    let n = records.len();
    w.u32(n as u32);
    for rec in records {
        w.u64(rec.task);
    }
    for rec in records {
        w.u64(rec.project);
    }
    for rec in records {
        w.u64(rec.experiment);
    }
    for rec in records {
        w.u64(rec.query);
    }
    for rec in records {
        w.str(&rec.dbms_label);
    }
    for rec in records {
        w.str(&rec.host);
    }
    for rec in records {
        w.str(&rec.contributor);
    }
    // times_ms: per-record counts, then one flat f64 vector.
    for rec in records {
        w.u32(rec.times_ms.len() as u32);
    }
    for rec in records {
        for t in &rec.times_ms {
            w.f64(*t);
        }
    }
    for rec in records {
        w.u64(rec.rows as u64);
    }
    w.bitmap(n, |i| records[i].error.is_some());
    for rec in records {
        if let Some(e) = &rec.error {
            w.str(e);
        }
    }
    for rec in records {
        w.f64(rec.load_before.one);
        w.f64(rec.load_before.five);
        w.f64(rec.load_before.fifteen);
        w.f64(rec.load_after.one);
        w.f64(rec.load_after.five);
        w.f64(rec.load_after.fifteen);
    }
    for rec in records {
        w.json(&rec.extras);
    }
    w.bitmap(n, |i| records[i].hidden);
    w.bitmap(n, |i| records[i].fingerprint.is_some());
    for rec in records {
        if let Some(fp) = rec.fingerprint {
            w.u64(fp);
        }
    }
    w.bitmap(n, |i| records[i].profile.is_some());
    for rec in records {
        if let Some(ops) = &rec.profile {
            write_profile(w, ops);
        }
    }
}

fn read_records(r: &mut R<'_>) -> D<Vec<ResultRecord>> {
    let n = r.u32()? as usize;
    // Frame sizes bound n transitively; still refuse absurd counts so a
    // corrupt frame cannot trigger a huge allocation before take() fails.
    if n > (1 << 22) {
        return Err(format!("record count {n} too large"));
    }
    let col_u64 = |r: &mut R<'_>| -> D<Vec<u64>> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(r.u64()?);
        }
        Ok(v)
    };
    let col_str = |r: &mut R<'_>| -> D<Vec<String>> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(r.str()?);
        }
        Ok(v)
    };
    let task = col_u64(r)?;
    let project = col_u64(r)?;
    let experiment = col_u64(r)?;
    let query = col_u64(r)?;
    let dbms_label = col_str(r)?;
    let host = col_str(r)?;
    let contributor = col_str(r)?;
    let mut times_len = Vec::with_capacity(n);
    for _ in 0..n {
        times_len.push(r.u32()? as usize);
    }
    let mut times = Vec::with_capacity(n);
    for len in &times_len {
        let mut ts = Vec::with_capacity(*len);
        for _ in 0..*len {
            ts.push(r.f64()?);
        }
        times.push(ts);
    }
    let rows = col_u64(r)?;
    let has_error = r.bitmap(n)?;
    let mut errors = Vec::with_capacity(n);
    for has in &has_error {
        errors.push(if *has { Some(r.str()?) } else { None });
    }
    let mut loads = Vec::with_capacity(n);
    for _ in 0..n {
        loads.push((
            LoadAvg { one: r.f64()?, five: r.f64()?, fifteen: r.f64()? },
            LoadAvg { one: r.f64()?, five: r.f64()?, fifteen: r.f64()? },
        ));
    }
    let mut extras: Vec<serde_json::Value> = Vec::with_capacity(n);
    for _ in 0..n {
        extras.push(r.json("extras")?);
    }
    let hidden = r.bitmap(n)?;
    let has_fp = r.bitmap(n)?;
    let mut fingerprints = Vec::with_capacity(n);
    for has in &has_fp {
        fingerprints.push(if *has { Some(r.u64()?) } else { None });
    }
    let has_profile = r.bitmap(n)?;
    let mut profiles = Vec::with_capacity(n);
    for has in &has_profile {
        profiles.push(if *has { Some(read_profile(r)?) } else { None });
    }

    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        records.push(ResultRecord {
            task: task[i],
            project: project[i],
            experiment: experiment[i],
            query: query[i],
            dbms_label: dbms_label[i].clone(),
            host: host[i].clone(),
            contributor: contributor[i].clone(),
            times_ms: times[i].clone(),
            rows: rows[i] as usize,
            error: errors[i].clone(),
            load_before: loads[i].0,
            load_after: loads[i].1,
            extras: extras[i].clone(),
            hidden: hidden[i],
            fingerprint: fingerprints[i],
            profile: profiles[i].clone(),
        });
    }
    Ok(records)
}

// ---------------------------------------------- columnar: result sets

fn cell_tag(v: &WireValue) -> u8 {
    match v {
        WireValue::Null => CT_ALL_NULL,
        WireValue::Bool(_) => CT_BOOL,
        WireValue::Int(_) => CT_INT,
        WireValue::Float(_) => CT_FLOAT,
        WireValue::Decimal { .. } => CT_DECIMAL,
        WireValue::Str(_) => CT_STR,
        WireValue::Date(_) => CT_DATE,
        WireValue::Interval { .. } => CT_INTERVAL,
    }
}

fn write_cell_payload(w: &mut W, v: &WireValue) {
    match v {
        WireValue::Null => {}
        WireValue::Bool(b) => w.bool(*b),
        WireValue::Int(i) => w.i64(*i),
        WireValue::Float(f) => w.f64(*f),
        WireValue::Decimal { raw, scale } => {
            w.i128(*raw);
            w.u8(*scale);
        }
        WireValue::Str(s) => w.str(s),
        WireValue::Date(d) => w.i32(*d),
        WireValue::Interval { months, days } => {
            w.i32(*months);
            w.i32(*days);
        }
    }
}

fn read_cell_payload(r: &mut R<'_>, tag: u8) -> D<WireValue> {
    Ok(match tag {
        CT_BOOL => WireValue::Bool(r.bool()?),
        CT_INT => WireValue::Int(r.i64()?),
        CT_FLOAT => WireValue::Float(r.f64()?),
        CT_DECIMAL => WireValue::Decimal {
            raw: r.i128()?,
            scale: r.u8()?,
        },
        CT_STR => WireValue::Str(r.str()?),
        CT_DATE => WireValue::Date(r.i32()?),
        CT_INTERVAL => WireValue::Interval {
            months: r.i32()?,
            days: r.i32()?,
        },
        other => return Err(format!("bad cell tag {other}")),
    })
}

/// One column: `[tag][null bitmap][packed values]`. `tag` is the uniform
/// cell type of the column (the common case — columns are typed), `0`
/// for an all-null column, or `0xFF` for a mixed column, which falls
/// back to a tag byte per non-null cell.
fn write_column(w: &mut W, col: &[WireValue]) {
    let mut uniform: Option<u8> = None;
    let mut mixed = false;
    for v in col {
        if matches!(v, WireValue::Null) {
            continue;
        }
        match uniform {
            None => uniform = Some(cell_tag(v)),
            Some(t) if t == cell_tag(v) => {}
            Some(_) => {
                mixed = true;
                break;
            }
        }
    }
    let tag = if mixed { CT_MIXED } else { uniform.unwrap_or(CT_ALL_NULL) };
    w.u8(tag);
    w.bitmap(col.len(), |i| !matches!(col[i], WireValue::Null));
    for v in col {
        if matches!(v, WireValue::Null) {
            continue;
        }
        if tag == CT_MIXED {
            w.u8(cell_tag(v));
        }
        write_cell_payload(w, v);
    }
}

fn read_column(r: &mut R<'_>, rows: usize) -> D<Vec<WireValue>> {
    let tag = r.u8()?;
    let present = r.bitmap(rows)?;
    let mut col = Vec::with_capacity(rows);
    for p in present {
        if !p {
            col.push(WireValue::Null);
            continue;
        }
        let cell_tag = if tag == CT_MIXED { r.u8()? } else { tag };
        col.push(read_cell_payload(r, cell_tag)?);
    }
    Ok(col)
}

fn write_result_set(w: &mut W, rs: &WireResultSet) {
    w.u32(rs.columns.len() as u32);
    w.u32(rs.rows() as u32);
    for name in &rs.columns {
        w.str(name);
    }
    for col in &rs.data {
        write_column(w, col);
    }
}

fn read_result_set(r: &mut R<'_>) -> D<WireResultSet> {
    let ncols = r.u32()? as usize;
    let nrows = r.u32()? as usize;
    if ncols > (1 << 16) || nrows > (1 << 28) {
        return Err(format!("result set of {ncols}x{nrows} too large"));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(r.str()?);
    }
    let mut data = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        data.push(read_column(r, nrows)?);
    }
    Ok(WireResultSet { columns, data })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn round_trip_request(req: Request) -> Request {
        let frame = encode_request_frame(7, &req);
        let mut buf = frame.clone();
        let (tag, body) = take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(tag, 7);
        assert!(buf.is_empty());
        match decode_request(&body).unwrap() {
            DecodedRequest::Op(r) => *r,
            other => panic!("expected an op, got {other:?}"),
        }
    }

    fn round_trip_reply(outcome: PlatformResult<Reply>) -> PlatformResult<Reply> {
        let frame = encode_reply_frame(3, &outcome);
        let mut buf = frame;
        let (tag, body) = take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(tag, 3);
        match decode_reply(&body).unwrap() {
            DecodedReply::Outcome(o) => o,
            other => panic!("expected an outcome, got {other:?}"),
        }
    }

    fn sample_outcome() -> RunOutcome {
        RunOutcome {
            times_ms: vec![1.5, 2.25, 3.125],
            rows: 42,
            error: None,
            load_before: LoadAvg { one: 0.5, five: 0.25, fifteen: 0.125 },
            load_after: LoadAvg { one: 1.5, five: 1.25, fifteen: 1.125 },
            extras: serde_json::json!({"cache": "warm"}),
            fingerprint: Some(0xdead_beef_cafe_f00d),
            profile: Some(vec![OperatorProfile {
                op: "scan lineitem".into(),
                rows_in: 100,
                rows_out: 60,
                batches: 2,
                nanos: 12345,
                chunks_scanned: 3,
                chunks_skipped: 9,
            }]),
        }
    }

    fn sample_record(i: u64) -> ResultRecord {
        ResultRecord {
            task: i,
            project: 1,
            experiment: 2,
            query: 10 + i,
            dbms_label: "rowstore-2.0".into(),
            host: "bench-server".into(),
            contributor: format!("ck_{i}"),
            times_ms: vec![1.0 + i as f64, 2.0],
            rows: 5,
            error: (i % 2 == 1).then(|| "boom".to_string()),
            load_before: LoadAvg::default(),
            load_after: LoadAvg { one: 0.1, five: 0.2, fifteen: 0.3 },
            extras: serde_json::json!({"i": i as i64}),
            hidden: i.is_multiple_of(3),
            fingerprint: i.is_multiple_of(2).then_some(0xfeed + i),
            profile: (i == 2).then(|| sample_outcome().profile.unwrap()),
        }
    }

    #[test]
    fn every_request_round_trips() {
        let reqs = vec![
            Request::RegisterUser { nickname: "mlk".into(), email: "mlk@cwi.nl".into() },
            Request::IssueKey { user: UserId(3) },
            Request::DbmsLabels,
            Request::CreateProject {
                owner: UserId(1),
                title: "t".into(),
                synopsis: "s".into(),
                visibility: Visibility::Private,
            },
            Request::Invite { project: ProjectId(1), owner: UserId(2), user: UserId(3) },
            Request::SetTargets {
                project: ProjectId(1),
                actor: UserId(2),
                dbms_labels: vec!["a".into(), "b".into()],
                hosts: vec!["h".into()],
            },
            Request::Comment { project: ProjectId(1), author: UserId(2), text: "hi".into() },
            Request::TakeDown { project: ProjectId(9) },
            Request::RoleOf { project: ProjectId(1), user: UserId(2) },
            Request::AddExperiment {
                project: ProjectId(1),
                actor: UserId(2),
                title: "e".into(),
                baseline_sql: "select 1 from t".into(),
                grammar: Some("Q:= select $a from t\n$a:= x | y".into()),
                template_cap: 100,
                pool_cap: 10,
            },
            Request::SeedPool {
                project: ProjectId(1),
                experiment: ExperimentId(0),
                actor: UserId(2),
                n_random: 5,
                seed: 42,
            },
            Request::MorphPool {
                project: ProjectId(1),
                experiment: ExperimentId(0),
                actor: UserId(2),
                strategy: None,
                steps: 3,
                seed: 7,
            },
            Request::EnqueueExperiment {
                project: ProjectId(1),
                experiment: ExperimentId(0),
                actor: UserId(2),
            },
            Request::ResultsForKey { project: ProjectId(1), key: ContributorKey("ck_x".into()) },
            Request::ExportCsv { project: ProjectId(1), viewer: UserId(2) },
            Request::HideResult { project: ProjectId(1), actor: UserId(2), index: 4, hidden: true },
            Request::RequestTask {
                key: ContributorKey("ck_y".into()),
                dbms_label: "rowstore-2.0".into(),
                host: "bench-server".into(),
                claim: None,
            },
            Request::RequestTask {
                key: ContributorKey("ck_y".into()),
                dbms_label: "rowstore-2.0".into(),
                host: "bench-server".into(),
                claim: Some(0xfeed_beef),
            },
            Request::ReportResult {
                key: ContributorKey("ck_y".into()),
                task: TaskId(8),
                outcome: sample_outcome(),
            },
            Request::QueueSummary,
            Request::ReapStuck { timeout_ms: 30_000 },
            Request::Requeue { task: TaskId(5) },
            Request::Metrics,
            Request::Execute { sql: "select count(*) from region".into(), fingerprint: Some(99) },
        ];
        for req in reqs {
            let back = round_trip_request(req.clone());
            // Compare via the JSON debug form — RunOutcome has no PartialEq.
            assert_eq!(format!("{back:?}"), format!("{req:?}"));
        }
    }

    #[test]
    fn replies_and_errors_round_trip() {
        let mut task = Task {
            id: TaskId(1),
            project: ProjectId(2),
            experiment: ExperimentId(3),
            query: QueryId(4),
            sql: "select 1 from t".into(),
            dbms_label: "rowstore-2.0".into(),
            host: "bench-server".into(),
            state: TaskState::Running { contributor: ContributorKey("ck_1".into()) },
            started: None,
        };
        let replies = vec![
            Reply::Unit,
            Reply::User(UserId(1)),
            Reply::Key(ContributorKey("ck_z".into())),
            Reply::Labels(vec!["a".into(), "b".into()]),
            Reply::Project(ProjectId(2)),
            Reply::Role(Role::Contributor),
            Reply::Experiment(ExperimentId(3)),
            Reply::Seeded(5),
            Reply::Added(vec![QueryId(1), QueryId(9)]),
            Reply::Enqueued(12),
            Reply::Results(vec![sample_record(0), sample_record(1), sample_record(2)]),
            Reply::Csv("a,b\n1,2\n".into()),
            Reply::Handout(Some(task.clone())),
            Reply::Handout(None),
            Reply::Index(7),
            Reply::Queue(QueueSummary { queued: 1, running: 2, finished: 3, failed: 4, timed_out: 5 }),
            Reply::Reaped(vec![TaskId(3)]),
            Reply::Execution(ExecOutcome {
                result: WireResultSet {
                    columns: vec!["n".into(), "s".into()],
                    data: vec![
                        vec![WireValue::Int(1), WireValue::Null, WireValue::Int(3)],
                        vec![
                            WireValue::Str("x".into()),
                            WireValue::Str("y".into()),
                            WireValue::Null,
                        ],
                    ],
                },
                fingerprint: 0xabcd,
                cache: CacheStatus::Hit,
            }),
        ];
        for reply in replies {
            let back = round_trip_reply(Ok(reply.clone())).unwrap();
            assert_eq!(format!("{back:?}"), format!("{reply:?}"));
        }
        // Every TaskState variant travels.
        for state in [
            TaskState::Queued,
            TaskState::Done,
            TaskState::Failed("x".into()),
            TaskState::TimedOut,
        ] {
            task.state = state.clone();
            let back = round_trip_reply(Ok(Reply::Handout(Some(task.clone())))).unwrap();
            match back {
                Reply::Handout(Some(t)) => assert_eq!(t.state, state),
                other => panic!("{other:?}"),
            }
        }
        // Errors reconstruct the exact typed variant.
        for err in [
            PlatformError::Invalid("bad".into()),
            PlatformError::UnknownProject(42),
            PlatformError::AccessDenied("nope".into()),
            PlatformError::PoolFull(10),
            PlatformError::Transport("io".into()),
            PlatformError::Throttled("in-flight bound".into()),
        ] {
            let back = round_trip_reply(Err(err.clone()));
            assert_eq!(back.unwrap_err(), err);
        }
    }

    #[test]
    fn mixed_and_typed_columns_both_encode() {
        let rs = WireResultSet {
            columns: vec!["mixed".into(), "ints".into(), "nulls".into()],
            data: vec![
                vec![
                    WireValue::Int(1),
                    WireValue::Str("two".into()),
                    WireValue::Float(3.0),
                    WireValue::Decimal { raw: 12345, scale: 2 },
                ],
                vec![
                    WireValue::Int(10),
                    WireValue::Null,
                    WireValue::Int(30),
                    WireValue::Int(40),
                ],
                vec![WireValue::Null, WireValue::Null, WireValue::Null, WireValue::Null],
            ],
        };
        let out = ExecOutcome { result: rs.clone(), fingerprint: 1, cache: CacheStatus::Bypass };
        match round_trip_reply(Ok(Reply::Execution(out))).unwrap() {
            Reply::Execution(back) => assert_eq!(back.result, rs),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hello_frames_round_trip() {
        let mut buf = encode_hello_frame(0);
        let (_, body) = take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        match decode_request(&body).unwrap() {
            DecodedRequest::Hello { version } => assert_eq!(version, PROTO_VERSION),
            other => panic!("{other:?}"),
        }
        let mut buf = encode_hello_ok_frame(0);
        let (_, body) = take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        match decode_reply(&body).unwrap() {
            DecodedReply::Hello { version } => assert_eq!(version, PROTO_VERSION),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partial_frames_wait_and_bad_headers_fail() {
        let full = encode_request_frame(1, &Request::QueueSummary);
        // Feed the frame byte by byte: no frame until the last byte.
        let mut buf = Vec::new();
        for (i, b) in full.iter().enumerate() {
            buf.push(*b);
            let got = take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap();
            if i + 1 < full.len() {
                assert!(got.is_none(), "premature frame at byte {i}");
            } else {
                assert!(got.is_some());
            }
        }
        assert!(buf.is_empty());
        // Two frames back to back: both extracted in order.
        let mut buf = encode_request_frame(1, &Request::QueueSummary);
        buf.extend(encode_request_frame(2, &Request::Metrics));
        assert_eq!(take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap().0, 1);
        assert_eq!(take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap().0, 2);
        // An oversized length field is a hard protocol error.
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0];
        assert!(take_frame(&mut buf, DEFAULT_MAX_FRAME).is_err());
        // Truncated payloads are decode errors, not panics.
        let mut buf = encode_request_frame(1, &Request::RegisterUser {
            nickname: "a".into(),
            email: "b".into(),
        });
        let (_, body) = take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert!(decode_request(&body[..body.len() - 1]).is_err());
        // Trailing garbage is rejected too.
        let mut extended = body.clone();
        extended.push(0);
        assert!(decode_request(&extended).is_err());
    }

    #[test]
    fn report_batch_summary_frame_round_trips() {
        // OP_REPORT_BATCH decodes to BatchEnd (the server assembles
        // sequences itself), so it gets its own round trip instead of
        // joining `every_request_round_trips`.
        let key = ContributorKey("ck_bulk".into());
        let reports: Vec<(TaskId, RunOutcome)> = (0..4)
            .map(|i| {
                let mut o = sample_outcome();
                o.rows = i as usize;
                (TaskId(100 + i), o)
            })
            .collect();
        let req = Request::ReportBatch { key: key.clone(), reports: reports.clone() };
        let mut buf = encode_request_frame(9, &req);
        let (tag, body) = take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(tag, 9);
        match decode_request(&body).unwrap() {
            DecodedRequest::BatchEnd { key: k, total, inline } => {
                assert_eq!(k, key);
                assert_eq!(total, 4);
                assert_eq!(format!("{inline:?}"), format!("{reports:?}"));
            }
            other => panic!("{other:?}"),
        }
        // The Batch reply round trips like any other.
        match round_trip_reply(Ok(Reply::Batch(vec![0, 7, 3]))).unwrap() {
            Reply::Batch(idx) => assert_eq!(idx, vec![0, 7, 3]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_part_and_end_frames_stream_under_one_tag() {
        let key = ContributorKey("ck_stream".into());
        let pairs: Vec<(TaskId, RunOutcome)> =
            (0..3).map(|i| (TaskId(i), sample_outcome())).collect();
        let mut buf = encode_batch_part_frame(5, &pairs[..2]);
        buf.extend(encode_batch_end_frame(5, &key, 3, &pairs[2..]));
        let (tag, body) = take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(tag, 5);
        match decode_request(&body).unwrap() {
            DecodedRequest::BatchPart(p) => {
                assert_eq!(format!("{p:?}"), format!("{:?}", &pairs[..2]))
            }
            other => panic!("{other:?}"),
        }
        let (tag, body) = take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(tag, 5);
        match decode_request(&body).unwrap() {
            DecodedRequest::BatchEnd { key: k, total, inline } => {
                assert_eq!(k, key);
                assert_eq!(total, 3);
                assert_eq!(inline.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        // An empty part frame is legal (and decodes to zero pairs).
        let mut buf = encode_batch_part_frame(5, &[]);
        let (_, body) = take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        match decode_request(&body).unwrap() {
            DecodedRequest::BatchPart(p) => assert!(p.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subscribe_and_notification_frames_round_trip() {
        let key = ContributorKey("ck_sub".into());
        let mut buf = encode_subscribe_frame(2, &key);
        let (tag, body) = take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(tag, 2);
        match decode_request(&body).unwrap() {
            DecodedRequest::Subscribe { key: k } => assert_eq!(k, key),
            other => panic!("{other:?}"),
        }
        for n in [
            Notification::QueueReady { project: ProjectId(4) },
            Notification::ExperimentFinished {
                project: ProjectId(4),
                experiment: ExperimentId(2),
            },
        ] {
            let mut buf = encode_notification_frame(&n);
            let (tag, body) = take_frame(&mut buf, DEFAULT_MAX_FRAME).unwrap().unwrap();
            assert_eq!(tag, 0, "push frames always ride tag 0");
            match decode_reply(&body).unwrap() {
                DecodedReply::Notification(back) => assert_eq!(back, n),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn decimal_and_extras_survive_binary() {
        let out = RunOutcome {
            extras: Value::Null,
            ..sample_outcome()
        };
        let req = Request::ReportResult {
            key: ContributorKey("ck".into()),
            task: TaskId(0),
            outcome: out,
        };
        let back = round_trip_request(req.clone());
        assert_eq!(format!("{back:?}"), format!("{req:?}"));
    }
}
