//! The one execution path behind every protocol version.
//!
//! Both the v1 HTTP handler and the v2 framed server decode bytes into
//! the same typed [`Request`] and call [`dispatch`]; protocol codecs
//! only translate, they never decide. That makes v1/v2 behavioral
//! equivalence a property of the structure rather than of discipline —
//! the differential suite then checks the codecs themselves.

use super::proto::{CacheStatus, ExecOutcome, Reply, Request, WireResultSet};
use crate::error::{PlatformError, PlatformResult};
use crate::pool::Strategy;
use crate::server::SqalpelServer;
use sqalpel_engine::{CacheOutcome, Dbms};
use std::sync::Arc;
use std::time::Duration;

/// The SQL execution backend a wire server may attach: a target system
/// reachable through [`Request::Execute`]. Kept separate from
/// [`SqalpelServer`] so the management/queue surface stays usable
/// without an engine in the process.
#[derive(Clone)]
pub struct ExecBackend {
    pub dbms: Arc<dyn Dbms>,
}

impl ExecBackend {
    pub fn new(dbms: Arc<dyn Dbms>) -> ExecBackend {
        ExecBackend { dbms }
    }
}

/// Execute one typed request against the server. Every failure is a
/// typed [`PlatformError`]; protocol layers map it to their own frame.
pub fn dispatch(
    server: &SqalpelServer,
    backend: Option<&ExecBackend>,
    req: &Request,
) -> PlatformResult<Reply> {
    match req {
        Request::RegisterUser { nickname, email } => {
            Ok(Reply::User(server.register_user(nickname, email)?))
        }
        Request::IssueKey { user } => Ok(Reply::Key(server.issue_key(*user)?)),
        Request::AddDbms { entry } => {
            server.add_dbms(entry.clone())?;
            Ok(Reply::Unit)
        }
        Request::AddHost { entry } => {
            server.add_host(entry.clone())?;
            Ok(Reply::Unit)
        }
        Request::DbmsLabels => Ok(Reply::Labels(server.dbms_labels())),
        Request::CreateProject {
            owner,
            title,
            synopsis,
            visibility,
        } => Ok(Reply::Project(server.create_project(
            *owner,
            title,
            synopsis,
            *visibility,
        )?)),
        Request::Invite {
            project,
            owner,
            user,
        } => {
            server.invite(*project, *owner, *user)?;
            Ok(Reply::Unit)
        }
        Request::SetTargets {
            project,
            actor,
            dbms_labels,
            hosts,
        } => {
            server.set_targets(*project, *actor, dbms_labels.clone(), hosts.clone())?;
            Ok(Reply::Unit)
        }
        Request::Comment {
            project,
            author,
            text,
        } => {
            server.comment(*project, *author, text)?;
            Ok(Reply::Unit)
        }
        Request::TakeDown { project } => {
            server.take_down(*project)?;
            Ok(Reply::Unit)
        }
        Request::RoleOf { project, user } => Ok(Reply::Role(server.role_of(*project, *user)?)),
        Request::AddExperiment {
            project,
            actor,
            title,
            baseline_sql,
            grammar,
            template_cap,
            pool_cap,
        } => {
            // Grammar source travels as text and is parsed server-side,
            // same as v1 has always done — parse errors are Grammar(422).
            let grammar = match grammar {
                None => None,
                Some(src) => Some(sqalpel_grammar::Grammar::parse(src)?),
            };
            Ok(Reply::Experiment(server.add_experiment(
                *project,
                *actor,
                title,
                baseline_sql,
                grammar,
                *template_cap as usize,
                *pool_cap as usize,
            )?))
        }
        Request::SeedPool {
            project,
            experiment,
            actor,
            n_random,
            seed,
        } => Ok(Reply::Seeded(server.seed_pool(
            *project,
            *experiment,
            *actor,
            *n_random as usize,
            *seed,
        )? as u64)),
        Request::MorphPool {
            project,
            experiment,
            actor,
            strategy,
            steps,
            seed,
        } => {
            let strategy = match strategy {
                None => None,
                Some(name) => Some(Strategy::from_name(name).map_err(PlatformError::Invalid)?),
            };
            Ok(Reply::Added(server.morph_pool(
                *project,
                *experiment,
                *actor,
                strategy,
                *steps as usize,
                *seed,
            )?))
        }
        Request::EnqueueExperiment {
            project,
            experiment,
            actor,
        } => Ok(Reply::Enqueued(
            server.enqueue_experiment(*project, *experiment, *actor)? as u64,
        )),
        Request::ResultsForKey { project, key } => {
            Ok(Reply::Results(server.results_for_key(*project, key)?))
        }
        Request::ExportCsv { project, viewer } => {
            Ok(Reply::Csv(server.export_csv(*project, *viewer)?))
        }
        Request::HideResult {
            project,
            actor,
            index,
            hidden,
        } => {
            server.hide_result(*project, *actor, *index as usize, *hidden)?;
            Ok(Reply::Unit)
        }
        Request::RequestTask {
            key,
            dbms_label,
            host,
            claim,
        } => Ok(Reply::Handout(server.request_task_claimed(
            key, dbms_label, host, *claim,
        )?)),
        Request::ReportResult { key, task, outcome } => Ok(Reply::Index(
            server.report_result(key, *task, outcome.clone())? as u64,
        )),
        Request::ReportBatch { key, reports } => {
            server
                .metrics()
                .add("wire.bulk_records", reports.len() as u64);
            Ok(Reply::Batch(server.report_batch(key, reports)?))
        }
        Request::QueueSummary => Ok(Reply::Queue(server.queue_summary())),
        Request::ReapStuck { timeout_ms } => Ok(Reply::Reaped(
            server.reap_stuck(Duration::from_millis(*timeout_ms)),
        )),
        Request::Requeue { task } => {
            server.requeue(*task)?;
            Ok(Reply::Unit)
        }
        Request::Metrics => Ok(Reply::Metrics(server.metrics().snapshot())),
        Request::Execute { sql, fingerprint } => {
            let backend = backend.ok_or_else(|| {
                PlatformError::Invalid("no execution backend attached to this server".into())
            })?;
            let exec = backend
                .dbms
                .execute_by_fingerprint(sql, *fingerprint)
                .map_err(|e| PlatformError::Invalid(e.to_string()))?;
            let metrics = server.metrics();
            let cache = match exec.cache {
                CacheOutcome::Hit => {
                    metrics.incr("plan_cache.hits");
                    CacheStatus::Hit
                }
                CacheOutcome::Miss { evicted } => {
                    metrics.incr("plan_cache.misses");
                    if evicted {
                        metrics.incr("plan_cache.evictions");
                    }
                    CacheStatus::Miss
                }
                CacheOutcome::Reoptimized => {
                    metrics.incr("plan_cache.reoptimized");
                    CacheStatus::Reoptimized
                }
                CacheOutcome::Bypass => CacheStatus::Bypass,
            };
            Ok(Reply::Execution(ExecOutcome {
                result: WireResultSet::from_result_set(&exec.result),
                fingerprint: exec.fingerprint,
                cache,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Visibility;
    use sqalpel_engine::{Database, PlanCache, RowStore};

    #[test]
    fn execute_without_backend_is_invalid() {
        let server = SqalpelServer::new();
        let err = dispatch(
            &server,
            None,
            &Request::Execute {
                sql: "select 1 from region".into(),
                fingerprint: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, PlatformError::Invalid(_)));
    }

    #[test]
    fn execute_counts_plan_cache_traffic() {
        let server = SqalpelServer::new();
        let db = Arc::new(Database::tpch(0.001, 42));
        let dbms = RowStore::new(db).with_plan_cache(Arc::new(PlanCache::new(8)));
        let backend = ExecBackend::new(Arc::new(dbms));
        let sql = "select count(*) from lineitem";

        // Miss first (cache cold), then a hit via the returned fingerprint.
        let fp = match dispatch(
            &server,
            Some(&backend),
            &Request::Execute { sql: sql.into(), fingerprint: None },
        )
        .unwrap()
        {
            Reply::Execution(out) => {
                assert_eq!(out.cache, CacheStatus::Miss);
                out.fingerprint
            }
            other => panic!("{other:?}"),
        };
        match dispatch(
            &server,
            Some(&backend),
            &Request::Execute { sql: sql.into(), fingerprint: Some(fp) },
        )
        .unwrap()
        {
            Reply::Execution(out) => assert_eq!(out.cache, CacheStatus::Hit),
            other => panic!("{other:?}"),
        }
        let snap = server.metrics().snapshot();
        assert_eq!(snap.counter("plan_cache.hits"), Some(1));
        assert_eq!(snap.counter("plan_cache.misses"), Some(1));
    }

    #[test]
    fn execute_reports_adaptive_reoptimization() {
        // The adaptive loop over the wire: a profiled run records
        // cardinality feedback against the fingerprint, so the next
        // Execute re-plans (counted as plan_cache.reoptimized) and the
        // one after that is a plain hit on the improved plan.
        let server = SqalpelServer::new();
        let db = Arc::new(Database::tpch(0.001, 42));
        let store = RowStore::new(db)
            .with_threads(1)
            .with_plan_cache(Arc::new(PlanCache::new(8)));
        // The clone shares the Arc'd plan cache with the backend.
        let backend = ExecBackend::new(Arc::new(store.clone()));
        let sql = "select count(*) from lineitem, orders, customer \
                   where l_orderkey = o_orderkey and o_custkey = c_custkey \
                     and c_acctbal > 0";

        let exec = |fingerprint: Option<u64>| match dispatch(
            &server,
            Some(&backend),
            &Request::Execute { sql: sql.into(), fingerprint },
        )
        .unwrap()
        {
            Reply::Execution(out) => out,
            other => panic!("{other:?}"),
        };
        let cold = exec(None);
        assert_eq!(cold.cache, CacheStatus::Miss);
        store.execute_analyzed(sql).unwrap();
        let warm = exec(Some(cold.fingerprint));
        assert_eq!(warm.cache, CacheStatus::Reoptimized);
        assert_eq!(warm.fingerprint, cold.fingerprint);
        assert_eq!(
            format!("{:?}", warm.result),
            format!("{:?}", cold.result),
            "reoptimized plan changed the result"
        );
        assert_eq!(exec(Some(cold.fingerprint)).cache, CacheStatus::Hit);
        let snap = server.metrics().snapshot();
        assert_eq!(snap.counter("plan_cache.reoptimized"), Some(1));
        assert_eq!(snap.counter("plan_cache.hits"), Some(1));
    }

    #[test]
    fn management_ops_round_trip_through_dispatch() {
        let server = SqalpelServer::new();
        let user = match dispatch(
            &server,
            None,
            &Request::RegisterUser { nickname: "mlk".into(), email: "mlk@cwi.nl".into() },
        )
        .unwrap()
        {
            Reply::User(u) => u,
            other => panic!("{other:?}"),
        };
        let project = match dispatch(
            &server,
            None,
            &Request::CreateProject {
                owner: user,
                title: "demo".into(),
                synopsis: "dispatch test".into(),
                visibility: Visibility::Public,
            },
        )
        .unwrap()
        {
            Reply::Project(p) => p,
            other => panic!("{other:?}"),
        };
        match dispatch(&server, None, &Request::RoleOf { project, user }).unwrap() {
            Reply::Role(role) => assert_eq!(role, crate::project::Role::Owner),
            other => panic!("{other:?}"),
        }
        // A bad strategy name fails typed, not panicking.
        let err = dispatch(
            &server,
            None,
            &Request::MorphPool {
                project,
                experiment: crate::project::ExperimentId(0),
                actor: user,
                strategy: Some("no-such-strategy".into()),
                steps: 1,
                seed: 1,
            },
        )
        .unwrap_err();
        assert!(matches!(err, PlatformError::Invalid(_)));
    }
}
