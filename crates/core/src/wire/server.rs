//! The HTTP server: a bounded thread pool over `std::net::TcpListener`.
//!
//! One acceptor thread feeds accepted connections into a bounded channel
//! drained by a fixed pool of handler threads — enough concurrency for a
//! crowd of contributors without unbounded thread growth. Shutdown is
//! graceful and deterministic: a flag flips, a wake-up connection breaks
//! the acceptor out of `accept()`, the channel closes, and every handler
//! drains its queue before exiting. Dropping the server shuts it down.

use crate::server::SqalpelServer;
use crate::wire::api;
use crate::wire::http::{read_request, write_response, Response};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables of a [`WireServer`].
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Handler threads (concurrent in-flight requests).
    pub workers: usize,
    /// Per-request body cap in bytes.
    pub max_body: usize,
    /// Socket read/write timeout — a stalled peer cannot pin a handler.
    pub io_timeout: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            workers: 4,
            max_body: 1 << 20,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// A running wire server. Bind with [`WireServer::start`], read the
/// actual address with [`WireServer::local_addr`] (use port 0 to let the
/// OS pick), stop with [`WireServer::shutdown`] or by dropping.
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl WireServer {
    /// Bind `addr` and start serving `server` in background threads.
    pub fn start(
        server: Arc<SqalpelServer>,
        addr: impl ToSocketAddrs,
        config: WireConfig,
    ) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        // Bounded: if every handler is busy and the backlog fills, the
        // acceptor blocks and the kernel queue applies backpressure.
        let (tx, rx) = sync_channel::<TcpStream>(config.workers * 2);
        let rx = Arc::new(Mutex::new(rx));

        let handlers = (0..config.workers.max(1))
            .map(|_| {
                let server = Arc::clone(&server);
                let rx = Arc::clone(&rx);
                let config = config.clone();
                std::thread::spawn(move || handler_loop(&server, &rx, &config))
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || acceptor_loop(&listener, &tx, &stop))
        };

        Ok(WireServer {
            addr: local,
            stop,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The bound address (the OS-picked port when started with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight requests, join every thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept() with a throwaway
        // connection to ourselves; it sees the flag and exits, dropping
        // the channel sender, which in turn stops the handlers.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for handler in self.handlers.drain(..) {
            let _ = handler.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            // The wake-up connection (or whatever arrived with it) is
            // dropped unanswered; clients treat that as a transport error.
            return;
        }
        match conn {
            Ok((stream, _)) => {
                if tx.send(stream).is_err() {
                    return;
                }
            }
            // Transient accept failures (EMFILE, aborted handshake): keep
            // serving.
            Err(_) => continue,
        }
    }
}

fn handler_loop(
    server: &SqalpelServer,
    rx: &Mutex<Receiver<TcpStream>>,
    config: &WireConfig,
) {
    loop {
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let mut stream = match stream {
            Ok(s) => s,
            // Channel closed: the acceptor exited, shutdown is underway.
            Err(_) => return,
        };
        let _ = stream.set_read_timeout(Some(config.io_timeout));
        let _ = stream.set_write_timeout(Some(config.io_timeout));
        let response = match read_request(&mut stream, config.max_body) {
            Ok(req) => api::handle(server, &req),
            // Unparseable request: answer 400 if the socket still works.
            Err(e) => Response::text(400, format!("bad request: {e}")),
        };
        // The peer may have vanished (drop-injection clients do this on
        // purpose); a failed write only affects this connection.
        let _ = write_response(&mut stream, &response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::http::{read_response, write_request};

    #[test]
    fn serves_requests_and_shuts_down_cleanly() {
        let server = Arc::new(SqalpelServer::new());
        let mut wire =
            WireServer::start(Arc::clone(&server), "127.0.0.1:0", WireConfig::default()).unwrap();
        let addr = wire.local_addr();

        // A plain socket-level round trip against the queue endpoint.
        let mut s = TcpStream::connect(addr).unwrap();
        write_request(&mut s, "GET", "/v1/queue/summary", b"").unwrap();
        let (status, body) = read_response(&mut s, 1 << 20).unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(v["queued"].as_i64(), Some(0));

        // A garbage request gets a 400, not a hung or killed handler.
        let mut s = TcpStream::connect(addr).unwrap();
        use std::io::Write;
        s.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let (status, _) = read_response(&mut s, 1 << 20).unwrap();
        assert_eq!(status, 400);

        wire.shutdown();
        wire.shutdown(); // idempotent
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
