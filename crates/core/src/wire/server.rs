//! The wire servers: v1 HTTP (bounded thread pool) and v2 framed
//! (nonblocking sharded event loop).
//!
//! [`WireServer`] is the original HTTP/1.1 muscle: one acceptor thread
//! feeds accepted connections into a bounded channel drained by a fixed
//! pool of handler threads — one request per connection, enough
//! concurrency for a crowd of contributors without unbounded thread
//! growth.
//!
//! [`V2Server`] serves the framed binary protocol. Connections are
//! persistent and cheap: the acceptor deals them round-robin to a small
//! set of shard threads, and each shard multiplexes *all* its
//! connections with nonblocking I/O — ten thousand mostly-idle
//! contributors cost buffers, not threads. A shard sweeps its
//! connections (flush pending writes, read available bytes, dispatch
//! every complete frame); when a sweep does no work it yields, then
//! sleeps briefly, so an idle server burns no CPU to speak of. A partial
//! frame left at disconnect is discarded **without dispatching** — the
//! drop-injection suite depends on that.
//!
//! Both servers execute ops through the one shared
//! [`dispatch`](crate::wire::dispatch::dispatch), optionally with an
//! attached [`ExecBackend`] for `Execute`. Shutdown is graceful and
//! deterministic for both; dropping a server shuts it down.

use crate::driver::RunOutcome;
use crate::queue::TaskId;
use crate::server::SqalpelServer;
use crate::wire::dispatch::ExecBackend;
use crate::wire::proto::v1;
use crate::wire::proto::v2::{self, DecodedRequest};
use crate::wire::proto::{ErrorCode, Reply, Request};
use crate::wire::transport::http::{read_request, write_response, Response};
use crate::PlatformError;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables of a [`WireServer`].
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Handler threads (concurrent in-flight requests).
    pub workers: usize,
    /// Per-request body cap in bytes.
    pub max_body: usize,
    /// Socket read/write timeout — a stalled peer cannot pin a handler.
    pub io_timeout: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            workers: 4,
            max_body: 1 << 20,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// A running v1 HTTP server. Bind with [`WireServer::start`], read the
/// actual address with [`WireServer::local_addr`] (use port 0 to let the
/// OS pick), stop with [`WireServer::shutdown`] or by dropping.
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl WireServer {
    /// Bind `addr` and start serving `server` in background threads.
    pub fn start(
        server: Arc<SqalpelServer>,
        addr: impl ToSocketAddrs,
        config: WireConfig,
    ) -> io::Result<WireServer> {
        WireServer::start_with_backend(server, None, addr, config)
    }

    /// Like [`WireServer::start`], with a SQL execution backend attached
    /// so `POST /v1/execute` works.
    pub fn start_with_backend(
        server: Arc<SqalpelServer>,
        backend: Option<ExecBackend>,
        addr: impl ToSocketAddrs,
        config: WireConfig,
    ) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        // Bounded: if every handler is busy and the backlog fills, the
        // acceptor blocks and the kernel queue applies backpressure.
        let (tx, rx) = sync_channel::<TcpStream>(config.workers * 2);
        let rx = Arc::new(Mutex::new(rx));

        let handlers = (0..config.workers.max(1))
            .map(|_| {
                let server = Arc::clone(&server);
                let backend = backend.clone();
                let rx = Arc::clone(&rx);
                let config = config.clone();
                std::thread::spawn(move || handler_loop(&server, backend.as_ref(), &rx, &config))
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || acceptor_loop(&listener, &tx, &stop))
        };

        Ok(WireServer {
            addr: local,
            stop,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The bound address (the OS-picked port when started with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight requests, join every thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept() with a throwaway
        // connection to ourselves; it sees the flag and exits, dropping
        // the channel sender, which in turn stops the handlers.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for handler in self.handlers.drain(..) {
            let _ = handler.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            // The wake-up connection (or whatever arrived with it) is
            // dropped unanswered; clients treat that as a transport error.
            return;
        }
        match conn {
            Ok((stream, _)) => {
                if tx.send(stream).is_err() {
                    return;
                }
            }
            // Transient accept failures (EMFILE, aborted handshake): keep
            // serving.
            Err(_) => continue,
        }
    }
}

fn handler_loop(
    server: &SqalpelServer,
    backend: Option<&ExecBackend>,
    rx: &Mutex<Receiver<TcpStream>>,
    config: &WireConfig,
) {
    loop {
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let mut stream = match stream {
            Ok(s) => s,
            // Channel closed: the acceptor exited, shutdown is underway.
            Err(_) => return,
        };
        let _ = stream.set_read_timeout(Some(config.io_timeout));
        let _ = stream.set_write_timeout(Some(config.io_timeout));
        let response = match read_request(&mut stream, config.max_body) {
            Ok(req) => v1::handle(server, backend, &req),
            // Unparseable request: answer 400 if the socket still works.
            Err(e) => Response::text(400, format!("bad request: {e}")),
        };
        // The peer may have vanished (drop-injection clients do this on
        // purpose); a failed write only affects this connection.
        let _ = write_response(&mut stream, &response);
    }
}

// ================================================================== v2

/// Tunables of a [`V2Server`].
#[derive(Debug, Clone)]
pub struct V2Config {
    /// Shard threads; each multiplexes its share of all connections.
    pub shards: usize,
    /// Per-frame body cap in bytes.
    pub max_frame: usize,
}

impl Default for V2Config {
    fn default() -> Self {
        V2Config {
            shards: 2,
            max_frame: v2::DEFAULT_MAX_FRAME,
        }
    }
}

/// A running v2 framed server (see the module docs for the I/O model).
pub struct V2Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
}

impl V2Server {
    /// Bind `addr` and start serving the framed protocol.
    pub fn start(
        server: Arc<SqalpelServer>,
        backend: Option<ExecBackend>,
        addr: impl ToSocketAddrs,
        config: V2Config,
    ) -> io::Result<V2Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let mut senders = Vec::new();
        let shards = (0..config.shards.max(1))
            .map(|_| {
                let (tx, rx) = sync_channel::<TcpStream>(64);
                senders.push(tx);
                let server = Arc::clone(&server);
                let backend = backend.clone();
                let stop = Arc::clone(&stop);
                let max_frame = config.max_frame;
                std::thread::spawn(move || {
                    shard_loop(&server, backend.as_ref(), &rx, &stop, max_frame)
                })
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || v2_acceptor_loop(&listener, &senders, &stop))
        };

        Ok(V2Server {
            addr: local,
            stop,
            acceptor: Some(acceptor),
            shards,
        })
    }

    /// The bound address (the OS-picked port when started with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close every connection, join every thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
    }
}

impl Drop for V2Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn v2_acceptor_loop(listener: &TcpListener, shards: &[SyncSender<TcpStream>], stop: &AtomicBool) {
    let mut next = 0usize;
    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match conn {
            Ok((stream, _)) => {
                // Round-robin; a closed shard channel means shutdown.
                if shards[next % shards.len()].send(stream).is_err() {
                    return;
                }
                next = next.wrapping_add(1);
            }
            Err(_) => continue,
        }
    }
}

/// Per-connection state inside a shard: the stream (nonblocking) plus
/// an input buffer of not-yet-complete frames and an output buffer of
/// not-yet-flushed response bytes.
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Closed (or poisoned) — remove after the output buffer drains.
    dead: bool,
    /// Push-hub subscription id, once the connection subscribed.
    sub: Option<u64>,
    /// Bulk continuation frames buffered per tag, awaiting the summary
    /// frame. Dropped wholesale — undispatched — if the connection dies
    /// mid-sequence.
    parts: HashMap<u32, Vec<(TaskId, RunOutcome)>>,
}

/// Most reports one connection may buffer across an in-flight bulk
/// sequence before the server refuses and hangs up.
const MAX_BATCH_PAIRS: usize = 1 << 22;

/// How many consecutive empty sweeps a shard spins (yielding) before it
/// starts sleeping between sweeps.
const SPIN_SWEEPS: u32 = 50;
/// The sleep once spinning gives up — short enough that a lone serial
/// caller still sees sub-millisecond latency.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

fn shard_loop(
    server: &SqalpelServer,
    backend: Option<&ExecBackend>,
    rx: &Receiver<TcpStream>,
    stop: &AtomicBool,
    max_frame: usize,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut idle_sweeps = 0u32;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Intake. With no connections at all, block on the channel (a
        // timeout keeps the stop flag observed); otherwise just drain
        // whatever has arrived and get back to sweeping.
        if conns.is_empty() {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(stream) => {
                    if let Some(conn) = Conn::adopt(stream) {
                        conns.push(conn);
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
        loop {
            match rx.try_recv() {
                Ok(stream) => {
                    if let Some(conn) = Conn::adopt(stream) {
                        conns.push(conn);
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }

        let mut progressed = false;
        for conn in &mut conns {
            // Deliver pending push frames first, so the sweep's flush
            // carries them out with whatever else is queued.
            if let Some(sub) = conn.sub {
                for n in server.push_hub().drain(sub) {
                    conn.outbuf
                        .extend_from_slice(&v2::encode_notification_frame(&n));
                    server.metrics().incr("wire.push_frames");
                    progressed = true;
                }
            }
            progressed |= conn.sweep(server, backend, max_frame);
        }
        for conn in &conns {
            if conn.dead && conn.outbuf.is_empty() {
                if let Some(sub) = conn.sub {
                    server.push_hub().unsubscribe(sub);
                }
            }
        }
        conns.retain(|c| !(c.dead && c.outbuf.is_empty()));

        if progressed {
            idle_sweeps = 0;
        } else {
            idle_sweeps = idle_sweeps.saturating_add(1);
            if idle_sweeps < SPIN_SWEEPS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }
}

impl Conn {
    fn adopt(stream: TcpStream) -> Option<Conn> {
        stream.set_nonblocking(true).ok()?;
        stream.set_nodelay(true).ok()?;
        Some(Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            dead: false,
            sub: None,
            parts: HashMap::new(),
        })
    }

    /// One multiplexing pass: flush what we can, read what's there,
    /// dispatch every complete frame. Returns whether any work happened.
    fn sweep(
        &mut self,
        server: &SqalpelServer,
        backend: Option<&ExecBackend>,
        max_frame: usize,
    ) -> bool {
        let mut progressed = self.flush();
        if self.dead {
            return progressed;
        }
        progressed |= self.fill();
        // Dispatch complete frames even when the read marked the conn
        // dead: everything fully framed before EOF still counts. A
        // *partial* frame left in the buffer is dropped undispatched.
        loop {
            match v2::take_frame(&mut self.inbuf, max_frame) {
                Ok(Some((tag, body))) => {
                    progressed = true;
                    self.respond(server, backend, tag, &body);
                }
                Ok(None) => break,
                Err(_) => {
                    // Malformed header: framing is lost, close.
                    self.dead = true;
                    break;
                }
            }
        }
        progressed |= self.flush();
        progressed
    }

    fn respond(
        &mut self,
        server: &SqalpelServer,
        backend: Option<&ExecBackend>,
        tag: u32,
        body: &[u8],
    ) {
        let frame = match v2::decode_request(body) {
            Ok(DecodedRequest::Hello { version }) if version == v2::PROTO_VERSION => {
                v2::encode_hello_ok_frame(tag)
            }
            Ok(DecodedRequest::Hello { version }) => {
                // Version mismatch: answer typed, then hang up.
                self.dead = true;
                v2::encode_reply_frame(
                    tag,
                    &Err(PlatformError::Invalid(format!(
                        "unsupported protocol version {version}, server speaks {}",
                        v2::PROTO_VERSION
                    ))),
                )
            }
            Ok(DecodedRequest::Op(op)) => v2::encode_reply_frame(tag, &handle_v2(server, backend, &op)),
            Ok(DecodedRequest::BatchPart(pairs)) => {
                let buffered = self.parts.entry(tag).or_default();
                if buffered.len() + pairs.len() > MAX_BATCH_PAIRS {
                    // Sequence state is lost; answer typed and hang up.
                    self.parts.remove(&tag);
                    self.dead = true;
                    v2::encode_reply_frame(
                        tag,
                        &Err(PlatformError::Invalid(format!(
                            "bulk sequence exceeds {MAX_BATCH_PAIRS} buffered reports"
                        ))),
                    )
                } else {
                    buffered.extend(pairs);
                    // Continuation frames are never acked individually;
                    // the summary frame answers for the whole sequence.
                    return;
                }
            }
            Ok(DecodedRequest::BatchEnd { key, total, inline }) => {
                let mut reports = self.parts.remove(&tag).unwrap_or_default();
                reports.extend(inline);
                if reports.len() != total as usize {
                    v2::encode_reply_frame(
                        tag,
                        &Err(PlatformError::Invalid(format!(
                            "bulk summary declared {total} reports, sequence carried {}",
                            reports.len()
                        ))),
                    )
                } else {
                    let op = Request::ReportBatch { key, reports };
                    v2::encode_reply_frame(tag, &handle_v2(server, backend, &op))
                }
            }
            Ok(DecodedRequest::Subscribe { key }) => {
                // Re-subscribing replaces the previous registration.
                if let Some(old) = self.sub.take() {
                    server.push_hub().unsubscribe(old);
                }
                self.sub = Some(server.push_hub().subscribe(&key.0));
                v2::encode_reply_frame(tag, &Ok(Reply::Unit))
            }
            // A complete frame whose payload doesn't decode: the framing
            // is intact, so answer typed and keep the connection.
            Err(e) => v2::encode_reply_frame(
                tag,
                &Err(PlatformError::Invalid(format!("undecodable request: {e}"))),
            ),
        };
        self.outbuf.extend_from_slice(&frame);
    }

    /// Nonblocking read of whatever is available. Returns whether bytes
    /// arrived; EOF or a hard error marks the connection dead.
    fn fill(&mut self) -> bool {
        let mut progressed = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progressed
    }

    /// Nonblocking flush of pending response bytes.
    fn flush(&mut self) -> bool {
        let mut progressed = false;
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.outbuf.drain(..n);
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progressed
    }
}

/// Dispatch one v2 op with the same metrics instrumentation the v1
/// handler applies, under protocol-qualified labels.
fn handle_v2(
    server: &SqalpelServer,
    backend: Option<&ExecBackend>,
    op: &Request,
) -> crate::error::PlatformResult<crate::wire::proto::Reply> {
    let start = std::time::Instant::now();
    let outcome = crate::wire::dispatch::dispatch(server, backend, op);
    let metrics = server.metrics();
    let label = format!("V2 {}", op.op_name());
    metrics.incr("wire.requests");
    metrics.incr(&format!("wire.route.{label}"));
    let status_class = match &outcome {
        Ok(_) => 2,
        Err(e) => ErrorCode::of(e).http_status() / 100,
    };
    metrics.incr(&format!("wire.status.{status_class}xx"));
    metrics.observe_nanos(
        &format!("wire.latency.{label}"),
        start.elapsed().as_nanos() as u64,
    );
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::transport::framed::FramedConn;
    use crate::wire::transport::http::{read_response, write_request};
    use crate::wire::proto::Reply;

    #[test]
    fn serves_requests_and_shuts_down_cleanly() {
        let server = Arc::new(SqalpelServer::new());
        let mut wire =
            WireServer::start(Arc::clone(&server), "127.0.0.1:0", WireConfig::default()).unwrap();
        let addr = wire.local_addr();

        // A plain socket-level round trip against the queue endpoint.
        let mut s = TcpStream::connect(addr).unwrap();
        write_request(&mut s, "GET", "/v1/queue/summary", b"").unwrap();
        let (status, body) = read_response(&mut s, 1 << 20).unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(v["queued"].as_i64(), Some(0));

        // A garbage request gets a 400, not a hung or killed handler.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let (status, _) = read_response(&mut s, 1 << 20).unwrap();
        assert_eq!(status, 400);

        wire.shutdown();
        wire.shutdown(); // idempotent
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn v2_serves_frames_and_survives_garbage() {
        let server = Arc::new(SqalpelServer::new());
        let mut wire =
            V2Server::start(Arc::clone(&server), None, "127.0.0.1:0", V2Config::default())
                .unwrap();
        let addr = wire.local_addr().to_string();

        // Handshake + one op on a persistent connection.
        let mut conn = FramedConn::connect(
            &addr,
            Duration::from_secs(2),
            Duration::from_secs(5),
            v2::DEFAULT_MAX_FRAME,
        )
        .unwrap();
        match conn.call(&Request::QueueSummary).unwrap().unwrap() {
            Reply::Queue(q) => assert_eq!(q.total(), 0),
            other => panic!("{other:?}"),
        }
        // Several more ops on the same connection: persistence works.
        for _ in 0..3 {
            assert!(conn.call(&Request::DbmsLabels).unwrap().is_ok());
        }

        // A half-written frame followed by disconnect must not panic the
        // shard, and other connections keep working.
        let mut half = FramedConn::connect(
            &addr,
            Duration::from_secs(2),
            Duration::from_secs(5),
            v2::DEFAULT_MAX_FRAME,
        )
        .unwrap();
        half.send_truncated(&Request::QueueSummary).unwrap();
        assert!(conn.call(&Request::QueueSummary).unwrap().is_ok());

        wire.shutdown();
        wire.shutdown(); // idempotent
    }

    #[test]
    fn v2_handles_many_idle_connections() {
        let server = Arc::new(SqalpelServer::new());
        let mut wire =
            V2Server::start(Arc::clone(&server), None, "127.0.0.1:0", V2Config::default())
                .unwrap();
        let addr = wire.local_addr().to_string();

        // Far more connections than shard threads, all alive at once.
        let mut conns: Vec<FramedConn> = (0..64)
            .map(|_| {
                FramedConn::connect(
                    &addr,
                    Duration::from_secs(2),
                    Duration::from_secs(5),
                    v2::DEFAULT_MAX_FRAME,
                )
                .unwrap()
            })
            .collect();
        // Every one of them still answers.
        for conn in conns.iter_mut() {
            assert!(conn.call(&Request::QueueSummary).unwrap().is_ok());
        }
        wire.shutdown();
    }
}
