//! The client–server wire layer (paper §5.1).
//!
//! "sqalpel is built as a client-server, web-based software platform" —
//! this module is the actual wire: a JSON-over-HTTP API exposing every
//! [`crate::SqalpelServer`] operation as a versioned `/v1/...` endpoint,
//! served by [`WireServer`] over `std::net`, and consumed by the typed
//! [`WireClient`], which presents the same Rust surface as the in-process
//! server. Because the client implements [`crate::server::Platform`], the
//! driver loop and [`crate::workers::run_worker_pool`] run unchanged
//! whether the platform lives in the same process or across the network.
//!
//! Design points:
//!
//! * **One request per connection.** The subset in [`http`] always sends
//!   `Connection: close`; a broken socket maps to exactly one failed
//!   call, never a poisoned pipeline.
//! * **Typed errors on the wire.** Every [`crate::PlatformError`] carries
//!   a stable machine-readable code; the server maps variants to HTTP
//!   statuses and the client reconstructs the exact variant from the
//!   body, so `match`-based error handling is transport-agnostic.
//! * **Retry without double-counting.** The client retries connect
//!   failures, I/O errors and 5xx responses with bounded deterministic
//!   backoff. The server keeps claim and report **idempotent** per
//!   contributor key, so a retried request whose original response was
//!   lost hands back the same task / the same record index.

pub mod api;
pub mod client;
pub mod http;
pub mod server;

pub use client::{RetryPolicy, WireClient};
pub use server::{WireConfig, WireServer};
