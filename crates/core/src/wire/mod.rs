//! The client–server wire layer (paper §5.1).
//!
//! "sqalpel is built as a client-server, web-based software platform" —
//! this module is the actual wire, split into a **brain** and two
//! **muscles**:
//!
//! * [`proto`] — the brain: pure, I/O-free codecs. The typed
//!   [`Request`]/[`Reply`] surface shared by every protocol version,
//!   the v1 JSON/HTTP codec ([`proto::v1`]) and the v2 framed binary
//!   codec ([`proto::v2`]) with its columnar result encoding.
//! * [`transport`] — the muscles: byte movers only. A minimal HTTP/1.1
//!   subset ([`transport::http`], one request per connection) and the
//!   persistent framed-TCP connection ([`transport::framed`]).
//! * [`dispatch`] — the one execution path: both servers decode into
//!   the same [`Request`] and call [`dispatch::dispatch`], so v1/v2
//!   behavioral equivalence is structural, not disciplined.
//!
//! [`WireServer`] serves v1 over HTTP with a bounded thread pool;
//! [`V2Server`] serves v2 frames with a nonblocking sharded event loop
//! (thousands of idle connections cost buffers, not threads) and
//! supports **pipelining** — many tagged requests in flight on one
//! connection. [`WireClient`], built via [`WireClient::builder`], speaks
//! either protocol behind one typed API and implements
//! [`crate::server::Platform`], so the driver loop and
//! [`crate::workers::run_worker_pool`] run unchanged in-process, over
//! HTTP, or over frames.
//!
//! Design points:
//!
//! * **Typed errors on the wire.** Every [`crate::PlatformError`] carries
//!   a stable machine-readable code ([`ErrorCode`]); v1 maps variants to
//!   HTTP statuses, v2 to a status byte, and both clients reconstruct
//!   the exact variant, so `match`-based error handling is
//!   transport-agnostic.
//! * **Retry without double-counting.** The client retries connect
//!   failures, I/O errors and 5xx/transport responses with bounded
//!   deterministic backoff. The server keeps claim and report
//!   **idempotent** per contributor key, so a retried request whose
//!   original response was lost hands back the same task / the same
//!   record index. A v2 connection that fails mid-call is torn down and
//!   rebuilt — a half-written frame is discarded by the server, never
//!   dispatched.
//! * **Plan-cache aware execution.** [`Request::Execute`] carries an
//!   optional plan fingerprint; a warm server-side
//!   [`sqalpel_engine::PlanCache`] skips parse/bind on hits, surfaced
//!   per-response as [`CacheStatus`] and in aggregate as
//!   `plan_cache.*` counters at `GET /v1/metrics`.

pub mod client;
pub mod dispatch;
pub mod proto;
pub mod server;
pub mod transport;

pub use client::{Proto, RemoteWaiter, RetryPolicy, WireClient, WireClientBuilder};
pub use dispatch::ExecBackend;
pub use proto::{CacheStatus, ErrorCode, ExecOutcome, Reply, Request, WireResultSet, WireValue};
pub use server::{V2Config, V2Server, WireConfig, WireServer};
