//! A deliberately small HTTP/1.1 subset over `std::net` — exactly what
//! the platform API needs and nothing more.
//!
//! One request per connection (`Connection: close` on every response):
//! the retrying client opens a fresh socket per call, which keeps failure
//! handling trivial — any broken connection maps to one failed request,
//! never a poisoned stream of pipelined ones. Headers are latin-1-ish
//! ASCII, bodies are length-delimited (no chunked encoding), and both are
//! size-capped so a misbehaving peer cannot balloon server memory.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request/status line plus headers.
const MAX_HEAD: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path with the query string stripped.
    pub path: String,
    /// Decoded `k=v` query pairs, in order.
    pub query: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for a key.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// `/`-separated path segments, skipping empties.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// A response about to be written.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        451 => "Unavailable For Legal Reasons",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Read one line (terminated by `\r\n` or `\n`), capped.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> io::Result<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        if *budget == 0 {
            return Err(bad("header section too large"));
        }
        *budget -= 1;
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|e| bad(e.to_string()))
}

/// Minimal `%xx` (and `+`) decoding for query values.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Read and parse one request from a connection.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> io::Result<Request> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut budget = MAX_HEAD;
    let request_line = read_line(&mut reader, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?.to_string();
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported version {version}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut content_length = 0usize;
    loop {
        let line = read_line(&mut reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    if content_length > max_body {
        return Err(bad(format!(
            "body of {content_length} bytes exceeds the {max_body} byte cap"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Write a response and flush. The connection is always marked closed.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Write one client request and flush.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path_and_query: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "{method} {path_and_query} HTTP/1.1\r\nhost: sqalpel\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Read a response: returns `(status, body)`.
pub fn read_response(stream: &mut TcpStream, max_body: usize) -> io::Result<(u16, Vec<u8>)> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut budget = MAX_HEAD;
    let status_line = read_line(&mut reader, &mut budget)?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().ok_or_else(|| bad("empty status line"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported version {version}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("missing status code"))?;

    let mut content_length: Option<usize> = None;
    loop {
        let line = read_line(&mut reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    Some(value.trim().parse().map_err(|_| bad("bad content-length"))?);
            }
        }
    }
    let body = match content_length {
        Some(n) if n > max_body => {
            return Err(bad(format!("response of {n} bytes exceeds the cap")))
        }
        Some(n) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
        // Connection-delimited body (we always send content-length, but
        // accept the close-delimited form for robustness).
        None => {
            let mut body = Vec::new();
            reader.take(max_body as u64).read_to_end(&mut body)?;
            body
        }
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(method: &str, target: &str, body: &[u8]) -> Request {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let body_owned = body.to_vec();
        let (method, target) = (method.to_string(), target.to_string());
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_request(&mut s, &method, &target, &body_owned).unwrap();
            read_response(&mut s, 1 << 20).unwrap()
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn, 1 << 20).unwrap();
        write_response(&mut conn, &Response::json(200, b"{}".to_vec())).unwrap();
        let (status, resp_body) = client.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(resp_body, b"{}");
        req
    }

    #[test]
    fn request_round_trips_with_query() {
        let req = round_trip("GET", "/v1/project/3/results?viewer=7&x=", b"");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/project/3/results");
        assert_eq!(req.query_param("viewer"), Some("7"));
        assert_eq!(req.query_param("x"), Some(""));
        assert_eq!(req.query_param("nope"), None);
        assert_eq!(req.segments(), vec!["v1", "project", "3", "results"]);
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_carries_body() {
        let req = round_trip("POST", "/v1/task/request", br#"{"key":"ck_1"}"#);
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, br#"{"key":"ck_1"}"#);
    }

    #[test]
    fn oversized_body_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_request(&mut s, "POST", "/x", &vec![b'a'; 4096]).unwrap();
            // The server may close before reading everything; ignore.
            let _ = read_response(&mut s, 1 << 20);
        });
        let (mut conn, _) = listener.accept().unwrap();
        assert!(read_request(&mut conn, 100).is_err());
        drop(conn);
        client.join().unwrap();
    }
}
