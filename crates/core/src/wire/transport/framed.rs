//! Framed TCP: the v2 transport muscle.
//!
//! One persistent TCP connection carries length-framed binary messages
//! (see [`crate::wire::proto::v2`] for the frame layout). This module
//! only moves frames: [`read_frame`]/[`write_frame`] for blocking
//! streams and [`FramedConn`], the client-side connection with the
//! version handshake, serial calls and pipelined send/recv. All
//! encoding decisions live in the codec.

use crate::error::{PlatformError, PlatformResult};
use crate::wire::proto::v2::{self, DecodedReply, HEADER_LEN};
use crate::wire::proto::{Reply, Request};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Write one already-encoded frame (header included) to the stream.
pub fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> io::Result<()> {
    stream.write_all(frame)
}

/// Read exactly one frame off a blocking stream. Oversized or truncated
/// frames are `InvalidData`/`UnexpectedEof` — the connection is dead.
pub fn read_frame(stream: &mut TcpStream, max_frame: usize) -> io::Result<(u32, Vec<u8>)> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let tag = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len == 0 || len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {len} bytes outside (0, {max_frame}]"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok((tag, body))
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A client-side framed connection: connected, version-checked, ready
/// for serial calls or pipelined send/recv. Tag allocation is internal —
/// tags only need to be unique among in-flight frames on one connection.
pub struct FramedConn {
    stream: TcpStream,
    max_frame: usize,
    next_tag: u32,
}

impl FramedConn {
    /// Connect and run the Hello handshake. Any version disagreement is
    /// a hard `InvalidData` error.
    pub fn connect(
        addr: &str,
        connect_timeout: Duration,
        io_timeout: Duration,
        max_frame: usize,
    ) -> io::Result<FramedConn> {
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| bad(format!("address {addr:?} did not resolve")))?;
        let stream = TcpStream::connect_timeout(&sock, connect_timeout)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        stream.set_nodelay(true)?;
        let mut conn = FramedConn {
            stream,
            max_frame,
            next_tag: 1,
        };
        write_frame(&mut conn.stream, &v2::encode_hello_frame(0))?;
        let (_, body) = read_frame(&mut conn.stream, max_frame)?;
        match v2::decode_reply(&body).map_err(bad)? {
            DecodedReply::Hello { version } if version == v2::PROTO_VERSION => Ok(conn),
            DecodedReply::Hello { version } => Err(bad(format!(
                "server speaks protocol {version}, client speaks {}",
                v2::PROTO_VERSION
            ))),
            DecodedReply::Outcome(_) => Err(bad("expected hello, got a reply".into())),
        }
    }

    /// Send one request, returning its tag for later matching.
    pub fn send(&mut self, req: &Request) -> io::Result<u32> {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1).max(1);
        write_frame(&mut self.stream, &v2::encode_request_frame(tag, req))?;
        Ok(tag)
    }

    /// Receive the next response frame, whichever request it answers.
    pub fn recv(&mut self) -> io::Result<(u32, PlatformResult<Reply>)> {
        let (tag, body) = read_frame(&mut self.stream, self.max_frame)?;
        match v2::decode_reply(&body).map_err(bad)? {
            DecodedReply::Outcome(outcome) => Ok((tag, outcome)),
            DecodedReply::Hello { .. } => Err(bad("unexpected mid-stream hello".into())),
        }
    }

    /// One serial request/response exchange.
    pub fn call(&mut self, req: &Request) -> io::Result<PlatformResult<Reply>> {
        let sent = self.send(req)?;
        let (tag, outcome) = self.recv()?;
        if tag != sent {
            return Err(bad(format!(
                "response tag {tag} does not match request tag {sent}"
            )));
        }
        Ok(outcome)
    }

    /// Fault injection for the drop tests: write only the first half of
    /// the encoded frame, then slam the connection shut. The server must
    /// discard the partial frame without dispatching it.
    pub fn send_truncated(&mut self, req: &Request) -> io::Result<()> {
        let frame = v2::encode_request_frame(self.next_tag, req);
        let half = frame.len() / 2;
        self.stream.write_all(&frame[..half])?;
        self.stream.shutdown(std::net::Shutdown::Both)
    }
}

/// Map an exhausted-retries io failure into the typed transport error,
/// same wording as the v1 client uses.
pub fn transport_error(detail: &str, attempts: u32) -> PlatformError {
    PlatformError::Transport(format!("{detail} (after {attempts} attempts)"))
}
